//! HPC collectives through ASK: a dense `MPI_Reduce` and a sparse reduce,
//! showing why key-value (asynchronous) INA generalizes value-stream INA —
//! sparse ranks contribute *different* index sets, which synchronous
//! aggregation cannot handle (§2.1.3).
//!
//! ```sh
//! cargo run --release -p ask --example hpc_reduce
//! ```

use ask::prelude::*;
use ask_workloads::collective::{dense_reduce, sparse_reduce};

fn run_reduce(name: &str, streams: Vec<Vec<KvTuple>>) {
    let ranks = streams.len();
    let expected = reference_aggregate(streams.iter().flatten().cloned());
    let mut service = AskServiceBuilder::new(ranks + 1).build();
    let hosts = service.hosts().to_vec();
    let root = hosts[0];
    let task = TaskId(1);
    service.submit_task(task, root, &hosts[1..]);
    let mut contributed = 0usize;
    for (r, stream) in streams.into_iter().enumerate() {
        contributed += stream.len();
        service.submit_stream(task, hosts[1 + r], stream);
    }
    service
        .run_until_complete(task, root, 200_000_000)
        .expect("completes");
    let got = service.result(task, root).expect("completed");
    assert_eq!(got, expected, "reduce must be exact");
    let stats = service.switch_stats(task).expect("stats");
    println!(
        "{name}: {ranks} ranks, {contributed} contributions → {} reduced elements; \
         {:.1}% aggregated in-network",
        got.len(),
        stats.tuple_aggregation_ratio() * 100.0
    );
}

fn main() {
    run_reduce("dense MPI_Reduce (4096 elements)", dense_reduce(1, 4, 4096));
    run_reduce(
        "sparse reduce (64k index space, 5% density)",
        sparse_reduce(2, 4, 65_536, 0.05),
    );
    println!("\nboth reduced exactly — including the sparse case, where ranks'");
    println!("index sets differ and synchronous value-stream INA does not apply");
}
