//! A complete MapReduce pipeline whose shuffle runs through the switch:
//! counting word lengths across a synthetic corpus.
//!
//! ```sh
//! cargo run --release -p ask-apps --example mapreduce_pipeline
//! ```

use ask_apps::prelude::*;
use ask_wire::key::Key;
use ask_wire::packet::KvTuple;

fn main() {
    // Three machines, each holding a shard of "documents".
    let inputs: Vec<Vec<String>> = (0..3)
        .map(|m| {
            (0..150)
                .map(|i| {
                    format!(
                        "alpha beta gamma{} delta epsilon{} zeta-is-a-long-word eta{}",
                        i % 20,
                        (i + m) % 30,
                        i % 5
                    )
                })
                .collect()
        })
        .collect();

    // Mapper: emit (word-length bucket, 1) for every token.
    let mapper = |_machine: usize, line: &String| -> Vec<KvTuple> {
        line.split_whitespace()
            .map(|w| {
                let bucket = format!("len{:02}", w.len());
                KvTuple::new(Key::from_str(&bucket).expect("valid"), 1)
            })
            .collect()
    };

    let config = MapReduceConfig::small();
    let out = run_mapreduce(&config, inputs, mapper);

    println!("word-length histogram ({} buckets):", out.result.len());
    let mut rows: Vec<_> = out.result.iter().collect();
    rows.sort();
    for (bucket, count) in rows {
        println!("  {bucket} {count}");
    }
    println!(
        "\nshuffle: {:.1}% of tuples merged in-network, JCT {:.3} ms",
        out.switch.tuple_aggregation_ratio() * 100.0,
        out.jct.as_secs_f64() * 1e3
    );
}
