//! Quickstart: aggregate two hosts' key-value streams through the switch.
//!
//! ```sh
//! cargo run -p ask --example quickstart
//! ```

use ask::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A rack: one programmable switch, three hosts on 100 Gbps links.
    let mut service = AskServiceBuilder::new(3).build();
    let hosts = service.hosts().to_vec();
    let (receiver, senders) = (hosts[0], &hosts[1..]);

    // The receiver registers the aggregation task; the daemons take care of
    // switch memory allocation and sender announcement.
    let task = TaskId(1);
    service.submit_task(task, receiver, senders);

    // Each sender streams its word counts.
    for (i, sender) in senders.iter().enumerate() {
        let stream = vec![
            KvTuple::new(Key::from_str("apple")?, 1 + i as u32),
            KvTuple::new(Key::from_str("banana")?, 2),
            KvTuple::new(Key::from_str("cherry-pie-slice")?, 1), // long key: bypasses the switch
            KvTuple::new(Key::from_str("apple")?, 1),
        ];
        service.submit_stream(task, *sender, stream);
    }

    service.run_until_complete(task, receiver, 10_000_000)?;
    let result = service.result(task, receiver).expect("task completed");

    println!("aggregated {} distinct keys:", result.len());
    let mut entries: Vec<_> = result.iter().collect();
    entries.sort();
    for (key, value) in entries {
        println!("  {key} -> {value}");
    }

    let stats = service.switch_stats(task).expect("switch served the task");
    println!(
        "switch absorbed {:.0}% of eligible tuples, ACKed {:.0}% of data packets",
        stats.tuple_aggregation_ratio() * 100.0,
        stats.packet_absorption_ratio() * 100.0,
    );
    Ok(())
}
