//! Distributed SGD with in-network gradient aggregation, verified against
//! a sequential run — the BytePS-plugin scenario (§5.6) end-to-end.
//!
//! ```sh
//! cargo run --release -p ask-apps --example sgd_training
//! ```

use ask_apps::prelude::*;

fn main() {
    let data = RegressionData::synthetic(7, 4, 32, 64);
    let config = TrainerConfig::small();

    println!("training 32-dim linear regression on 4 workers × 64 rows ...");
    let dist = train_distributed(&config, &data);
    let seq = train_sequential(&config, &data);

    println!("step  loss");
    for (i, loss) in dist.losses.iter().enumerate().step_by(5) {
        println!("{i:>4}  {loss:.6}");
    }
    println!(
        "\nfinal loss {:.6}; {:.1}% of gradient traffic aggregated on the switch",
        dist.losses.last().unwrap(),
        dist.switch_absorption * 100.0
    );
    assert_eq!(
        dist.weights, seq.weights,
        "distributed and sequential training must agree bit-for-bit"
    );
    println!("distributed run is bit-identical to the sequential reference ✓");
    println!(
        "total simulated synchronization time: {:.3} ms over {} steps",
        dist.sync_time.as_secs_f64() * 1e3,
        config.steps
    );
}
