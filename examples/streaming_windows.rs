//! Real-time stream processing over ASK: tumbling-window top-k over an
//! unbounded skewed stream — the Spark-Streaming/Flink/Kafka scenario from
//! the paper's introduction, where keys are unforeseeable and aggregation
//! is necessarily asynchronous.
//!
//! ```sh
//! cargo run --release -p ask-apps --example streaming_windows
//! ```

use ask::prelude::{AskConfig, KvTuple};
use ask_apps::prelude::*;
use ask_workloads::text::word_for_rank;
use ask_workloads::zipf::{zipf_stream, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = StreamingConfig {
        sources: 3,
        window_tuples: 2_000,
        windows: 6,
        ask: AskConfig::paper_default(),
        seed: 9,
    };

    // Each source emits a Zipf-skewed slice of the stream per window, with
    // the skew drifting over time (trending keys change).
    let results = run_windows(&config, |source, window| {
        let mut rng = StdRng::seed_from_u64((window as u64) << 16 | source as u64);
        zipf_stream(&mut rng, 4_096, 2_000, 1.2, StreamOrder::Shuffled)
            .into_iter()
            .map(|rank| KvTuple::new(word_for_rank(rank + 7 * window as u64), 1))
            .collect()
    });

    println!("tumbling-window stream aggregation, 3 sources × 6 windows\n");
    println!("window |  t_complete | in-network |        top key");
    for r in &results {
        let (top_key, top_count) = r
            .counts
            .iter()
            .max_by_key(|(k, v)| (**v, std::cmp::Reverse(k.as_bytes().to_vec())))
            .expect("non-empty window");
        println!(
            "{:>6} | {:>9.3}ms | {:>9.1}% | {top_key} × {top_count}",
            r.window,
            r.completed_at.as_secs_f64() * 1e3,
            r.switch_absorption * 100.0,
        );
    }
    println!("\nevery window was verified exactly-once against a local reference");
}
