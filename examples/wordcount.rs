//! WordCount over ASK: the paper's motivating big-data scenario (§5.5).
//!
//! Three machines each run mappers that emit `(word, 1)` tuples from a
//! synthetic text corpus; one machine doubles as the reducer. The switch
//! aggregates most tuples in flight, so reducers only merge residuals,
//! co-located data, and the fetched switch table.
//!
//! ```sh
//! cargo run --release -p ask --example wordcount
//! ```

use ask::prelude::*;
use ask_workloads::text::TextCorpus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = TextCorpus::yelp();
    let tuples_per_machine = 60_000;

    let mut service = AskServiceBuilder::new(3).build();
    let hosts = service.hosts().to_vec();
    let reducer = hosts[0];

    // The reducer machine also runs mappers (co-located, like Spark).
    let task = TaskId(1);
    service.submit_task(task, reducer, &hosts);
    let mut total_emitted = 0u64;
    for (i, host) in hosts.iter().enumerate() {
        let stream = corpus.stream(100 + i as u64, tuples_per_machine);
        total_emitted += stream.len() as u64;
        service.submit_stream(task, *host, stream);
    }

    service.run_until_complete(task, reducer, 200_000_000)?;
    let result = service.result(task, reducer).expect("completed");
    let counted: u64 = result.values().map(|&v| v as u64).sum();
    assert_eq!(counted, total_emitted, "every word counted exactly once");

    let mut top: Vec<_> = result.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!(
        "WordCount over '{}': {} words, {} distinct",
        corpus.name,
        counted,
        result.len()
    );
    println!("top 10 words:");
    for (word, count) in top.iter().take(10) {
        println!("  {word:>14} {count}");
    }

    let s = service.switch_stats(task).expect("stats");
    println!(
        "\nswitch: {:.1}% of tuples aggregated in-network, {:.1}% of packets absorbed, {} swaps",
        s.tuple_aggregation_ratio() * 100.0,
        s.packet_absorption_ratio() * 100.0,
        s.swaps,
    );
    println!(
        "job finished at t = {:.3} ms (simulated)",
        service.now().as_secs_f64() * 1e3
    );
    Ok(())
}
