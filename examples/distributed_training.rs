//! Value-stream backward compatibility (§5.6): gradient aggregation for a
//! distributed-training step, BytePS-style.
//!
//! Each of four workers contributes a gradient chunk; tensor indices act as
//! keys (value-stream aggregation is the special case of key-value
//! aggregation where keys are dense indices). The parameter server reads
//! back the summed gradient.
//!
//! ```sh
//! cargo run --release -p ask --example distributed_training
//! ```

use ask::prelude::*;

/// Quantizes an f32 gradient into the switch's 32-bit integer domain.
fn quantize(g: f32) -> u32 {
    (g * 1024.0).round() as i32 as u32
}

/// Inverse of [`quantize`] after aggregation.
fn dequantize(v: u32) -> f32 {
    (v as i32) as f32 / 1024.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 4usize;
    let gradient_len = 4096u64;

    let mut service = AskServiceBuilder::new(workers + 1).build();
    let hosts = service.hosts().to_vec();
    let ps = hosts[0];

    let task = TaskId(1);
    service.submit_task(task, ps, &hosts[1..]);

    // Worker w's gradient: g[i] = sin(i + w), quantized.
    let mut expected = vec![0.0f32; gradient_len as usize];
    for (w, worker) in hosts[1..].iter().enumerate() {
        let stream: Vec<KvTuple> = (0..gradient_len)
            .map(|i| {
                let g = ((i as f32) * 0.01 + w as f32).sin();
                expected[i as usize] += dequantize(quantize(g));
                KvTuple::new(Key::from_u64(i), quantize(g))
            })
            .collect();
        service.submit_stream(task, *worker, stream);
    }

    service.run_until_complete(task, ps, 100_000_000)?;
    let result = service.result(task, ps).expect("completed");
    assert_eq!(result.len() as u64, gradient_len);

    // Verify the in-network sum equals the local reduction, element-wise.
    let mut max_err = 0.0f32;
    for i in 0..gradient_len {
        let got = dequantize(result[&Key::from_u64(i)]);
        max_err = max_err.max((got - expected[i as usize]).abs());
    }
    println!(
        "all-reduced a {gradient_len}-element gradient across {workers} workers; max error {max_err}"
    );
    assert_eq!(max_err, 0.0, "integer aggregation is exact");

    let s = service.switch_stats(task).expect("stats");
    println!(
        "switch aggregated {:.1}% of gradient elements in-network \
         (dense indices aggregate like SwitchML/ATP value streams)",
        s.tuple_aggregation_ratio() * 100.0
    );
    println!(
        "synchronization finished at t = {:.1} µs (simulated)",
        service.now().as_secs_f64() * 1e6
    );
    Ok(())
}
