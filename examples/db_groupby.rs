//! Database aggregation through ASK: `SELECT cust, SUM(amount) GROUP BY
//! cust` over a skewed orders table — the paper's database `SUM()` scenario.
//!
//! ```sh
//! cargo run --release -p ask --example db_groupby
//! ```

use ask::prelude::*;
use ask_workloads::database::GroupByQuery;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two storage nodes scan partitions of the orders table; one
    // coordinator runs the final aggregation.
    let query = GroupByQuery::per_customer_rollup(4_000);
    let mut service = AskServiceBuilder::new(3).build();
    let hosts = service.hosts().to_vec();
    let coordinator = hosts[0];

    let task = TaskId(1);
    service.submit_task(task, coordinator, &hosts[1..]);
    let mut rows_scanned = 0u64;
    for (i, node) in hosts[1..].iter().enumerate() {
        let partition = query.rows(40 + i as u64, 50_000);
        rows_scanned += partition.len() as u64;
        service.submit_stream(task, *node, partition);
    }

    service.run_until_complete(task, coordinator, 200_000_000)?;
    let result = service.result(task, coordinator).expect("completed");

    let mut top: Vec<_> = result.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1));
    println!(
        "GROUP BY over {rows_scanned} rows → {} groups; top 5 by SUM(amount):",
        result.len()
    );
    for (group, sum) in top.iter().take(5) {
        println!("  {group:>8} {sum}");
    }

    let stats = service.switch_stats(task).expect("stats");
    println!(
        "\n{:.1}% of rows were summed by the switch before reaching the coordinator",
        stats.tuple_aggregation_ratio() * 100.0
    );
    Ok(())
}
