//! Hot-key agnostic prioritization in action (§3.4, Figure 9).
//!
//! A Zipf-skewed stream is aggregated twice through a switch whose memory
//! region is 16× smaller than the key space: once with shadow-copy swapping
//! disabled and once enabled. Swapping periodically evicts squatting cold
//! keys, so the hot keys re-seize aggregators and the switch absorbs far
//! more of the stream.
//!
//! ```sh
//! cargo run --release -p ask --example skewed_stream
//! ```

use ask::prelude::*;
use ask_workloads::zipf::{zipf_stream, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn absorption(swap_threshold: u64, ranks: &[u64]) -> (f64, u64) {
    let mut cfg = AskConfig::paper_default();
    // Starve the switch: 1/16 of the key space worth of aggregators.
    cfg.aggregators_per_aa = 256;
    cfg.region_aggregators = 256;
    cfg.swap_threshold = swap_threshold;

    let mut service = AskServiceBuilder::new(2).config(cfg).build();
    let hosts = service.hosts().to_vec();
    let task = TaskId(1);
    service.submit_task(task, hosts[0], &[hosts[1]]);
    let stream: Vec<KvTuple> = ranks
        .iter()
        .map(|&r| KvTuple::new(Key::from_u64(r), 1))
        .collect();
    service.submit_stream(task, hosts[1], stream);
    service
        .run_until_complete(task, hosts[0], 500_000_000)
        .expect("completes");
    let s = service.switch_stats(task).expect("stats");
    (s.tuple_aggregation_ratio(), s.swaps)
}

fn main() {
    let distinct = 16 * 256 * 16; // 16 slots × 256 aggregators × ratio 16
    let mut rng = StdRng::seed_from_u64(7);
    let ranks = zipf_stream(&mut rng, distinct, 200_000, 1.2, StreamOrder::Shuffled);

    let (without, _) = absorption(0, &ranks);
    let (with, swaps) = absorption(512, &ranks);

    println!(
        "Zipf stream: {} tuples over {distinct} distinct keys",
        ranks.len()
    );
    println!("aggregators available: 1/16 of the key space\n");
    println!(
        "  FCFS only (no prioritization): {:.1}% absorbed on-switch",
        without * 100.0
    );
    println!(
        "  with shadow-copy swapping:     {:.1}% absorbed ({swaps} swaps)",
        with * 100.0
    );
    assert!(
        with > without,
        "prioritization must improve aggregator utilization"
    );
    println!(
        "\nhot-key prioritization recovered {:.1} points of switch absorption",
        (with - without) * 100.0
    );
}
