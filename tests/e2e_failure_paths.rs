//! Defensive paths: garbage frames, misrouted packets, and orphan data
//! must be counted and contained, never panicking or corrupting results.

use ask::prelude::*;
use ask::switch::AskSwitch;
use ask_simnet::frame::Frame;
use bytes::Bytes;

#[test]
fn garbage_frames_are_counted_and_ignored() {
    let mut service = AskServiceBuilder::new(2)
        .config(AskConfig::tiny())
        .seed(1)
        .build();
    let hosts = service.hosts().to_vec();
    let switch = service.switch_id();

    // Inject undecodable junk into the switch from a host.
    for junk in [
        Bytes::from_static(b""),
        Bytes::from_static(b"ab"),
        Bytes::from_static(&[0xff; 64]),
    ] {
        service
            .network_mut()
            .with_node::<AskDaemon, _>(hosts[1], |_daemon, ctx| {
                let _ = ctx.send(switch, Frame::new(junk.clone()));
            });
    }
    service.run_to_idle();
    let sw: &AskSwitch = service.network_mut().node(switch);
    assert_eq!(sw.unroutable(), 0);
    assert_eq!(sw.undecodable(), 3, "every junk frame counted");

    // The service still works afterwards.
    let task = TaskId(1);
    let stream = vec![KvTuple::new(Key::from_u64(1), 5)];
    service.submit_task(task, hosts[0], &[hosts[1]]);
    service.submit_stream(task, hosts[1], stream);
    service
        .run_until_complete(task, hosts[0], 5_000_000)
        .unwrap();
    assert_eq!(
        service.result(task, hosts[0]).unwrap()[&Key::from_u64(1)],
        5
    );
}

#[test]
fn misrouted_data_is_orphaned_and_acked() {
    // A forged data packet for a task the receiver never registered (a
    // misconfigured or malicious sender): the receiver must ACK it (no
    // retransmission livelock), count the tuples as orphans, and keep its
    // real tasks intact.
    use ask_wire::codec::{encode_envelope, Envelope};
    use ask_wire::packet::{AskPacket, ChannelId, DataPacket, SeqNo, CHANNEL_STRIDE};

    let cfg = AskConfig::tiny();
    let layout = cfg.layout;
    let mut service = AskServiceBuilder::new(2).config(cfg).seed(2).build();
    let hosts = service.hosts().to_vec();
    let switch = service.switch_id();

    // A legitimate task first.
    let task = TaskId(1);
    service.submit_task(task, hosts[0], &[hosts[1]]);
    service.submit_stream(task, hosts[1], vec![KvTuple::new(Key::from_u64(1), 1)]);
    service
        .run_until_complete(task, hosts[0], 5_000_000)
        .unwrap();

    // Forge a data packet for unregistered task 99 from host 1 to host 0,
    // on a channel the real daemon is not using (so its sequence space is
    // untouched).
    let mut slots = vec![None; layout.slot_count()];
    slots[0] = Some(KvTuple::new(Key::from_u64(7), 42));
    let forged = AskPacket::Data(DataPacket {
        task: TaskId(99),
        channel: ChannelId(hosts[1].index() as u32 * CHANNEL_STRIDE + 7),
        seq: SeqNo(0),
        slots,
    });
    let env = Envelope::new(hosts[1].index() as u32, hosts[0].index() as u32, forged);
    let wire = env.wire_bytes(&layout);
    let bytes = encode_envelope(&env, &layout);
    service
        .network_mut()
        .with_node::<AskDaemon, _>(hosts[1], |_daemon, ctx| {
            let _ = ctx.send(switch, Frame::with_wire_bytes(bytes, wire));
        });
    service.run_to_idle();

    let recv = service.daemon(hosts[0]);
    assert_eq!(recv.orphan_tuples(), 1, "forged tuple counted as orphaned");
    // The completed result is untouched.
    let result = service.result(task, hosts[0]).unwrap();
    assert_eq!(result.len(), 1);
    assert_eq!(result[&Key::from_u64(1)], 1);
}

// ---------------------------------------------------------------------------
// Switch-crash matrix: the switch dies at a chosen fraction of the clean
// run's completion time, loses every register array and dedup window, and
// comes back in a new epoch. Whatever the crash instant, the per-key result
// must equal the fault-free run exactly.
// ---------------------------------------------------------------------------

mod switch_crash {
    use ask::prelude::*;
    use ask::service::AskService;
    use ask_simnet::faults::FaultModel;
    use ask_simnet::frame::{Frame, NodeId};
    use ask_simnet::link::LinkConfig;
    use ask_simnet::time::{SimDuration, SimTime};
    use std::collections::HashMap;

    const BUDGET: u64 = 50_000_000;

    fn streams() -> Vec<Vec<KvTuple>> {
        (0..2u64)
            .map(|s| {
                (0..150u64)
                    .map(|i| KvTuple::new(Key::from_u64((s * 37 + i * 5) % 60), (i % 9 + 1) as u32))
                    .collect()
            })
            .collect()
    }

    /// Builds the standard crash workload: one receiver, two senders, a
    /// 60-key SUM stream per sender.
    fn build(
        escalate: Option<u32>,
        link: LinkConfig,
        seed: u64,
    ) -> (AskService, Vec<NodeId>, TaskId, HashMap<Key, u32>) {
        let mut cfg = AskConfig::tiny();
        cfg.escalate_after = escalate;
        let mut service = AskServiceBuilder::new(3)
            .config(cfg)
            .link(link)
            .seed(seed)
            .build();
        let hosts = service.hosts().to_vec();
        let task = TaskId(7);
        let st = streams();
        let expected = reference_aggregate(st.iter().flatten().cloned());
        service.submit_task(task, hosts[0], &[hosts[1], hosts[2]]);
        service.submit_stream(task, hosts[1], st[0].clone());
        service.submit_stream(task, hosts[2], st[1].clone());
        (service, hosts, task, expected)
    }

    fn clean_link() -> LinkConfig {
        LinkConfig::new(100e9, SimDuration::from_micros(1))
    }

    /// Completion time of the fault-free golden run (also asserts its
    /// result, so every crash case compares against a verified baseline).
    fn clean_completion(seed: u64) -> SimTime {
        let (mut service, hosts, task, expected) = build(None, clean_link(), seed);
        let done = service.run_until_complete(task, hosts[0], BUDGET).unwrap();
        assert_eq!(service.result(task, hosts[0]).unwrap(), expected);
        done
    }

    /// Runs the workload with one switch outage starting at `permille`
    /// thousandths of the clean completion time, then asserts the per-key
    /// result matches the fault-free run.
    fn run_with_outage(
        permille: u64,
        outage: SimDuration,
        escalate: Option<u32>,
        seed: u64,
    ) -> (AskService, Vec<NodeId>, TaskId) {
        let t = clean_completion(seed).as_nanos();
        let (mut service, hosts, task, expected) = build(escalate, clean_link(), seed);
        let down = SimTime::from_nanos((t * permille / 1000).max(1));
        service.schedule_switch_outage(down, down + outage);
        service.run_until_complete(task, hosts[0], BUDGET).unwrap();
        assert_eq!(
            service.result(task, hosts[0]).unwrap(),
            expected,
            "per-key aggregate must equal the fault-free run (crash at {permille}‰)"
        );
        (service, hosts, task)
    }

    #[test]
    fn crash_before_first_verdict() {
        // Down at t=1ns: the switch never sees the region request. The
        // announce/region retry timers must carry the whole setup through
        // the restarted epoch.
        let (mut service, _, _) = run_with_outage(0, SimDuration::from_micros(50), None, 11);
        service.run_to_idle();
        assert_eq!(service.switch_epoch(), 1);
    }

    #[test]
    fn crash_mid_window() {
        let (mut service, _, _) = run_with_outage(500, SimDuration::from_micros(50), None, 12);
        service.run_to_idle();
        assert_eq!(service.switch_epoch(), 1);
        assert!(
            service.switch_ref().stale_epoch_drops() > 0,
            "old-epoch retransmits must be rejected by the restarted switch"
        );
    }

    #[test]
    fn crash_during_fetch_drain() {
        // 90% of the clean runtime: shadow-copy swaps and fetch drains are
        // in flight when the registers vanish.
        let (mut service, _, _) = run_with_outage(900, SimDuration::from_micros(50), None, 13);
        service.run_to_idle();
        assert_eq!(service.switch_epoch(), 1);
    }

    #[test]
    fn double_crash_recovers_twice() {
        let t = clean_completion(14).as_nanos();
        let (mut service, hosts, task, expected) = build(None, clean_link(), 14);
        let outage = SimDuration::from_micros(30);
        let down1 = SimTime::from_nanos((t * 400 / 1000).max(1));
        service.schedule_switch_outage(down1, down1 + outage);
        // Run just past the first recovery's start, then pull the rug again
        // while the replay is in flight.
        service
            .network_mut()
            .run(Some(down1 + outage + outage), None);
        let down2 = service.now() + SimDuration::from_micros(5);
        service.schedule_switch_outage(down2, down2 + outage);
        service.run_until_complete(task, hosts[0], BUDGET).unwrap();
        assert_eq!(
            service.result(task, hosts[0]).unwrap(),
            expected,
            "double crash must still converge to the fault-free result"
        );
        service.run_to_idle();
        assert_eq!(service.switch_epoch(), 2);
    }

    #[test]
    fn long_outage_enters_degraded_mode() {
        // The outage spans several retransmit timeouts with escalation after
        // two attempts: senders must flag their windows for degraded
        // pass-through while the switch is dark, and still converge.
        let (service, hosts, _) = run_with_outage(400, SimDuration::from_micros(600), Some(2), 15);
        let degraded: u64 = hosts
            .iter()
            .map(|h| service.host_stats(*h).degraded_entries)
            .sum();
        assert!(
            degraded > 0,
            "a 6xRTO outage with escalate_after=2 must trip degraded mode"
        );
    }

    #[test]
    fn lossy_network_relays_no_aggregate_packets() {
        // No crash at all: heavy loss plus a hair-trigger escalation
        // threshold pushes senders into degraded mode, so the switch must
        // relay flagged packets through the dedup gate without aggregating —
        // and the result must still be exact.
        let link = LinkConfig::new(100e9, SimDuration::from_micros(1))
            .with_faults(FaultModel::reliable().with_loss(0.2));
        let (mut service, hosts, task, expected) = build(Some(1), link, 16);
        service.run_until_complete(task, hosts[0], BUDGET).unwrap();
        assert_eq!(service.result(task, hosts[0]).unwrap(), expected);
        assert_eq!(service.switch_epoch(), 0, "no crash was injected");
        assert!(
            service.switch_ref().noagg_relayed() > 0,
            "escalated senders must drive the no-aggregate relay path"
        );
    }

    #[test]
    fn stale_epoch_verdict_after_restart_is_dropped() {
        // Regression for a seeded bug: a pre-crash verdict (an ACK computed
        // by the dead incarnation) delivered after the restart must be
        // dropped by the host's epoch gate and counted, not applied.
        use ask_wire::codec::encode_envelope_parts;
        use ask_wire::packet::{AskPacket, ChannelId, SeqNo, CHANNEL_STRIDE};

        let (mut service, hosts, _) = run_with_outage(500, SimDuration::from_micros(50), None, 17);
        service.run_to_idle();
        assert_eq!(service.daemon(hosts[1]).known_epoch(), 1);
        let before = service.host_stats(hosts[1]).stale_epoch_drops;

        // Forge an epoch-0 ACK "from the switch" and deliver it to a host
        // that has already resynchronized to epoch 1.
        let layout = service.config().layout;
        let switch = service.switch_id();
        let stale_ack = AskPacket::Ack {
            channel: ChannelId(hosts[1].index() as u32 * CHANNEL_STRIDE),
            seq: SeqNo(0),
            ece: false,
        };
        let bytes = encode_envelope_parts(
            switch.index() as u32,
            hosts[1].index() as u32,
            0,
            0,
            &stale_ack,
            &layout,
        );
        let target = hosts[1];
        service
            .network_mut()
            .with_node::<AskSwitch, _>(switch, |_sw, ctx| {
                let _ = ctx.send(target, Frame::new(bytes.clone()));
            });
        service.run_to_idle();
        assert_eq!(
            service.host_stats(hosts[1]).stale_epoch_drops,
            before + 1,
            "the stale ACK must be dropped and counted, not applied"
        );
    }
}

#[test]
fn trace_ring_buffer_bounds_memory() {
    let mut cfg = AskConfig::tiny();
    cfg.trace_capacity = 16; // absurdly small: must drop, not grow
    let mut service = AskServiceBuilder::new(2).config(cfg).seed(3).build();
    let hosts = service.hosts().to_vec();
    let task = TaskId(1);
    let stream: Vec<KvTuple> = (0..500)
        .map(|i| KvTuple::new(Key::from_u64(i % 50), 1))
        .collect();
    service.submit_task(task, hosts[0], &[hosts[1]]);
    service.submit_stream(task, hosts[1], stream);
    service
        .run_until_complete(task, hosts[0], 10_000_000)
        .unwrap();
    let trace = service.daemon(hosts[1]).trace();
    assert_eq!(trace.len(), 16);
    assert!(trace.dropped() > 0, "the ring must have evicted");
}
