//! Defensive paths: garbage frames, misrouted packets, and orphan data
//! must be counted and contained, never panicking or corrupting results.

use ask::prelude::*;
use ask::switch::AskSwitch;
use ask_simnet::frame::Frame;
use bytes::Bytes;

#[test]
fn garbage_frames_are_counted_and_ignored() {
    let mut service = AskServiceBuilder::new(2)
        .config(AskConfig::tiny())
        .seed(1)
        .build();
    let hosts = service.hosts().to_vec();
    let switch = service.switch_id();

    // Inject undecodable junk into the switch from a host.
    for junk in [
        Bytes::from_static(b""),
        Bytes::from_static(b"ab"),
        Bytes::from_static(&[0xff; 64]),
    ] {
        service
            .network_mut()
            .with_node::<AskDaemon, _>(hosts[1], |_daemon, ctx| {
                let _ = ctx.send(switch, Frame::new(junk.clone()));
            });
    }
    service.run_to_idle();
    let sw: &AskSwitch = service.network_mut().node(switch);
    assert_eq!(sw.unroutable(), 0);
    assert_eq!(sw.undecodable(), 3, "every junk frame counted");

    // The service still works afterwards.
    let task = TaskId(1);
    let stream = vec![KvTuple::new(Key::from_u64(1), 5)];
    service.submit_task(task, hosts[0], &[hosts[1]]);
    service.submit_stream(task, hosts[1], stream);
    service
        .run_until_complete(task, hosts[0], 5_000_000)
        .unwrap();
    assert_eq!(
        service.result(task, hosts[0]).unwrap()[&Key::from_u64(1)],
        5
    );
}

#[test]
fn misrouted_data_is_orphaned_and_acked() {
    // A forged data packet for a task the receiver never registered (a
    // misconfigured or malicious sender): the receiver must ACK it (no
    // retransmission livelock), count the tuples as orphans, and keep its
    // real tasks intact.
    use ask_wire::codec::{encode_envelope, Envelope};
    use ask_wire::packet::{AskPacket, ChannelId, DataPacket, SeqNo, CHANNEL_STRIDE};

    let cfg = AskConfig::tiny();
    let layout = cfg.layout;
    let mut service = AskServiceBuilder::new(2).config(cfg).seed(2).build();
    let hosts = service.hosts().to_vec();
    let switch = service.switch_id();

    // A legitimate task first.
    let task = TaskId(1);
    service.submit_task(task, hosts[0], &[hosts[1]]);
    service.submit_stream(task, hosts[1], vec![KvTuple::new(Key::from_u64(1), 1)]);
    service
        .run_until_complete(task, hosts[0], 5_000_000)
        .unwrap();

    // Forge a data packet for unregistered task 99 from host 1 to host 0,
    // on a channel the real daemon is not using (so its sequence space is
    // untouched).
    let mut slots = vec![None; layout.slot_count()];
    slots[0] = Some(KvTuple::new(Key::from_u64(7), 42));
    let forged = AskPacket::Data(DataPacket {
        task: TaskId(99),
        channel: ChannelId(hosts[1].index() as u32 * CHANNEL_STRIDE + 7),
        seq: SeqNo(0),
        slots,
    });
    let env = Envelope::new(hosts[1].index() as u32, hosts[0].index() as u32, forged);
    let wire = env.wire_bytes(&layout);
    let bytes = encode_envelope(&env, &layout);
    service
        .network_mut()
        .with_node::<AskDaemon, _>(hosts[1], |_daemon, ctx| {
            let _ = ctx.send(switch, Frame::with_wire_bytes(bytes, wire));
        });
    service.run_to_idle();

    let recv = service.daemon(hosts[0]);
    assert_eq!(recv.orphan_tuples(), 1, "forged tuple counted as orphaned");
    // The completed result is untouched.
    let result = service.result(task, hosts[0]).unwrap();
    assert_eq!(result.len(), 1);
    assert_eq!(result[&Key::from_u64(1)], 1);
}

#[test]
fn trace_ring_buffer_bounds_memory() {
    let mut cfg = AskConfig::tiny();
    cfg.trace_capacity = 16; // absurdly small: must drop, not grow
    let mut service = AskServiceBuilder::new(2).config(cfg).seed(3).build();
    let hosts = service.hosts().to_vec();
    let task = TaskId(1);
    let stream: Vec<KvTuple> = (0..500)
        .map(|i| KvTuple::new(Key::from_u64(i % 50), 1))
        .collect();
    service.submit_task(task, hosts[0], &[hosts[1]]);
    service.submit_stream(task, hosts[1], stream);
    service
        .run_until_complete(task, hosts[0], 10_000_000)
        .unwrap();
    let trace = service.daemon(hosts[1]).trace();
    assert_eq!(trace.len(), 16);
    assert!(trace.dropped() > 0, "the ring must have evicted");
}
