//! Protocol-sequencing assertions via the daemons' trace logs: properties
//! the aggregate counters cannot express.

use ask::host::trace::TraceEvent;
use ask::prelude::*;
use ask_simnet::faults::FaultModel;
use ask_simnet::link::LinkConfig;
use ask_simnet::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

fn traced_config() -> AskConfig {
    let mut cfg = AskConfig::tiny();
    cfg.trace_capacity = 100_000;
    cfg
}

fn stream(seed: u64, n: usize) -> Vec<KvTuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| KvTuple::new(Key::from_u64(rng.gen_range(0..64)), rng.gen_range(1..9)))
        .collect()
}

fn run(cfg: AskConfig, loss: f64, seed: u64) -> AskService {
    let link = LinkConfig::new(100e9, SimDuration::from_micros(1))
        .with_faults(FaultModel::reliable().with_loss(loss));
    let mut service = AskServiceBuilder::new(2)
        .config(cfg)
        .link(link)
        .seed(seed)
        .build();
    let hosts = service.hosts().to_vec();
    service.submit_task(TaskId(1), hosts[0], &[hosts[1]]);
    service.submit_stream(TaskId(1), hosts[1], stream(seed, 800));
    service
        .run_until_complete(TaskId(1), hosts[0], 50_000_000)
        .expect("completes");
    service
}

fn events(service: &AskService, host: usize) -> Vec<TraceEvent> {
    let h = service.hosts()[host];
    service
        .daemon(h)
        .trace()
        .events()
        .map(|(_, e)| e.clone())
        .collect()
}

#[test]
fn every_ack_has_a_preceding_send() {
    let service = run(traced_config(), 0.0, 1);
    let sender = events(&service, 1);
    let mut sent: HashSet<(u32, u64)> = HashSet::new();
    for e in &sender {
        match e {
            TraceEvent::PacketSent { channel, seq, .. } => {
                sent.insert((channel.0, seq.0));
            }
            TraceEvent::AckReceived { channel, seq } => {
                assert!(
                    sent.contains(&(channel.0, seq.0)),
                    "ACK for unsent packet {channel:?}/{seq:?}"
                );
            }
            _ => {}
        }
    }
    assert!(
        sender
            .iter()
            .any(|e| matches!(e, TraceEvent::PacketSent { .. })),
        "sender traced its sends"
    );
}

#[test]
fn clean_network_never_retransmits_or_duplicates() {
    let service = run(traced_config(), 0.0, 2);
    for host in 0..2 {
        for e in events(&service, host) {
            assert!(
                !matches!(
                    e,
                    TraceEvent::Retransmitted { .. } | TraceEvent::DuplicateDropped { .. }
                ),
                "unexpected {e:?} on a clean network"
            );
        }
    }
}

#[test]
fn lossy_network_retransmits_before_duplicates_surface() {
    let service = run(traced_config(), 0.08, 3);
    let sender = events(&service, 1);
    let retx: Vec<(u32, u64)> = sender
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Retransmitted { channel, seq } => Some((channel.0, seq.0)),
            _ => None,
        })
        .collect();
    assert!(!retx.is_empty(), "8% loss must force retransmissions");
    // Every retransmitted sequence was originally sent.
    let sent: HashSet<(u32, u64)> = sender
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PacketSent { channel, seq, .. } => Some((channel.0, seq.0)),
            _ => None,
        })
        .collect();
    for r in &retx {
        assert!(sent.contains(r), "retransmit of unsent {r:?}");
    }
}

#[test]
fn completion_follows_region_resolution_and_fetch() {
    let service = run(traced_config(), 0.0, 4);
    let receiver = events(&service, 0);
    let pos = |pred: &dyn Fn(&TraceEvent) -> bool| receiver.iter().position(pred);
    let region = pos(&|e| matches!(e, TraceEvent::RegionResolved { granted: true, .. }))
        .expect("region granted");
    let fetch = pos(&|e| matches!(e, TraceEvent::FetchSent { .. })).expect("fetch sent");
    let merged = pos(&|e| matches!(e, TraceEvent::FetchMerged { .. })).expect("fetch merged");
    let done = pos(&|e| matches!(e, TraceEvent::TaskCompleted { .. })).expect("completed");
    assert!(region < fetch, "region before fetch");
    assert!(fetch < merged, "fetch before merge");
    assert!(merged <= done, "merge before completion");
}

#[test]
fn tracing_disabled_records_nothing() {
    let service = run(AskConfig::tiny(), 0.0, 5);
    for host in 0..2 {
        assert!(events(&service, host).is_empty());
    }
}
