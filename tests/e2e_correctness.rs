//! End-to-end correctness: the distributed ASK result must equal the
//! reference host-side aggregation — *exactly once* per tuple — under clean
//! and adversarial network conditions (§3.3's correctness claim).

use ask::prelude::*;
use ask_simnet::faults::FaultModel;
use ask_simnet::link::LinkConfig;
use ask_simnet::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn kv(s: &str, v: u32) -> KvTuple {
    KvTuple::new(Key::from_str(s).unwrap(), v)
}

/// Builds a service, runs one task over the given streams, and checks the
/// result against the reference aggregation.
fn run_and_check(
    config: AskConfig,
    link: LinkConfig,
    streams: Vec<Vec<KvTuple>>,
    seed: u64,
) -> (AskService, TaskId) {
    let hosts_n = streams.len() + 1;
    let mut service = AskServiceBuilder::new(hosts_n)
        .config(config)
        .link(link)
        .seed(seed)
        .build();
    let hosts = service.hosts().to_vec();
    let receiver = hosts[0];
    let senders = &hosts[1..];
    let task = TaskId(7);

    let expected = reference_aggregate(streams.iter().flatten().cloned());

    service.submit_task(task, receiver, senders);
    for (i, stream) in streams.into_iter().enumerate() {
        service.submit_stream(task, senders[i], stream);
    }
    service
        .run_until_complete(task, receiver, 50_000_000)
        .expect("task completes");
    let got = service.result(task, receiver).expect("result present");
    assert_eq!(got.len(), expected.len(), "distinct key count");
    for (k, v) in &expected {
        assert_eq!(got.get(k), Some(v), "key {k}");
    }
    (service, task)
}

fn clean_link() -> LinkConfig {
    LinkConfig::new(100e9, SimDuration::from_micros(1))
}

fn nasty_link(loss: f64, dup: f64) -> LinkConfig {
    LinkConfig::new(100e9, SimDuration::from_micros(1)).with_faults(
        FaultModel::reliable()
            .with_loss(loss)
            .with_duplication(dup)
            .with_reordering(0.05, SimDuration::from_micros(30)),
    )
}

fn random_stream(seed: u64, n: usize, distinct: u64) -> Vec<KvTuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            KvTuple::new(
                Key::from_u64(rng.gen_range(0..distinct)),
                rng.gen_range(1..10),
            )
        })
        .collect()
}

#[test]
fn two_senders_clean_network() {
    run_and_check(
        AskConfig::tiny(),
        clean_link(),
        vec![
            vec![kv("apple", 1), kv("banana", 2), kv("apple", 3)],
            vec![kv("banana", 10), kv("cherry", 5)],
        ],
        1,
    );
}

#[test]
fn large_uniform_streams_mostly_absorbed_by_switch() {
    let mut cfg = AskConfig::tiny();
    cfg.aggregators_per_aa = 4096;
    cfg.region_aggregators = 4096;
    let streams: Vec<Vec<KvTuple>> = (0..3).map(|s| random_stream(s, 4000, 500)).collect();
    let (service, task) = run_and_check(cfg, clean_link(), streams, 2);
    let stats = service.switch_stats(task).expect("switch saw the task");
    assert!(
        stats.tuple_aggregation_ratio() > 0.95,
        "uniform small-key-space workload should aggregate on-switch, got {}",
        stats.tuple_aggregation_ratio()
    );
    assert_eq!(stats.stale_dropped, 0);
}

#[test]
fn correctness_under_heavy_loss() {
    run_and_check(
        AskConfig::tiny(),
        nasty_link(0.05, 0.0),
        (0..2).map(|s| random_stream(10 + s, 1500, 120)).collect(),
        3,
    );
}

#[test]
fn correctness_under_duplication_and_reordering() {
    run_and_check(
        AskConfig::tiny(),
        nasty_link(0.0, 0.05),
        (0..2).map(|s| random_stream(20 + s, 1500, 120)).collect(),
        4,
    );
}

#[test]
fn correctness_under_combined_faults() {
    let (service, task) = run_and_check(
        AskConfig::tiny(),
        nasty_link(0.03, 0.03),
        (0..3).map(|s| random_stream(30 + s, 1000, 100)).collect(),
        5,
    );
    let hstats = service.host_stats(service.hosts()[1]);
    assert!(hstats.retransmissions > 0, "loss must trigger retransmits");
    let sstats = service.switch_stats(task).unwrap();
    assert!(
        sstats.duplicates_detected > 0,
        "retransmits over a duplicating link must hit the dedup logic"
    );
}

#[test]
fn long_keys_bypass_switch_but_aggregate_correctly() {
    let streams = vec![
        vec![
            kv("a-key-way-beyond-eight-bytes", 4),
            kv("another-quite-long-key", 6),
            kv("a-key-way-beyond-eight-bytes", 1),
        ],
        vec![kv("another-quite-long-key", 10), kv("ok", 1)],
    ];
    let (service, task) = run_and_check(AskConfig::tiny(), clean_link(), streams, 6);
    let stats = service.switch_stats(task).unwrap();
    assert!(stats.longkv_packets_forwarded > 0, "bypass path exercised");
    assert!(
        stats.tuples_long_forwarded >= 4,
        "every long tuple rides a bypass packet"
    );
    assert_eq!(
        stats.tuples_aggregated + stats.tuples_forwarded,
        1,
        "only the one short key enters the aggregation path"
    );
}

#[test]
fn skewed_workload_with_tiny_region_and_swapping() {
    let mut cfg = AskConfig::tiny();
    cfg.region_aggregators = 8;
    cfg.aggregators_per_aa = 8;
    cfg.swap_threshold = 50;
    // Zipf-ish skew: key i appears ~ 1/(i+1) times.
    let mut stream = Vec::new();
    for i in 0u64..200 {
        for _ in 0..(400 / (i + 1)).max(1) {
            stream.push(KvTuple::new(Key::from_u64(i), 1));
        }
    }
    let (service, task) = run_and_check(cfg, clean_link(), vec![stream], 7);
    let stats = service.switch_stats(task).unwrap();
    assert!(stats.swaps > 0, "swap threshold must trigger swaps");
    assert!(stats.tuples_fetched > 0, "periodic fetches harvest results");
}

#[test]
fn region_denial_falls_back_to_host_only() {
    let mut cfg = AskConfig::tiny();
    // First task grabs the whole per-copy space; second task is denied.
    cfg.region_aggregators = cfg.aggregators_per_aa;
    let mut service = AskServiceBuilder::new(3).config(cfg).seed(8).build();
    let hosts = service.hosts().to_vec();

    let t1 = TaskId(1);
    let t2 = TaskId(2);
    service.submit_task(t1, hosts[0], &[hosts[1]]);
    service.submit_task(t2, hosts[1], &[hosts[2]]);
    let s1 = random_stream(100, 500, 50);
    let s2 = random_stream(200, 500, 50);
    let e1 = reference_aggregate(s1.iter().cloned());
    let e2 = reference_aggregate(s2.iter().cloned());
    service.submit_stream(t1, hosts[1], s1);
    service.submit_stream(t2, hosts[2], s2);
    service
        .run_until_complete(t1, hosts[0], 20_000_000)
        .unwrap();
    service
        .run_until_complete(t2, hosts[1], 20_000_000)
        .unwrap();

    let g1 = service.result(t1, hosts[0]).unwrap();
    let g2 = service.result(t2, hosts[1]).unwrap();
    assert_eq!(g1, e1);
    assert_eq!(g2, e2, "denied task must still aggregate correctly");
    let st2 = service.switch_stats(t2);
    assert!(
        st2.is_none() || st2.unwrap().tuples_aggregated == 0,
        "denied task never aggregates on switch"
    );
}

#[test]
fn concurrent_tasks_are_isolated() {
    let mut cfg = AskConfig::tiny();
    cfg.region_aggregators = 16; // 4 tasks fit in the 64-aggregator space
    let mut service = AskServiceBuilder::new(4).config(cfg).seed(9).build();
    let hosts = service.hosts().to_vec();

    // Two tasks sharing the same keys but different values.
    let t1 = TaskId(11);
    let t2 = TaskId(22);
    service.submit_task(t1, hosts[0], &[hosts[2], hosts[3]]);
    service.submit_task(t2, hosts[1], &[hosts[2], hosts[3]]);
    let mk = |mult: u32| -> Vec<KvTuple> {
        (0..300u64)
            .map(|i| KvTuple::new(Key::from_u64(i % 40), mult))
            .collect()
    };
    service.submit_stream(t1, hosts[2], mk(1));
    service.submit_stream(t1, hosts[3], mk(1));
    service.submit_stream(t2, hosts[2], mk(100));
    service.submit_stream(t2, hosts[3], mk(100));
    service
        .run_until_complete(t1, hosts[0], 20_000_000)
        .unwrap();
    service
        .run_until_complete(t2, hosts[1], 20_000_000)
        .unwrap();

    let g1 = service.result(t1, hosts[0]).unwrap();
    let g2 = service.result(t2, hosts[1]).unwrap();
    // 300 tuples over 40 keys: keys 0..20 appear 8 times, 20..40 appear 7.
    for i in 0..40u64 {
        let per_sender = if i < 20 { 8 } else { 7 };
        let k = Key::from_u64(i);
        assert_eq!(g1[&k], 2 * per_sender, "task 1, key {i}");
        assert_eq!(g2[&k], 2 * per_sender * 100, "task 2, key {i}");
    }
}

#[test]
fn sequential_tasks_reuse_channels_and_regions() {
    let mut service = AskServiceBuilder::new(2)
        .config(AskConfig::tiny())
        .seed(10)
        .build();
    let hosts = service.hosts().to_vec();
    for round in 0..5u32 {
        let task = TaskId(round);
        let stream = random_stream(round as u64, 400, 60);
        let expected = reference_aggregate(stream.iter().cloned());
        service.submit_task(task, hosts[0], &[hosts[1]]);
        service.submit_stream(task, hosts[1], stream);
        service
            .run_until_complete(task, hosts[0], 20_000_000)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(service.result(task, hosts[0]).unwrap(), expected);
    }
    // Persistent channels: sequence numbers continue across tasks, so the
    // switch kept one window per channel throughout.
    let stats = service.host_stats(hosts[1]);
    assert!(stats.packets_sent >= 5, "five tasks sent packets");
}

#[test]
fn co_located_sender_merges_locally() {
    let mut service = AskServiceBuilder::new(2)
        .config(AskConfig::tiny())
        .seed(11)
        .build();
    let hosts = service.hosts().to_vec();
    let task = TaskId(1);
    // hosts[0] is receiver AND sender; hosts[1] is a remote sender.
    service.submit_task(task, hosts[0], &[hosts[0], hosts[1]]);
    let local = vec![kv("x", 1), kv("y", 2)];
    let remote = vec![kv("x", 10), kv("z", 3)];
    let expected = reference_aggregate(local.iter().cloned().chain(remote.iter().cloned()));
    service.submit_stream(task, hosts[0], local);
    service.submit_stream(task, hosts[1], remote);
    service
        .run_until_complete(task, hosts[0], 10_000_000)
        .unwrap();
    assert_eq!(service.result(task, hosts[0]).unwrap(), expected);
    // Local tuples never crossed the network as data packets.
    let local_stats = service.host_stats(hosts[0]);
    assert!(local_stats.tuples_host_aggregated >= 2);
}

#[test]
fn value_stream_mode_indices_as_keys() {
    // Backward compatibility with value-stream aggregation (§5.6): the
    // "keys" are tensor indices, every sender contributes every index.
    let n_senders = 3;
    let len = 256u64;
    let streams: Vec<Vec<KvTuple>> = (0..n_senders)
        .map(|_| {
            (0..len)
                .map(|i| KvTuple::new(Key::from_u64(i), 1))
                .collect()
        })
        .collect();
    let (service, task) = run_and_check(AskConfig::tiny(), clean_link(), streams, 12);
    let got = service.result(task, service.hosts()[0]).unwrap();
    assert!(got.values().all(|&v| v == n_senders as u32));
}

#[test]
fn wrapping_values_are_consistent() {
    // Values near u32::MAX must wrap identically on switch and host.
    let streams = vec![
        vec![kv("w", u32::MAX), kv("w", 2)],
        vec![kv("w", u32::MAX), kv("w", 5)],
    ];
    run_and_check(AskConfig::tiny(), clean_link(), streams, 13);
}

#[test]
fn single_sender_many_keys_medium_and_short_mixed() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut stream = Vec::new();
    for _ in 0..2000 {
        let len = rng.gen_range(1..=10);
        let s: String = (0..len)
            .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
            .collect();
        stream.push(kv(&s, rng.gen_range(1..5)));
    }
    run_and_check(AskConfig::tiny(), clean_link(), vec![stream], 14);
}

#[test]
fn eight_senders_scale_out() {
    let streams: Vec<Vec<KvTuple>> = (0..8).map(|s| random_stream(s, 800, 100)).collect();
    run_and_check(AskConfig::tiny(), clean_link(), streams, 15);
}

#[test]
fn channel_state_exhaustion_degrades_to_pure_forwarding() {
    // §7 "Deployment in Multi-rack networks": a ToR can only keep
    // reliability state for its own rack's data channels; traffic from
    // channels beyond that capacity must still aggregate correctly at the
    // receiver, just without in-network aggregation.
    let mut cfg = AskConfig::tiny();
    cfg.max_channels = 2; // the first two channels get switch state
    let streams: Vec<Vec<KvTuple>> = (0..4).map(|s| random_stream(80 + s, 400, 60)).collect();
    let (service, task) = run_and_check(cfg, clean_link(), streams, 31);
    // Some channels were tracked (switch aggregated something), and the
    // overflow channels' tuples still arrived via the receiver.
    let stats = service.switch_stats(task).unwrap();
    assert!(stats.tuples_aggregated > 0, "in-rack channels get INA");
    let recv = service.host_stats(service.hosts()[0]);
    assert!(
        recv.tuples_host_aggregated > 0,
        "out-of-capacity channels fall back to host aggregation"
    );
}

#[test]
fn chained_pipeline_64_slot_layout() {
    // Four chained pipelines carry up to 128 tuples per packet in the
    // paper (§4); our PktState register bounds the layout at 64 slots.
    let mut cfg = AskConfig::tiny();
    cfg.layout = ask_wire::packet::PacketLayout::short_only(64);
    let streams = vec![random_stream(90, 3000, 400)];
    let (service, task) = run_and_check(cfg, clean_link(), streams, 32);
    let stats = service.switch_stats(task).unwrap();
    assert!(stats.tuples_aggregated > 0);
}

#[test]
fn congestion_control_completes_correctly_and_backs_off() {
    // With the AIMD window enabled (§7 discussion), the task still
    // aggregates exactly once on a lossy link, and the sender keeps fewer
    // packets in flight, cutting retransmissions.
    let mut with_cc = AskConfig::tiny();
    with_cc.congestion_control = true;
    let streams: Vec<Vec<KvTuple>> = (0..2).map(|s| random_stream(70 + s, 1500, 120)).collect();

    let (svc_cc, _) = run_and_check(with_cc, nasty_link(0.05, 0.0), streams.clone(), 21);
    let (svc_plain, _) = run_and_check(AskConfig::tiny(), nasty_link(0.05, 0.0), streams, 21);

    let retx_cc: u64 = svc_cc
        .hosts()
        .iter()
        .map(|&h| svc_cc.host_stats(h).retransmissions)
        .sum();
    let retx_plain: u64 = svc_plain
        .hosts()
        .iter()
        .map(|&h| svc_plain.host_stats(h).retransmissions)
        .sum();
    assert!(
        retx_cc > 0 && retx_plain > 0,
        "lossy link forces retransmits"
    );
    assert!(
        retx_cc <= retx_plain * 2,
        "CC must not explode retransmissions: {retx_cc} vs {retx_plain}"
    );
}

#[test]
fn faulty_control_plane_still_completes() {
    // Aggressive loss on every link: region requests, announces, fetches,
    // swaps, and FINs all face drops; retries must win eventually.
    run_and_check(
        AskConfig::tiny(),
        nasty_link(0.10, 0.02),
        vec![random_stream(55, 600, 80), random_stream(56, 600, 80)],
        16,
    );
}

#[test]
fn corruption_is_detected_and_recovered() {
    // Bit flips in transit fail the envelope CRC at the next hop; the
    // frame is discarded like a loss and the timeout recovers it, so the
    // aggregation stays exact even on a corrupting link.
    let link = LinkConfig::new(100e9, SimDuration::from_micros(1))
        .with_faults(FaultModel::reliable().with_corruption(0.05));
    let (service, _) = run_and_check(
        AskConfig::tiny(),
        link,
        vec![random_stream(60, 800, 90), random_stream(61, 800, 90)],
        41,
    );
    let retx: u64 = service
        .hosts()
        .iter()
        .map(|&h| service.host_stats(h).retransmissions)
        .sum();
    assert!(retx > 0, "corrupted frames must be retransmitted");
}

#[test]
fn max_and_min_operators_end_to_end() {
    // Per-task operators (§1's "generic" promise): MAX and MIN ride the
    // switch's match-table action data and the host merges alike — exact
    // under faults, including the idempotence MAX/MIN enjoy under
    // duplication.
    use ask::service::reference_aggregate_op;
    for op in [AggregateOp::Max, AggregateOp::Min] {
        let streams: Vec<Vec<KvTuple>> = (0..2).map(|s| random_stream(500 + s, 900, 70)).collect();
        let expected = reference_aggregate_op(streams.iter().flatten().cloned(), op);

        let mut service = AskServiceBuilder::new(3)
            .config(AskConfig::tiny())
            .link(nasty_link(0.03, 0.03))
            .seed(51)
            .build();
        let hosts = service.hosts().to_vec();
        let task = TaskId(1);
        service.submit_task_with_op(task, hosts[0], &hosts[1..], op);
        for (i, s) in streams.into_iter().enumerate() {
            service.submit_stream(task, hosts[1 + i], s);
        }
        service
            .run_until_complete(task, hosts[0], 50_000_000)
            .expect("completes");
        assert_eq!(
            service.result(task, hosts[0]).unwrap(),
            expected,
            "{op:?} must aggregate exactly"
        );
    }
}

#[test]
fn concurrent_tasks_with_different_operators() {
    // One SUM task and one MAX task share the switch simultaneously; the
    // per-task ALU selection must not leak between regions.
    use ask::service::reference_aggregate_op;
    let mut cfg = AskConfig::tiny();
    cfg.region_aggregators = 16;
    let mut service = AskServiceBuilder::new(3).config(cfg).seed(52).build();
    let hosts = service.hosts().to_vec();
    let stream_a = random_stream(600, 600, 50);
    let stream_b = random_stream(601, 600, 50);
    let e_sum = reference_aggregate(stream_a.iter().cloned());
    let e_max = reference_aggregate_op(stream_b.iter().cloned(), AggregateOp::Max);

    service.submit_task_with_op(TaskId(1), hosts[0], &[hosts[2]], AggregateOp::Sum);
    service.submit_task_with_op(TaskId(2), hosts[1], &[hosts[2]], AggregateOp::Max);
    service.submit_stream(TaskId(1), hosts[2], stream_a);
    service.submit_stream(TaskId(2), hosts[2], stream_b);
    service
        .run_until_complete(TaskId(1), hosts[0], 50_000_000)
        .unwrap();
    service
        .run_until_complete(TaskId(2), hosts[1], 50_000_000)
        .unwrap();
    assert_eq!(service.result(TaskId(1), hosts[0]).unwrap(), e_sum);
    assert_eq!(service.result(TaskId(2), hosts[1]).unwrap(), e_max);
}

#[test]
fn task_churn_exercises_region_allocator() {
    // Thirty sequential tasks of varying shapes through one service
    // instance: regions are granted, fragmented, coalesced, and reused;
    // persistent channels carry ever-growing sequence numbers; every task
    // stays exactly-once.
    let mut cfg = AskConfig::tiny();
    cfg.region_aggregators = 16; // 4 concurrent regions fit
    let mut service = AskServiceBuilder::new(4).config(cfg).seed(71).build();
    let hosts = service.hosts().to_vec();
    let mut rng = StdRng::seed_from_u64(72);

    for round in 0..30u32 {
        let task = TaskId(round);
        let receiver = hosts[(round as usize) % hosts.len()];
        let senders: Vec<_> = hosts
            .iter()
            .copied()
            .filter(|h| *h != receiver)
            .take(1 + (round as usize) % 3)
            .collect();
        let streams: Vec<Vec<KvTuple>> = senders
            .iter()
            .map(|_| random_stream(rng.gen(), 100 + (round as usize * 17) % 300, 40))
            .collect();
        let expected = reference_aggregate(streams.iter().flatten().cloned());
        service.submit_task(task, receiver, &senders);
        for (i, s) in streams.into_iter().enumerate() {
            service.submit_stream(task, senders[i], s);
        }
        service
            .run_until_complete(task, receiver, 20_000_000)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(
            service.result(task, receiver).unwrap(),
            expected,
            "round {round}"
        );
        // The region was granted (the allocator kept up with churn).
        let stats = service.switch_stats(task).unwrap();
        assert!(
            stats.tuples_aggregated > 0,
            "round {round} should get switch memory after earlier releases"
        );
    }
}
