//! ECN-based congestion control end to end (§7 discussion): a congested
//! receiver downlink marks frames, the marks are echoed on ACKs, and the
//! sender's DCTCP-style window backs off — all without hurting correctness.

use ask::prelude::*;
use ask_simnet::link::LinkConfig;
use ask_simnet::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stream(seed: u64, n: usize) -> Vec<KvTuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| KvTuple::new(Key::from_u64(rng.gen_range(0..256)), rng.gen_range(1..9)))
        .collect()
}

/// Builds a congested scenario: 4 senders, host-only aggregation (the
/// switch forwards everything), so the switch→receiver link becomes a 4:1
/// incast bottleneck whose queue triggers ECN marks.
fn congested_run(congestion_control: bool, ecn: bool) -> (AskService, TaskId) {
    let mut cfg = AskConfig::tiny();
    cfg.force_host_only = true;
    cfg.congestion_control = congestion_control;
    cfg.window = 64;
    // A slower access link amplifies queueing at the shared downlink.
    let mut link = LinkConfig::new(10e9, SimDuration::from_micros(1));
    if ecn {
        link = link.with_ecn(SimDuration::from_micros(5));
    }
    let mut service = AskServiceBuilder::new(5)
        .config(cfg)
        .link(link)
        .seed(7)
        .build();
    let hosts = service.hosts().to_vec();
    let task = TaskId(1);
    let streams: Vec<Vec<KvTuple>> = (0..4).map(|s| stream(s as u64, 2_000)).collect();
    let expected = ask::service::reference_aggregate(streams.iter().flatten().cloned());
    service.submit_task(task, hosts[0], &hosts[1..]);
    for (i, s) in streams.into_iter().enumerate() {
        service.submit_stream(task, hosts[1 + i], s);
    }
    service
        .run_until_complete(task, hosts[0], 100_000_000)
        .expect("completes");
    assert_eq!(
        service.result(task, hosts[0]).expect("result"),
        expected,
        "congestion control must not perturb the aggregation"
    );
    (service, task)
}

#[test]
fn congested_downlink_marks_and_echoes() {
    let (service, _) = congested_run(true, true);
    let hosts = service.hosts().to_vec();
    // The shared switch→receiver link marked frames...
    let down = service.downlink_stats(hosts[0]);
    assert!(down.frames_ecn_marked > 0, "incast queue must mark");
    // ...and the echoes reached the senders.
    let echoes: u64 = hosts[1..]
        .iter()
        .map(|&h| service.host_stats(h).ecn_echoes)
        .sum();
    assert!(echoes > 0, "ECE must propagate back on ACKs");
}

#[test]
fn ecn_backoff_reduces_marking_pressure() {
    let (with_cc, _) = congested_run(true, true);
    let (without_cc, _) = congested_run(false, true);
    let marked = |svc: &AskService| svc.downlink_stats(svc.hosts()[0]).frames_ecn_marked;
    assert!(
        marked(&with_cc) < marked(&without_cc),
        "backing off must shrink the queue: {} vs {}",
        marked(&with_cc),
        marked(&without_cc)
    );
}

#[test]
fn tail_drops_are_recovered_and_cc_reduces_them() {
    // A bounded transmit queue on a 4:1 incast tail-drops packets; the
    // reliability layer must recover them exactly, and the congestion
    // window should shrink the drop count.
    let run = |cc: bool| -> (u64, u64) {
        let mut cfg = AskConfig::tiny();
        cfg.force_host_only = true;
        cfg.congestion_control = cc;
        cfg.window = 256;
        let link = LinkConfig::new(10e9, SimDuration::from_micros(1))
            .with_queue_limit(SimDuration::from_micros(8));
        let mut service = AskServiceBuilder::new(5)
            .config(cfg)
            .link(link)
            .seed(11)
            .build();
        let hosts = service.hosts().to_vec();
        let task = TaskId(1);
        let streams: Vec<Vec<KvTuple>> = (0..4).map(|s| stream(s as u64, 1_500)).collect();
        let expected = ask::service::reference_aggregate(streams.iter().flatten().cloned());
        service.submit_task(task, hosts[0], &hosts[1..]);
        for (i, s) in streams.into_iter().enumerate() {
            service.submit_stream(task, hosts[1 + i], s);
        }
        service
            .run_until_complete(task, hosts[0], 200_000_000)
            .expect("completes despite tail drops");
        assert_eq!(service.result(task, hosts[0]).unwrap(), expected);
        let drops = service.downlink_stats(hosts[0]).frames_tail_dropped;
        let retx: u64 = hosts[1..]
            .iter()
            .map(|&h| service.host_stats(h).retransmissions)
            .sum();
        (drops, retx)
    };
    let (drops_plain, retx_plain) = run(false);
    assert!(
        drops_plain > 0,
        "the incast must overflow the bounded queue"
    );
    assert!(retx_plain > 0, "drops must be recovered by retransmission");
    let (drops_cc, _) = run(true);
    assert!(
        drops_cc < drops_plain,
        "congestion control must reduce tail drops: {drops_cc} vs {drops_plain}"
    );
}

#[test]
fn no_marks_without_ecn_enabled() {
    let (service, _) = congested_run(true, false);
    let hosts = service.hosts().to_vec();
    assert_eq!(service.downlink_stats(hosts[0]).frames_ecn_marked, 0);
    let echoes: u64 = hosts[1..]
        .iter()
        .map(|&h| service.host_stats(h).ecn_echoes)
        .sum();
    assert_eq!(echoes, 0);
}
