//! End-to-end runs over the synthetic production-trace stand-ins and the
//! Figure-9 stream arrangements: correctness plus the coarse statistical
//! properties the evaluation relies on.

use ask::prelude::*;
use ask_workloads::text::TextCorpus;
use ask_workloads::zipf::{zipf_stream, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_stream(cfg: AskConfig, stream: Vec<KvTuple>) -> (AskService, TaskId) {
    let mut service = AskServiceBuilder::new(2).config(cfg).seed(3).build();
    let hosts = service.hosts().to_vec();
    let task = TaskId(1);
    let expected = reference_aggregate(stream.iter().cloned());
    service.submit_task(task, hosts[0], &[hosts[1]]);
    service.submit_stream(task, hosts[1], stream);
    service
        .run_until_complete(task, hosts[0], 400_000_000)
        .expect("completes");
    let got = service.result(task, hosts[0]).expect("result");
    assert_eq!(got, expected, "dataset aggregation must be exact");
    (service, task)
}

#[test]
fn every_paper_corpus_aggregates_exactly() {
    for corpus in TextCorpus::paper_datasets() {
        let stream = corpus.stream(7, 20_000);
        let (service, task) = run_stream(AskConfig::paper_default(), stream);
        let stats = service.switch_stats(task).expect("stats");
        assert!(
            stats.tuple_aggregation_ratio() > 0.5,
            "{}: absorption {}",
            corpus.name,
            stats.tuple_aggregation_ratio()
        );
        // Word corpora mix all three key classes.
        assert!(
            stats.tuples_long_forwarded > 0,
            "{}: long keys",
            corpus.name
        );
    }
}

#[test]
fn corpora_have_all_three_key_classes() {
    for corpus in TextCorpus::paper_datasets() {
        let stream = corpus.stream(1, 30_000);
        let mut short = 0u64;
        let mut medium = 0u64;
        let mut long = 0u64;
        for t in &stream {
            match t.key.class(2) {
                KeyClass::Short => short += 1,
                KeyClass::Medium => medium += 1,
                KeyClass::Long => long += 1,
            }
        }
        assert!(
            short > 0 && medium > 0 && long > 0,
            "{}: {short}/{medium}/{long}",
            corpus.name
        );
        assert!(short > long, "{}: common words are short", corpus.name);
    }
}

#[test]
fn zipf_arrangements_aggregate_exactly_with_swapping() {
    let mut cfg = AskConfig::tiny();
    cfg.aggregators_per_aa = 128;
    cfg.region_aggregators = 128;
    cfg.swap_threshold = 64;
    let mut rng = StdRng::seed_from_u64(5);
    for order in [
        StreamOrder::HotFirst,
        StreamOrder::ColdFirst,
        StreamOrder::Shuffled,
    ] {
        let ranks = zipf_stream(&mut rng, 2_000, 15_000, 1.1, order);
        let stream: Vec<KvTuple> = ranks
            .iter()
            .map(|&r| KvTuple::new(Key::from_u64(r), 1))
            .collect();
        let (service, task) = run_stream(cfg.clone(), stream);
        let stats = service.switch_stats(task).expect("stats");
        assert!(stats.swaps > 0, "{order:?}: swapping engaged");
    }
}

#[test]
fn value_mass_is_conserved_on_corpora() {
    let corpus = TextCorpus::newsgroups();
    let stream = corpus.stream(9, 25_000);
    let mass: u64 = stream.iter().map(|t| t.value as u64).sum();
    let (service, task) = run_stream(AskConfig::paper_default(), stream);
    let got: u64 = service
        .result(task, service.hosts()[0])
        .unwrap()
        .values()
        .map(|&v| v as u64)
        .sum();
    assert_eq!(got, mass);
}
