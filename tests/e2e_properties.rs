//! Property-based end-to-end tests: for *any* random workload, fault mix,
//! and configuration in range, the distributed result equals the reference
//! aggregation — the paper's exactly-once correctness invariant.

use ask::prelude::*;
use ask_simnet::faults::FaultModel;
use ask_simnet::link::LinkConfig;
use ask_simnet::time::SimDuration;
use proptest::prelude::*;

fn link(loss: f64, dup: f64, reorder: f64) -> LinkConfig {
    LinkConfig::new(100e9, SimDuration::from_micros(1)).with_faults(
        FaultModel::reliable()
            .with_loss(loss)
            .with_duplication(dup)
            .with_reordering(reorder, SimDuration::from_micros(20)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Exactly-once aggregation for arbitrary streams and fault rates.
    #[test]
    fn distributed_result_equals_reference(
        seed in any::<u64>(),
        n_senders in 1usize..4,
        tuples_per_sender in 1usize..400,
        distinct in 1u64..80,
        loss in 0.0f64..0.08,
        dup in 0.0f64..0.08,
        reorder in 0.0f64..0.10,
        swap_threshold in prop_oneof![Just(0u64), Just(16u64), Just(100u64)],
        region in prop_oneof![Just(4usize), Just(16usize), Just(64usize)],
        op in prop_oneof![
            Just(AggregateOp::Sum),
            Just(AggregateOp::Max),
            Just(AggregateOp::Min)
        ],
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);

        let mut cfg = AskConfig::tiny();
        cfg.swap_threshold = swap_threshold;
        cfg.region_aggregators = region.min(cfg.aggregators_per_aa);

        let streams: Vec<Vec<KvTuple>> = (0..n_senders)
            .map(|_| {
                (0..tuples_per_sender)
                    .map(|_| KvTuple::new(
                        Key::from_u64(rng.gen_range(0..distinct)),
                        rng.gen_range(1..100),
                    ))
                    .collect()
            })
            .collect();
        let expected =
            ask::service::reference_aggregate_op(streams.iter().flatten().cloned(), op);

        let mut service = AskServiceBuilder::new(n_senders + 1)
            .config(cfg)
            .link(link(loss, dup, reorder))
            .seed(seed ^ 0xabcd)
            .build();
        let hosts = service.hosts().to_vec();
        let task = TaskId(1);
        service.submit_task_with_op(task, hosts[0], &hosts[1..], op);
        for (i, s) in streams.into_iter().enumerate() {
            service.submit_stream(task, hosts[1 + i], s);
        }
        service.run_until_complete(task, hosts[0], 50_000_000)
            .expect("task completes under faults");
        let got = service.result(task, hosts[0]).expect("result");
        prop_assert_eq!(got, expected);
    }

    /// Multi-rack deployments (§7) aggregate exactly once for arbitrary
    /// rack shapes and sender/receiver placements, with faults on every
    /// access link.
    #[test]
    fn multirack_placements_are_exact(
        seed in any::<u64>(),
        rack_a in 1usize..4,
        rack_b in 1usize..4,
        tuples in 50usize..400,
        distinct in 1u64..60,
        loss in 0.0f64..0.05,
    ) {
        use ask::prelude::{MultiRackBuilder};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);

        let mut svc = MultiRackBuilder::new(&[rack_a, rack_b])
            .config(AskConfig::tiny())
            .access_link(link(loss, 0.0, 0.0))
            .seed(seed ^ 0x77)
            .build();
        let hosts: Vec<_> = (0..2).flat_map(|r| svc.rack(r).to_vec()).collect();
        let receiver = hosts[rng.gen_range(0..hosts.len())];
        let senders: Vec<_> = hosts
            .iter()
            .copied()
            .filter(|h| *h != receiver)
            .collect();
        prop_assume!(!senders.is_empty());

        let streams: Vec<Vec<KvTuple>> = senders
            .iter()
            .map(|_| {
                (0..tuples)
                    .map(|_| KvTuple::new(
                        Key::from_u64(rng.gen_range(0..distinct)),
                        rng.gen_range(1..20),
                    ))
                    .collect()
            })
            .collect();
        let expected = reference_aggregate(streams.iter().flatten().cloned());
        let task = TaskId(1);
        svc.submit_task(task, receiver, &senders);
        for (i, s) in streams.into_iter().enumerate() {
            svc.submit_stream(task, senders[i], s);
        }
        svc.run_until_complete(task, receiver, 50_000_000)
            .expect("multi-rack task completes");
        prop_assert_eq!(svc.task_result(task, receiver).unwrap().entries, expected);
    }

    /// The switch never aggregates a tuple twice: total value mass is
    /// conserved between (switch fetches + host residual) and the input.
    #[test]
    fn value_mass_conserved(
        seed in any::<u64>(),
        tuples in 1usize..500,
        distinct in 1u64..50,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let stream: Vec<KvTuple> = (0..tuples)
            .map(|_| KvTuple::new(Key::from_u64(rng.gen_range(0..distinct)), rng.gen_range(1..10)))
            .collect();
        let mass: u64 = stream.iter().map(|t| t.value as u64).sum();

        let mut service = AskServiceBuilder::new(2)
            .config(AskConfig::tiny())
            .link(link(0.02, 0.02, 0.02))
            .seed(seed)
            .build();
        let hosts = service.hosts().to_vec();
        let task = TaskId(1);
        service.submit_task(task, hosts[0], &[hosts[1]]);
        service.submit_stream(task, hosts[1], stream);
        service.run_until_complete(task, hosts[0], 50_000_000).expect("completes");
        let got = service.result(task, hosts[0]).unwrap();
        let got_mass: u64 = got.values().map(|&v| v as u64).sum();
        prop_assert_eq!(got_mass, mass);
    }
}
