//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal, API-compatible implementation of the
//! pieces of `rand` it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `gen`, `gen_range` (half-open and inclusive, integer and float) and
//! `gen_bool`.
//!
//! The generator is xoshiro256** (public domain, Blackman & Vigna),
//! seeded through SplitMix64 — statistically solid for simulation use
//! (fault-injection tests here assert e.g. 4500..5500 drops out of
//! 10 000 at p=0.5). It is deterministic for a given seed, which the
//! simulations rely on, but is NOT the same stream as upstream
//! `StdRng` (ChaCha12) — acceptable because nothing in the workspace
//! pins exact draw values.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`u8..=u128`,
    /// signed integers, `f32`/`f64` in `[0, 1)`, `bool`).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from the standard (uniform) distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via 128-bit multiply (Lemire); the
/// residual modulo bias at these span sizes is far below anything the
/// workspace's statistical assertions can observe.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let x = u128::sample(rng);
    // (x * span) >> 128 without 256-bit arithmetic: split x.
    let lo = ((x & (u128::MAX >> 64)) * span) >> 64;
    let hi = (x >> 64) * span;
    (hi + lo) >> 64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )+};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded through
    /// SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(0u64..=0);
            assert_eq!(g, 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "got {c}");
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(9);
        // Must not overflow span arithmetic.
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
