//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal property-testing harness covering the
//! surface its tests use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), `prop_assert*` / [`prop_assume!`],
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map`, integer /
//! float range strategies, [`arbitrary::any`], [`collection::vec`],
//! [`option::of`], and tuple strategies.
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: each test runs `cases` deterministic pseudo-random
//! inputs (seeded from the test's module path, so runs are
//! reproducible) and fails with a plain assertion message. The default
//! case count honours the `PROPTEST_CASES` environment variable.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of pseudo-random cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not
        /// implemented, so this is ignored.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic per-case random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Rng for case number `case` of the property named `name`;
        /// the seed mixes both so distinct properties see distinct
        /// streams, reproducibly across runs.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// This vendored version generates directly from a [`TestRng`];
    /// there is no value tree and no shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-typed strategies (built by
    /// [`prop_oneof!`](crate::prop_oneof)).
    #[derive(Debug, Clone)]
    pub struct Union<S>(Vec<S>);

    impl<S: Strategy> Union<S> {
        /// Wraps a non-empty list of alternatives.
        pub fn new(arms: Vec<S>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let ix = rng.gen_range(0..self.0.len());
            self.0[ix].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $ix:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )+};
    }
    impl_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f32, f64, bool);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length. Built only
    /// from `usize` ranges so length literals infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` (e.g. `1..50`
    /// or `1..=16`) and whose elements are drawn from `element`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Generates `Some` (three times out of four) or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { body }`
/// item expands to a plain `#[test]`-compatible function running
/// `config.cases` deterministic pseudo-random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __one_case = |__rng: &mut $crate::test_runner::TestRng| {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                $(let $arg = ($strat).generate(__rng);)+
                $body
            };
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                __one_case(&mut __rng);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies of one type (all arms must share a
/// concrete strategy type in this vendored version; the workspace only
/// uses `Just(..)` arms).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

/// Asserts a condition inside a property (plain `assert!`; no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a
/// precondition. (Skipped cases still count toward `cases`.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(
            v in arb_even(),
            pair in (1usize..4, 0.0f64..1.0),
            pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
            items in crate::collection::vec(1u8..=255, 1..=16),
            opt in crate::option::of(any::<u32>()),
        ) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!((0.0..1.0).contains(&pair.1));
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(!items.is_empty() && items.len() <= 16);
            prop_assert!(!items.contains(&0));
            prop_assume!(opt.is_some());
            prop_assert_ne!(items.len(), 0);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        use crate::strategy::Strategy as _;
        use crate::test_runner::TestRng;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|i| s.generate(&mut TestRng::for_case("x", i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| s.generate(&mut TestRng::for_case("x", i)))
            .collect();
        assert_eq!(a, b);
    }
}
