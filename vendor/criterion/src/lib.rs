//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal, API-compatible harness covering the
//! surface `benches/` uses: `Criterion::bench_function`,
//! `benchmark_group` with `Throughput`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Measurement model: each benchmark is warmed up for a fixed wall
//! interval, then timed over adaptively sized batches until the
//! measurement interval elapses; the reported figure is the mean time
//! per iteration with a min/max spread across batches. Like upstream,
//! the full measurement only runs under `cargo bench` (cargo passes
//! `--bench`); under `cargo test` each benchmark executes once as a
//! smoke test.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export point used by benches as `criterion::black_box`.
pub use std::hint::black_box;

/// How batched inputs are grouped per timing sample. The vendored
/// harness times one input at a time, so the variants only exist for
/// source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// Declared work per iteration, used to report a rate next to the
/// per-iteration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    mode: Mode,
    result: &'a mut Option<Sample>,
}

#[derive(Clone, Copy)]
enum Mode {
    /// `cargo bench`: full warm-up + measurement.
    Measure {
        warm_up: Duration,
        measure: Duration,
    },
    /// `cargo test`: run the routine once to prove it works.
    Smoke,
}

/// One benchmark's aggregated timing.
#[derive(Debug, Clone, Copy)]
struct Sample {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure { warm_up, measure } => {
                let t0 = Instant::now();
                let mut warm_iters: u64 = 0;
                while t0.elapsed() < warm_up {
                    black_box(routine());
                    warm_iters += 1;
                }
                // Batch size targeting ~1ms per timing sample.
                let per_iter = warm_up.as_secs_f64() / warm_iters.max(1) as f64;
                let batch = ((1e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);
                let mut batches: Vec<f64> = Vec::new();
                let mut iters: u64 = 0;
                let m0 = Instant::now();
                while m0.elapsed() < measure {
                    let b0 = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    let ns = b0.elapsed().as_nanos() as f64 / batch as f64;
                    batches.push(ns);
                    iters += batch;
                }
                *self.result = Some(summarize(&batches, iters));
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(routine(setup()));
            }
            Mode::Measure { warm_up, measure } => {
                let t0 = Instant::now();
                while t0.elapsed() < warm_up {
                    black_box(routine(setup()));
                }
                let mut batches: Vec<f64> = Vec::new();
                let mut iters: u64 = 0;
                let m0 = Instant::now();
                while m0.elapsed() < measure {
                    let input = setup();
                    let b0 = Instant::now();
                    black_box(routine(input));
                    batches.push(b0.elapsed().as_nanos() as f64);
                    iters += 1;
                }
                *self.result = Some(summarize(&batches, iters));
            }
        }
    }
}

fn summarize(batches: &[f64], iters: u64) -> Sample {
    let n = batches.len().max(1) as f64;
    let mean = batches.iter().sum::<f64>() / n;
    let min = batches.iter().copied().fold(f64::INFINITY, f64::min);
    let max = batches.iter().copied().fold(0.0f64, f64::max);
    Sample {
        mean_ns: mean,
        min_ns: if min.is_finite() { min } else { mean },
        max_ns: max.max(mean),
        iters,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// Entry point owned by `criterion_group!`-generated functions.
pub struct Criterion {
    mode: Mode,
    throughput: Option<Throughput>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` to bench targets under `cargo bench`;
        // under `cargo test` (no flag) run in fast smoke mode, like
        // upstream criterion's test mode.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let mode = if bench_mode {
            Mode::Measure {
                warm_up: duration_from_env("CRITERION_WARM_UP_MS", 300),
                measure: duration_from_env("CRITERION_MEASURE_MS", 1000),
            }
        } else {
            Mode::Smoke
        };
        Criterion {
            mode,
            throughput: None,
        }
    }
}

fn duration_from_env(var: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

impl Criterion {
    /// Accepted for compatibility with generated group functions.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut result = None;
        let mut b = Bencher {
            mode: self.mode,
            result: &mut result,
        };
        f(&mut b);
        self.report(name, result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    fn report(&self, name: &str, sample: Option<Sample>) {
        let Some(s) = sample else {
            if matches!(self.mode, Mode::Smoke) {
                println!("{name:<40} ok (smoke)");
            }
            return;
        };
        let mut line = format!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(s.min_ns),
            fmt_ns(s.mean_ns),
            fmt_ns(s.max_ns)
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = count as f64 / (s.mean_ns * 1e-9);
            let _ = write!(line, "  thrpt: {}", fmt_rate(per_sec, unit));
        }
        let _ = write!(line, "  ({} iters)", s.iters);
        println!("{line}");
    }
}

/// Scoped group sharing a throughput declaration.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for rate reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.c.throughput = Some(tp);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.c.throughput = None;
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        // Unit tests never pass --bench, so Criterion::default() is in
        // smoke mode and bench bodies execute exactly once per call.
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
        let mut batched = 0;
        c.bench_function("probe_batched", |b| {
            b.iter_batched(|| 3, |v| batched += v, BatchSize::SmallInput)
        });
        assert_eq!(batched, 3);
    }

    #[test]
    fn groups_scope_throughput() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.bench_function("a", |b| b.iter(|| ()));
            g.finish();
        }
        assert!(c.throughput.is_none(), "finish clears group throughput");
    }
}
