//! Offline vendored subset of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal, API-compatible implementation of the
//! pieces of `bytes` it actually uses: [`Bytes`] (cheaply cloneable,
//! slice-shareable immutable buffers), [`BytesMut`] (a growable builder
//! that freezes into [`Bytes`] without copying), and the [`Buf`] /
//! [`BufMut`] read/write cursor traits.
//!
//! Semantics intentionally match upstream `bytes` for the covered
//! surface: `Bytes::clone` and `Bytes::slice` are O(1) reference-count
//! bumps, `Bytes::copy_to_bytes` (via [`Buf`]) is zero-copy, and
//! `BytesMut::freeze` transfers the allocation instead of copying it.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Clones and sub-slices share one reference-counted allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Creates `Bytes` from a static slice (copies once; the upstream
    /// zero-copy static representation is not needed here).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `bytes` into a fresh allocation.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing this allocation — O(1), no copy.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::copy_from_slice(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`] without copying.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Clears the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.vec.clear()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src)
    }

    /// Converts into immutable [`Bytes`], transferring the allocation
    /// (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.vec), f)
    }
}

/// Read cursor over a contiguous byte source. Multi-byte reads are
/// big-endian, matching upstream `bytes`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes (always contiguous in this implementation).
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes `len` bytes into a new [`Bytes`]. Copies by default;
    /// the `Bytes` implementation overrides this with a zero-copy slice.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable buffer. Multi-byte writes are
/// big-endian, matching upstream `bytes`.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(Arc::strong_count(&b.data), 2);
    }

    #[test]
    fn copy_to_bytes_is_zero_copy_for_bytes() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(Arc::strong_count(&head.data), 2, "shared, not copied");
    }

    #[test]
    fn round_trip_big_endian() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(1);
        m.put_u16(2);
        m.put_u32(3);
        m.put_u64(4);
        m.put_u128(5);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u16(), 2);
        assert_eq!(b.get_u32(), 3);
        assert_eq!(b.get_u64(), 4);
        assert_eq!(b.get_u128(), 5);
        assert_eq!(b.copy_to_bytes(2), Bytes::from_static(b"xy"));
        assert!(!b.has_remaining());
    }

    #[test]
    fn freeze_transfers_allocation() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u32(0xdead_beef);
        let ptr = m.vec.as_ptr();
        let b = m.freeze();
        assert_eq!(b.data.as_ptr(), ptr, "no copy on freeze");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32();
    }
}
