//! Recycled packet-buffer pool.
//!
//! Every simulated hop used to allocate a fresh `Vec<Option<KvTuple>>` (a
//! data packet's slot vector) or `Vec<KvTuple>` (a long-key batch) and drop
//! it one hop later. The pool keeps those backing stores on a free list so
//! steady-state runs reuse the same handful of buffers: the decoder takes a
//! recycled vector, the consumer (switch verdict, daemon merge, window ACK)
//! returns it once the tuples are absorbed.
//!
//! Ownership rule: the pool is owned by the node that decodes (one per
//! switch engine, one per daemon) — never shared, never locked. A vector
//! may be recycled into any pool; capacities vary across packet layouts,
//! which is fine because [`PacketPool::take_slots`] reserves up to the
//! requested capacity after popping a free-list entry.

use crate::packet::KvTuple;

/// Upper bound on retained vectors per free list — bounds pool memory when
/// a workload decodes a large burst and then recycles it all at once.
const MAX_RETAINED: usize = 4096;

/// A per-owner free list of packet backing stores with hit/miss counters.
///
/// `hits`/`misses` count `take_*` calls served from the free list vs. by a
/// fresh allocation, so a steady-state run can prove it stopped allocating
/// (the tentpole's counter-verified claim).
#[derive(Debug, Default)]
pub struct PacketPool {
    slots: Vec<Vec<Option<KvTuple>>>,
    tuples: Vec<Vec<KvTuple>>,
    hits: u64,
    misses: u64,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared slot vector with at least `capacity` reserved,
    /// recycling a free-list entry when one is available.
    pub fn take_slots(&mut self, capacity: usize) -> Vec<Option<KvTuple>> {
        match self.slots.pop() {
            Some(mut v) => {
                self.hits += 1;
                v.clear();
                v.reserve(capacity);
                v
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Returns a slot vector to the free list. Contents are discarded;
    /// zero-capacity vectors are dropped rather than pooled.
    pub fn recycle_slots(&mut self, mut v: Vec<Option<KvTuple>>) {
        if v.capacity() == 0 || self.slots.len() >= MAX_RETAINED {
            return;
        }
        v.clear();
        self.slots.push(v);
    }

    /// Takes a cleared tuple vector with at least `capacity` reserved,
    /// recycling a free-list entry when one is available.
    pub fn take_tuples(&mut self, capacity: usize) -> Vec<KvTuple> {
        match self.tuples.pop() {
            Some(mut v) => {
                self.hits += 1;
                v.clear();
                v.reserve(capacity);
                v
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Returns a tuple vector to the free list. Contents are discarded;
    /// zero-capacity vectors are dropped rather than pooled.
    pub fn recycle_tuples(&mut self, mut v: Vec<KvTuple>) {
        if v.capacity() == 0 || self.tuples.len() >= MAX_RETAINED {
            return;
        }
        v.clear();
        self.tuples.push(v);
    }

    /// `take_*` calls served from the free list.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// `take_*` calls that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of takes served without allocating (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Tops the slot free list up to at least `count` entries, each with
    /// `capacity` reserved, so the first takes of a known-size burst hit the
    /// pool instead of allocating mid-send. Idempotent once the list is
    /// populated (recycled vectors count toward `count`); never exceeds the
    /// retention bound and never touches the hit/miss counters.
    pub fn prewarm_slots(&mut self, count: usize, capacity: usize) {
        if capacity == 0 {
            return;
        }
        let target = count.min(MAX_RETAINED);
        while self.slots.len() < target {
            self.slots.push(Vec::with_capacity(capacity));
        }
    }

    /// [`PacketPool::prewarm_slots`] for the tuple free list.
    pub fn prewarm_tuples(&mut self, count: usize, capacity: usize) {
        if capacity == 0 {
            return;
        }
        let target = count.min(MAX_RETAINED);
        while self.tuples.len() < target {
            self.tuples.push(Vec::with_capacity(capacity));
        }
    }

    /// Number of vectors currently parked on the free lists.
    pub fn retained(&self) -> usize {
        self.slots.len() + self.tuples.len()
    }

    /// Slot vectors currently parked on the free list.
    pub fn retained_slots(&self) -> usize {
        self.slots.len()
    }

    /// Tuple vectors currently parked on the free list.
    pub fn retained_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// Folds another pool's counters into this one (for merged reports).
    pub fn absorb_counters(&mut self, other: &PacketPool) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;

    fn kv(s: &str, v: u32) -> KvTuple {
        KvTuple::new(Key::from_str(s).unwrap(), v)
    }

    #[test]
    fn take_recycle_take_hits() {
        let mut p = PacketPool::new();
        let v = p.take_slots(8);
        assert_eq!((p.hits(), p.misses()), (0, 1));
        assert!(v.capacity() >= 8);
        p.recycle_slots(v);
        assert_eq!(p.retained(), 1);
        let v2 = p.take_slots(4);
        assert_eq!((p.hits(), p.misses()), (1, 1));
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 8, "recycled capacity survives");
    }

    #[test]
    fn recycled_vector_is_cleared() {
        let mut p = PacketPool::new();
        let mut v = p.take_slots(2);
        v.push(Some(kv("a", 1)));
        v.push(None);
        p.recycle_slots(v);
        let v2 = p.take_slots(2);
        assert!(v2.is_empty());
    }

    #[test]
    fn tuples_and_slots_pool_independently() {
        let mut p = PacketPool::new();
        p.recycle_tuples(vec![kv("a", 1)]);
        assert_eq!(p.retained(), 1);
        // A slots take cannot be served by the tuples free list.
        let _ = p.take_slots(1);
        assert_eq!((p.hits(), p.misses()), (0, 1));
        let t = p.take_tuples(1);
        assert!(t.is_empty());
        assert_eq!((p.hits(), p.misses()), (1, 1));
    }

    #[test]
    fn zero_capacity_vectors_are_not_pooled() {
        let mut p = PacketPool::new();
        p.recycle_slots(Vec::new());
        p.recycle_tuples(Vec::new());
        assert_eq!(p.retained(), 0);
    }

    #[test]
    fn retention_is_bounded() {
        let mut p = PacketPool::new();
        for _ in 0..(MAX_RETAINED + 100) {
            p.recycle_tuples(Vec::with_capacity(1));
        }
        assert_eq!(p.retained(), MAX_RETAINED);
    }

    #[test]
    fn hit_rate_reflects_steady_state() {
        let mut p = PacketPool::new();
        assert_eq!(p.hit_rate(), 0.0);
        for _ in 0..100 {
            let v = p.take_slots(4);
            p.recycle_slots(v);
        }
        assert!(p.hit_rate() > 0.98, "one miss then 99 hits");
    }

    #[test]
    fn prewarm_serves_first_takes_as_hits() {
        let mut p = PacketPool::new();
        p.prewarm_slots(3, 8);
        p.prewarm_tuples(2, 4);
        assert_eq!((p.retained_slots(), p.retained_tuples()), (3, 2));
        assert_eq!((p.hits(), p.misses()), (0, 0), "prewarm is counter-free");
        for _ in 0..3 {
            let v = p.take_slots(8);
            assert!(v.capacity() >= 8);
        }
        for _ in 0..2 {
            let _ = p.take_tuples(4);
        }
        assert_eq!((p.hits(), p.misses()), (5, 0));
    }

    #[test]
    fn prewarm_tops_up_not_accumulates() {
        let mut p = PacketPool::new();
        p.recycle_slots(Vec::with_capacity(16));
        p.prewarm_slots(3, 8);
        assert_eq!(p.retained_slots(), 3, "existing entries count toward it");
        p.prewarm_slots(3, 8);
        assert_eq!(p.retained_slots(), 3, "repeat prewarm is a no-op");
        p.prewarm_slots(2, 8);
        assert_eq!(p.retained_slots(), 3, "never shrinks the free list");
    }

    #[test]
    fn prewarm_respects_retention_bound_and_zero_capacity() {
        let mut p = PacketPool::new();
        p.prewarm_tuples(MAX_RETAINED + 50, 1);
        assert_eq!(p.retained_tuples(), MAX_RETAINED);
        p.prewarm_slots(4, 0);
        assert_eq!(p.retained_slots(), 0, "zero-capacity prewarm is dropped");
    }

    #[test]
    fn absorb_counters_sums() {
        let mut a = PacketPool::new();
        let mut b = PacketPool::new();
        let v = a.take_slots(1);
        a.recycle_slots(v);
        let _ = a.take_slots(1);
        let _ = b.take_tuples(1);
        a.absorb_counters(&b);
        assert_eq!((a.hits(), a.misses()), (1, 2));
    }
}
