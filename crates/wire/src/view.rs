//! Borrowed, zero-materialization views over encoded frames.
//!
//! [`FrameView::parse`] validates an envelope exactly as strictly as
//! [`decode_envelope`](crate::codec::decode_envelope) — one CRC pass, the
//! same truncation/layout/key checks in the same order — but builds **no**
//! owned packet: no `Vec<Option<KvTuple>>`, no pool traffic, no per-slot
//! `Key` values. Header fields and slot (key, value) pairs are typed reads
//! over the raw frame bytes, which is how the paper's Tofino pipeline
//! consumes packets (the ASIC never "decodes"; it reads fields in place).
//!
//! The switch's hot ingest path parses a view, aggregates straight out of
//! the slot bytes, and — when a packet is only partially absorbed —
//! rewrites the frame with [`DataPacketView::residual_frame`], which copies
//! the surviving slots and patches the bitmap and CRC in one exact-size
//! buffer. Frames a view cannot serve (long-kv relays, fetch drains,
//! no-aggregate pass-through, layout mismatches) fall back to
//! [`FrameView::materialize_pooled`], which reuses the view's one-shot CRC
//! validation instead of re-checksumming.

use crate::codec::{
    check_envelope_header, crc32, decode, decode_pooled, CodecError, Envelope, CTRL_EPOCH_NOTIFY,
    CTRL_REGION_DENY, CTRL_REGION_GRANT, CTRL_REGION_RELEASE, CTRL_REGION_REQUEST,
    CTRL_TASK_ANNOUNCE, ENVELOPE_HEADER_BYTES, KIND_ACK, KIND_CONTROL, KIND_DATA, KIND_FETCH_REPLY,
    KIND_FETCH_REQ, KIND_FIN, KIND_LONG_KV, KIND_SWAP,
};
use crate::key::{fnv1a, Key, KPART_BYTES};
use crate::packet::{
    AaRegion, AggregateOp, ChannelId, ControlMsg, FetchScope, PacketLayout, SeqNo, TaskId,
};
use crate::pool::PacketPool;
use bytes::{BufMut, Bytes, BytesMut};

/// Offset of the data-packet bitmap within a frame: envelope header, kind
/// byte, task/channel/seq, and the three declared-layout bytes.
const BITMAP_OFFSET: usize = ENVELOPE_HEADER_BYTES + 1 + 4 + 4 + 8 + 3;

/// Offset of the first slot's bytes within a data frame.
const SLOTS_OFFSET: usize = BITMAP_OFFSET + 16;

#[inline]
fn need(total: usize, pos: usize, n: usize) -> Result<(), CodecError> {
    if total - pos < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

#[inline]
fn rd_u32(b: &[u8], pos: usize) -> u32 {
    u32::from_be_bytes([b[pos], b[pos + 1], b[pos + 2], b[pos + 3]])
}

#[inline]
fn rd_u64(b: &[u8], pos: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[pos..pos + 8]);
    u64::from_be_bytes(w)
}

#[inline]
fn rd_u128(b: &[u8], pos: usize) -> u128 {
    let mut w = [0u8; 16];
    w.copy_from_slice(&b[pos..pos + 16]);
    u128::from_be_bytes(w)
}

/// A validated envelope whose packet body is still raw bytes.
///
/// Produced by [`FrameView::parse`]; the frame buffer is held by reference
/// count, so cloning a view (or the [`DataPacketView`] inside it) never
/// copies frame bytes.
#[derive(Debug, Clone)]
pub struct FrameView {
    bytes: Bytes,
    src: u32,
    dst: u32,
    epoch: u32,
    flags: u8,
    packet: PacketView,
}

/// The kind-discriminated body of a [`FrameView`].
///
/// Small fixed-size packets (acks, fins, control) are decoded outright —
/// they carry no slot payload, so there is nothing to borrow. Data packets
/// stay borrowed as a [`DataPacketView`]; long-kv and fetch-reply bodies
/// are *validated* (every entry length and key checked) but not
/// materialized, since the switch only relays them.
#[derive(Debug, Clone)]
pub enum PacketView {
    /// A slotted data packet, readable in place.
    Data(DataPacketView),
    /// A long-key bypass packet; entries validated, not materialized.
    LongKv {
        /// Aggregation task.
        task: TaskId,
        /// Data channel.
        channel: ChannelId,
        /// Channel sequence number.
        seq: SeqNo,
        /// Number of (key, value) entries in the body.
        entry_count: u32,
    },
    /// Per-channel cumulative acknowledgement.
    Ack {
        /// Acknowledged channel.
        channel: ChannelId,
        /// Acknowledged sequence number.
        seq: SeqNo,
        /// Explicit congestion notification echo.
        ece: bool,
    },
    /// End-of-stream marker.
    Fin {
        /// Aggregation task.
        task: TaskId,
        /// Data channel.
        channel: ChannelId,
        /// Final sequence number.
        seq: SeqNo,
    },
    /// Shadow-copy swap command.
    Swap {
        /// Aggregation task.
        task: TaskId,
    },
    /// Receiver-driven fetch of switch aggregator state.
    FetchRequest {
        /// Aggregation task.
        task: TaskId,
        /// Which aggregators to drain.
        scope: FetchScope,
        /// Fetch sequence number (idempotency token).
        fetch_seq: u32,
    },
    /// Reply to a fetch; entries validated, not materialized.
    FetchReply {
        /// Aggregation task.
        task: TaskId,
        /// Echoed fetch sequence number.
        fetch_seq: u32,
        /// Number of (key, value) entries in the body.
        entry_count: u32,
    },
    /// Control-plane message, decoded outright (no payload to borrow).
    Control(ControlMsg),
}

/// A data packet readable directly from frame bytes.
///
/// Header fields are pre-decoded at parse time (they are read on every
/// path); slot bytes stay in place and are walked by [`slots`]
/// (`DataPacketView::slots`). All slots were validated during
/// [`FrameView::parse`], so accessors never fail.
#[derive(Debug, Clone)]
pub struct DataPacketView {
    bytes: Bytes,
    task: TaskId,
    channel: ChannelId,
    seq: SeqNo,
    short_slots: u8,
    medium_groups: u8,
    medium_segments: u8,
    bitmap: u128,
}

/// One occupied slot of a [`DataPacketView`]: the zero-padded key bytes
/// exactly as stored on the wire (and in the switch's `kPart` registers),
/// plus the value.
#[derive(Debug, Clone, Copy)]
pub struct SlotView<'a> {
    index: usize,
    padded: &'a [u8],
    key_len: usize,
    value: u32,
}

/// Iterator over the occupied slots of a [`DataPacketView`], in slot-index
/// order (the wire order).
#[derive(Debug)]
pub struct SlotViews<'a> {
    view: &'a DataPacketView,
    index: usize,
    offset: usize,
}

/// One `(key, value)` entry of a long-kv or fetch-reply body, read in place
/// from frame bytes. Produced by [`FrameView::entries`]; the bytes were
/// validated during [`FrameView::parse`], so accessors never fail.
#[derive(Debug, Clone, Copy)]
pub struct EntryView<'a> {
    key: &'a [u8],
    value: u32,
}

/// Iterator over the validated entries of a long-kv or fetch-reply body, in
/// wire order. See [`FrameView::entries`].
#[derive(Debug)]
pub struct EntryViews<'a> {
    bytes: &'a [u8],
    offset: usize,
    remaining: u32,
}

impl FrameView {
    /// Parses and fully validates an encoded envelope without materializing
    /// the packet. Accept/reject behavior — including the specific error —
    /// is identical to [`decode_envelope`](crate::codec::decode_envelope).
    ///
    /// # Errors
    ///
    /// The same conditions, in the same order, as
    /// [`decode_envelope`](crate::codec::decode_envelope).
    pub fn parse(bytes: Bytes) -> Result<FrameView, CodecError> {
        let h = check_envelope_header(&bytes)?;
        let b: &[u8] = &bytes;
        let total = b.len();
        let mut pos = ENVELOPE_HEADER_BYTES;
        need(total, pos, 1)?;
        let kind = b[pos];
        pos += 1;
        let packet = match kind {
            KIND_DATA => {
                need(total, pos, 4 + 4 + 8 + 3 + 16)?;
                let task = TaskId(rd_u32(b, pos));
                let channel = ChannelId(rd_u32(b, pos + 4));
                let seq = SeqNo(rd_u64(b, pos + 8));
                let short_slots = b[pos + 16] as usize;
                let medium_groups = b[pos + 17] as usize;
                let medium_segments = b[pos + 18] as usize;
                let slots_total = short_slots + medium_groups;
                if slots_total == 0
                    || slots_total > 128
                    || (medium_groups > 0 && medium_segments < 2)
                {
                    return Err(CodecError::BadLayout);
                }
                let bitmap = rd_u128(b, pos + 19);
                if slots_total < 128 && bitmap >> slots_total != 0 {
                    return Err(CodecError::BadLayout);
                }
                pos += 4 + 4 + 8 + 3 + 16;
                for i in 0..slots_total {
                    if bitmap & (1 << i) == 0 {
                        continue;
                    }
                    let width = if i < short_slots {
                        KPART_BYTES
                    } else {
                        KPART_BYTES * medium_segments
                    };
                    need(total, pos, width + 4)?;
                    let raw = &b[pos..pos + width];
                    let key_len = raw.iter().rposition(|&x| x != 0).map_or(0, |p| p + 1);
                    if key_len == 0 {
                        return Err(crate::key::KeyError::Empty.into());
                    }
                    if raw[..key_len].contains(&0) {
                        return Err(crate::key::KeyError::ContainsNul.into());
                    }
                    pos += width + 4;
                }
                PacketView::Data(DataPacketView {
                    bytes: bytes.clone(),
                    task,
                    channel,
                    seq,
                    short_slots: short_slots as u8,
                    medium_groups: medium_groups as u8,
                    medium_segments: medium_segments as u8,
                    bitmap,
                })
            }
            KIND_LONG_KV => {
                need(total, pos, 4 + 4 + 8)?;
                let task = TaskId(rd_u32(b, pos));
                let channel = ChannelId(rd_u32(b, pos + 4));
                let seq = SeqNo(rd_u64(b, pos + 8));
                pos += 16;
                let entry_count = validate_entries(b, total, &mut pos)?;
                PacketView::LongKv {
                    task,
                    channel,
                    seq,
                    entry_count,
                }
            }
            KIND_ACK => {
                need(total, pos, 4 + 8 + 1)?;
                let v = PacketView::Ack {
                    channel: ChannelId(rd_u32(b, pos)),
                    seq: SeqNo(rd_u64(b, pos + 4)),
                    ece: b[pos + 12] != 0,
                };
                pos += 13;
                v
            }
            KIND_FIN => {
                need(total, pos, 4 + 4 + 8)?;
                let v = PacketView::Fin {
                    task: TaskId(rd_u32(b, pos)),
                    channel: ChannelId(rd_u32(b, pos + 4)),
                    seq: SeqNo(rd_u64(b, pos + 8)),
                };
                pos += 16;
                v
            }
            KIND_SWAP => {
                need(total, pos, 4)?;
                let v = PacketView::Swap {
                    task: TaskId(rd_u32(b, pos)),
                };
                pos += 4;
                v
            }
            KIND_FETCH_REQ => {
                need(total, pos, 9)?;
                let task = TaskId(rd_u32(b, pos));
                let scope = match b[pos + 4] {
                    0 => FetchScope::Inactive,
                    _ => FetchScope::All,
                };
                let fetch_seq = rd_u32(b, pos + 5);
                pos += 9;
                PacketView::FetchRequest {
                    task,
                    scope,
                    fetch_seq,
                }
            }
            KIND_FETCH_REPLY => {
                need(total, pos, 8)?;
                let task = TaskId(rd_u32(b, pos));
                let fetch_seq = rd_u32(b, pos + 4);
                pos += 8;
                let entry_count = validate_entries(b, total, &mut pos)?;
                PacketView::FetchReply {
                    task,
                    fetch_seq,
                    entry_count,
                }
            }
            KIND_CONTROL => {
                need(total, pos, 1)?;
                let ctrl = b[pos];
                pos += 1;
                let msg = match ctrl {
                    CTRL_REGION_REQUEST => {
                        need(total, pos, 5)?;
                        let m = ControlMsg::RegionRequest {
                            task: TaskId(rd_u32(b, pos)),
                            op: AggregateOp::from_code(b[pos + 4]),
                        };
                        pos += 5;
                        m
                    }
                    CTRL_REGION_GRANT => {
                        need(total, pos, 12)?;
                        let m = ControlMsg::RegionGrant {
                            task: TaskId(rd_u32(b, pos)),
                            region: AaRegion {
                                base: rd_u32(b, pos + 4),
                                aggregators: rd_u32(b, pos + 8),
                            },
                        };
                        pos += 12;
                        m
                    }
                    CTRL_REGION_DENY => {
                        need(total, pos, 4)?;
                        let m = ControlMsg::RegionDeny {
                            task: TaskId(rd_u32(b, pos)),
                        };
                        pos += 4;
                        m
                    }
                    CTRL_REGION_RELEASE => {
                        need(total, pos, 4)?;
                        let m = ControlMsg::RegionRelease {
                            task: TaskId(rd_u32(b, pos)),
                        };
                        pos += 4;
                        m
                    }
                    CTRL_TASK_ANNOUNCE => {
                        need(total, pos, 8)?;
                        let m = ControlMsg::TaskAnnounce {
                            task: TaskId(rd_u32(b, pos)),
                            receiver: rd_u32(b, pos + 4),
                        };
                        pos += 8;
                        m
                    }
                    CTRL_EPOCH_NOTIFY => {
                        need(total, pos, 4)?;
                        let m = ControlMsg::EpochNotify {
                            epoch: rd_u32(b, pos),
                        };
                        pos += 4;
                        m
                    }
                    other => return Err(CodecError::BadControlKind(other)),
                };
                PacketView::Control(msg)
            }
            other => return Err(CodecError::BadKind(other)),
        };
        if pos != total {
            return Err(CodecError::TrailingBytes(total - pos));
        }
        Ok(FrameView {
            bytes,
            src: h.src,
            dst: h.dst,
            epoch: h.epoch,
            flags: h.flags,
            packet,
        })
    }

    /// Originating node index.
    pub fn src(&self) -> u32 {
        self.src
    }

    /// Destination node index.
    pub fn dst(&self) -> u32 {
        self.dst
    }

    /// Switch epoch the frame was stamped with.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Envelope flag bits.
    pub fn flags(&self) -> u8 {
        self.flags
    }

    /// The still-borrowed packet body.
    pub fn packet(&self) -> &PacketView {
        &self.packet
    }

    /// Consumes the view, keeping only the packet body.
    pub fn into_packet(self) -> PacketView {
        self.packet
    }

    /// The underlying frame bytes (envelope header included).
    pub fn frame_bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Iterates the `(key, value)` entries of a long-kv or fetch-reply body
    /// straight off the frame bytes — the host daemon's zero-materialization
    /// fetch-merge path. Entries were validated during [`FrameView::parse`];
    /// `None` for packet kinds that carry no entry list.
    pub fn entries(&self) -> Option<EntryViews<'_>> {
        // Body layout after the envelope header and kind byte:
        // long-kv     task(4) channel(4) seq(8)  count(4) entries…
        // fetch-reply task(4) fetch_seq(4)       count(4) entries…
        let (offset, remaining) = match self.packet {
            PacketView::LongKv { entry_count, .. } => {
                (ENVELOPE_HEADER_BYTES + 1 + 16 + 4, entry_count)
            }
            PacketView::FetchReply { entry_count, .. } => {
                (ENVELOPE_HEADER_BYTES + 1 + 8 + 4, entry_count)
            }
            _ => return None,
        };
        Some(EntryViews {
            bytes: &self.bytes,
            offset,
            remaining,
        })
    }

    /// Materializes the full owned [`Envelope`] without re-checksumming —
    /// the view's parse already validated the CRC and every field.
    ///
    /// # Panics
    ///
    /// Never on a view produced by [`FrameView::parse`]; the body was
    /// validated byte for byte.
    pub fn materialize(&self) -> Envelope {
        let packet = decode(self.bytes.slice(ENVELOPE_HEADER_BYTES..))
            .expect("view-validated frame must decode");
        Envelope {
            src: self.src,
            dst: self.dst,
            epoch: self.epoch,
            flags: self.flags,
            packet,
        }
    }

    /// [`FrameView::materialize`] drawing slot/tuple backing stores from
    /// `pool` — the switch's fallback path for frames the view cannot serve
    /// (no-aggregate relays, layout mismatches). Skips the second CRC pass
    /// `decode_envelope_pooled` would pay.
    ///
    /// # Panics
    ///
    /// Never on a view produced by [`FrameView::parse`].
    pub fn materialize_pooled(&self, pool: &mut PacketPool) -> Envelope {
        let packet = decode_pooled(self.bytes.slice(ENVELOPE_HEADER_BYTES..), pool)
            .expect("view-validated frame must decode");
        Envelope {
            src: self.src,
            dst: self.dst,
            epoch: self.epoch,
            flags: self.flags,
            packet,
        }
    }
}

/// Walks a long-kv / fetch-reply entry list, applying exactly the
/// validation `get_entries` applies during a full decode, without building
/// tuples. Returns the declared entry count.
fn validate_entries(b: &[u8], total: usize, pos: &mut usize) -> Result<u32, CodecError> {
    need(total, *pos, 4)?;
    let count = rd_u32(b, *pos);
    *pos += 4;
    for _ in 0..count {
        need(total, *pos, 2)?;
        let len = u16::from_be_bytes([b[*pos], b[*pos + 1]]) as usize;
        *pos += 2;
        need(total, *pos, len + 4)?;
        let key = &b[*pos..*pos + len];
        if key.is_empty() {
            return Err(crate::key::KeyError::Empty.into());
        }
        if key.contains(&0) {
            return Err(crate::key::KeyError::ContainsNul.into());
        }
        *pos += len + 4;
    }
    Ok(count)
}

impl DataPacketView {
    /// Aggregation task.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Data channel.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// Channel sequence number.
    pub fn seq(&self) -> SeqNo {
        self.seq
    }

    /// Occupancy bitmap over logical slots.
    pub fn bitmap(&self) -> u128 {
        self.bitmap
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        self.bitmap.count_ones() as usize
    }

    /// Declared short-slot count.
    pub fn short_slots(&self) -> usize {
        self.short_slots as usize
    }

    /// Declared medium-group count.
    pub fn medium_groups(&self) -> usize {
        self.medium_groups as usize
    }

    /// Declared aggregator arrays per medium group (`m`).
    pub fn medium_segments(&self) -> usize {
        self.medium_segments as usize
    }

    /// True when the frame's declared slot layout equals `layout` — the
    /// precondition for aggregating in place and for
    /// [`DataPacketView::residual_frame`] matching a scalar re-encode byte
    /// for byte.
    pub fn matches_layout(&self, layout: &PacketLayout) -> bool {
        self.short_slots as usize == layout.short_slots()
            && self.medium_groups as usize == layout.medium_groups()
            && (self.medium_groups == 0
                || self.medium_segments as usize == layout.medium_segments())
    }

    /// Wire width (bytes) of logical slot `i`'s key field.
    fn slot_key_width(&self, i: usize) -> usize {
        if i < self.short_slots as usize {
            KPART_BYTES
        } else {
            KPART_BYTES * self.medium_segments as usize
        }
    }

    /// Iterates the occupied slots in slot-index order.
    pub fn slots(&self) -> SlotViews<'_> {
        SlotViews {
            view: self,
            index: 0,
            offset: SLOTS_OFFSET,
        }
    }

    /// Re-frames this packet keeping only the slots in `residual`,
    /// copying header and surviving slot bytes verbatim and patching the
    /// bitmap and CRC — the view path's partial-absorb rewrite. When the
    /// declared layout matches the encoder's, the result is byte-identical
    /// to decoding, clearing the absorbed slots, and re-encoding.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `residual` only keeps slots this packet carries.
    pub fn residual_frame(&self, residual: u128) -> Bytes {
        debug_assert_eq!(residual & !self.bitmap, 0, "residual must shrink the bitmap");
        let slot_count = self.short_slots as usize + self.medium_groups as usize;
        let mut size = SLOTS_OFFSET;
        for i in 0..slot_count {
            if residual & (1 << i) != 0 {
                size += self.slot_key_width(i) + 4;
            }
        }
        let mut buf = BytesMut::with_capacity(size);
        buf.put_u32(0); // checksum placeholder
        buf.put_slice(&self.bytes[4..BITMAP_OFFSET]);
        buf.put_u128(residual);
        let mut offset = SLOTS_OFFSET;
        for i in 0..slot_count {
            if self.bitmap & (1 << i) == 0 {
                continue;
            }
            let w = self.slot_key_width(i) + 4;
            if residual & (1 << i) != 0 {
                buf.put_slice(&self.bytes[offset..offset + w]);
            }
            offset += w;
        }
        let sum = crc32(&buf[4..]);
        buf[0..4].copy_from_slice(&sum.to_be_bytes());
        buf.freeze()
    }
}

impl<'a> Iterator for SlotViews<'a> {
    type Item = SlotView<'a>;

    fn next(&mut self) -> Option<SlotView<'a>> {
        let v = self.view;
        let slot_count = v.short_slots as usize + v.medium_groups as usize;
        while self.index < slot_count {
            let i = self.index;
            self.index += 1;
            if v.bitmap & (1 << i) == 0 {
                continue;
            }
            let width = v.slot_key_width(i);
            let padded = &v.bytes[self.offset..self.offset + width];
            let value = rd_u32(&v.bytes, self.offset + width);
            self.offset += width + 4;
            let key_len = padded.iter().rposition(|&x| x != 0).map_or(0, |p| p + 1);
            return Some(SlotView {
                index: i,
                padded,
                key_len,
                value,
            });
        }
        None
    }
}

impl SlotView<'_> {
    /// Logical slot index in the packet.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The key bytes zero-padded to the slot width, exactly as on the wire.
    pub fn padded(&self) -> &[u8] {
        self.padded
    }

    /// Length of the key without padding.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// The key bytes without padding — exactly [`Key::as_bytes`] of the
    /// materialized key.
    pub fn key_bytes(&self) -> &'_ [u8] {
        &self.padded[..self.key_len]
    }

    /// The slot's value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The key's stable 64-bit hash — identical to
    /// [`Key::hash64`] of the materialized key, computed without building
    /// a `Key`.
    pub fn hash64(&self) -> u64 {
        fnv1a(&self.padded[..self.key_len])
    }

    /// Packed `kPart` segment `j`, read straight from the padded wire
    /// bytes — identical to [`Key::segment`] of the materialized key.
    pub fn segment(&self, j: usize) -> u32 {
        rd_u32(self.padded, j * KPART_BYTES)
    }

    /// Materializes the key (fallback paths and tests).
    pub fn key(&self) -> Key {
        Key::from_validated_slice(&self.padded[..self.key_len])
    }
}

impl<'a> Iterator for EntryViews<'a> {
    type Item = EntryView<'a>;

    fn next(&mut self) -> Option<EntryView<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let b = self.bytes;
        let len = u16::from_be_bytes([b[self.offset], b[self.offset + 1]]) as usize;
        let key = &b[self.offset + 2..self.offset + 2 + len];
        let value = rd_u32(b, self.offset + 2 + len);
        self.offset += 2 + len + 4;
        Some(EntryView { key, value })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for EntryViews<'_> {}

impl<'a> EntryView<'a> {
    /// The entry's key bytes, exactly as on the wire (no padding).
    pub fn key_bytes(&self) -> &'a [u8] {
        self.key
    }

    /// The entry's value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The key's stable 64-bit hash — identical to [`Key::hash64`] of the
    /// materialized key.
    pub fn hash64(&self) -> u64 {
        fnv1a(self.key)
    }

    /// Materializes the key (fallback paths and tests).
    pub fn key(&self) -> Key {
        Key::from_validated_slice(self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_envelope, encode_envelope_parts};
    use crate::packet::{AskPacket, DataPacket, KvTuple};

    fn kv(s: &str, v: u32) -> KvTuple {
        KvTuple::new(Key::from_str(s).unwrap(), v)
    }

    fn sample_data(layout: &PacketLayout) -> AskPacket {
        let mut slots = vec![None; layout.slot_count()];
        slots[0] = Some(kv("ab", 7));
        slots[2] = Some(kv("wxyz", 1));
        if layout.medium_groups() > 0 {
            slots[layout.short_slots()] = Some(kv("mediumk", 42));
        }
        AskPacket::Data(DataPacket {
            task: TaskId(5),
            channel: ChannelId(2),
            seq: SeqNo(99),
            slots,
        })
    }

    #[test]
    fn view_reads_every_data_field() {
        let layout = PacketLayout::paper_default();
        let pkt = sample_data(&layout);
        let bytes = encode_envelope_parts(3, 9, 4, 0, &pkt, &layout);
        let view = FrameView::parse(bytes).unwrap();
        assert_eq!((view.src(), view.dst(), view.epoch(), view.flags()), (3, 9, 4, 0));
        let PacketView::Data(d) = view.packet() else {
            panic!("expected data view");
        };
        let AskPacket::Data(ref p) = pkt else {
            unreachable!()
        };
        assert_eq!(d.task(), p.task);
        assert_eq!(d.channel(), p.channel);
        assert_eq!(d.seq(), p.seq);
        assert_eq!(d.bitmap(), p.bitmap());
        assert!(d.matches_layout(&layout));
        let got: Vec<(usize, Key, u32)> =
            d.slots().map(|s| (s.index(), s.key(), s.value())).collect();
        let want: Vec<(usize, Key, u32)> = p
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|t| (i, t.key.clone(), t.value)))
            .collect();
        assert_eq!(got, want);
        for s in d.slots() {
            assert_eq!(s.hash64(), s.key().hash64());
            for j in 0..s.padded().len() / KPART_BYTES {
                assert_eq!(s.segment(j), s.key().segment(j));
            }
        }
        assert_eq!(view.materialize().packet, pkt);
    }

    #[test]
    fn residual_frame_matches_scalar_reencode() {
        let layout = PacketLayout::paper_default();
        let pkt = sample_data(&layout);
        let bytes = encode_envelope_parts(1, 2, 7, 0, &pkt, &layout);
        let view = FrameView::parse(bytes).unwrap();
        let PacketView::Data(d) = view.into_packet() else {
            panic!("expected data view");
        };
        let AskPacket::Data(p) = pkt else {
            unreachable!()
        };
        // Drop slot 0, keep the rest — the scalar path would decode, clear
        // the slot, and re-encode.
        let residual = p.bitmap() & !1u128;
        let mut rewritten = p.clone();
        rewritten.slots[0] = None;
        let want = encode_envelope_parts(1, 2, 7, 0, &AskPacket::Data(rewritten), &layout);
        assert_eq!(d.residual_frame(residual), want);
        // Keeping everything reproduces the original frame.
        assert_eq!(d.residual_frame(p.bitmap()), encode_envelope_parts(
            1, 2, 7, 0, &AskPacket::Data(p), &layout
        ));
    }

    #[test]
    fn nondata_kinds_agree_with_decode() {
        let layout = PacketLayout::paper_default();
        let packets = vec![
            AskPacket::LongKv {
                task: TaskId(1),
                channel: ChannelId(2),
                seq: SeqNo(3),
                entries: vec![kv("a-very-long-key-beyond-eight", 5)],
            },
            AskPacket::Ack {
                channel: ChannelId(1),
                seq: SeqNo(2),
                ece: true,
            },
            AskPacket::Fin {
                task: TaskId(1),
                channel: ChannelId(2),
                seq: SeqNo(3),
            },
            AskPacket::Swap { task: TaskId(9) },
            AskPacket::FetchRequest {
                task: TaskId(4),
                scope: FetchScope::All,
                fetch_seq: 2,
            },
            AskPacket::FetchReply {
                task: TaskId(1),
                fetch_seq: 3,
                entries: std::sync::Arc::new(vec![kv("x", 1)]),
            },
            AskPacket::Control(ControlMsg::EpochNotify { epoch: 42 }),
        ];
        for p in packets {
            let bytes = encode_envelope_parts(1, 0, 0, 0, &p, &layout);
            let view = FrameView::parse(bytes.clone()).unwrap();
            assert_eq!(view.materialize(), decode_envelope(bytes).unwrap());
        }
    }

    #[test]
    fn entry_views_match_materialized_entries() {
        let layout = PacketLayout::paper_default();
        let entries = vec![
            kv("a", 1),
            kv("a-very-long-key-beyond-the-inline-cap-entirely", 7),
            kv("mid", u32::MAX),
        ];
        let packets = vec![
            AskPacket::LongKv {
                task: TaskId(1),
                channel: ChannelId(2),
                seq: SeqNo(3),
                entries: entries.clone(),
            },
            AskPacket::FetchReply {
                task: TaskId(4),
                fetch_seq: 5,
                entries: std::sync::Arc::new(entries.clone()),
            },
        ];
        for p in packets {
            let bytes = encode_envelope_parts(1, 0, 0, 0, &p, &layout);
            let view = FrameView::parse(bytes).unwrap();
            let it = view.entries().expect("entry-bearing packet");
            assert_eq!(it.len(), entries.len());
            for (e, want) in it.zip(entries.iter()) {
                assert_eq!(e.key_bytes(), want.key.as_bytes());
                assert_eq!(e.value(), want.value);
                assert_eq!(e.hash64(), want.key.hash64());
                assert_eq!(e.key(), want.key);
            }
        }
        // Entry-less kinds expose no iterator.
        let ack = AskPacket::Ack {
            channel: ChannelId(1),
            seq: SeqNo(2),
            ece: false,
        };
        let bytes = encode_envelope_parts(1, 0, 0, 0, &ack, &layout);
        assert!(FrameView::parse(bytes).unwrap().entries().is_none());
    }

    #[test]
    fn corrupt_and_truncated_frames_agree_with_decode() {
        let layout = PacketLayout::paper_default();
        let pkt = sample_data(&layout);
        let bytes = encode_envelope_parts(1, 2, 0, 0, &pkt, &layout);
        for cut in 0..bytes.len() {
            let a = FrameView::parse(bytes.slice(0..cut)).map(|v| v.materialize());
            let b = decode_envelope(bytes.slice(0..cut));
            assert_eq!(a, b, "cut at {cut}");
        }
        for byte_ix in 0..bytes.len() {
            let mut v = bytes.to_vec();
            v[byte_ix] ^= 0x40;
            let flipped = Bytes::from(v);
            let a = FrameView::parse(flipped.clone()).map(|w| w.materialize());
            let b = decode_envelope(flipped);
            assert_eq!(a, b, "flip at {byte_ix}");
        }
    }
}
