//! Wire-format size constants used for goodput accounting.
//!
//! These reproduce the arithmetic of the paper's §5.3 footnote 9: sending an
//! ASK packet costs 78 bytes of overhead on top of the key-value payload —
//! `12 (inter-packet gap) + 7 (preamble) + 1 (start frame delimiter) +
//! 14 (Ethernet) + 20 (IP) + 20 (ASK header) + 4 (CRC)`.

/// Inter-packet gap, bytes-on-the-wire equivalent.
pub const INTER_PACKET_GAP: usize = 12;
/// Ethernet preamble.
pub const PREAMBLE: usize = 7;
/// Start-frame delimiter.
pub const START_FRAME_DELIMITER: usize = 1;
/// Ethernet header (no VLAN tag).
pub const ETHERNET_HEADER: usize = 14;
/// IPv4 header without options.
pub const IP_HEADER: usize = 20;
/// The ASK protocol header (task id, channel, sequence, kind, bitmap).
pub const ASK_HEADER: usize = 20;
/// Ethernet frame check sequence.
pub const CRC: usize = 4;

/// Total per-packet overhead: framing + Ethernet + IP + ASK header.
///
/// ```
/// assert_eq!(ask_wire::constants::PACKET_OVERHEAD, 78);
/// ```
pub const PACKET_OVERHEAD: usize = INTER_PACKET_GAP
    + PREAMBLE
    + START_FRAME_DELIMITER
    + ETHERNET_HEADER
    + IP_HEADER
    + ASK_HEADER
    + CRC;

/// Bytes of one short key-value tuple on the wire (4-byte key + 4-byte
/// value), the unit of Figure 8(a)'s goodput model.
pub const SHORT_TUPLE_BYTES: usize = 8;

/// The ideal goodput fraction for packets carrying `tuples` short key-value
/// tuples: `8x / (8x + 78)` (§5.3).
///
/// # Examples
///
/// ```
/// let f = ask_wire::constants::ideal_goodput_fraction(32);
/// assert!((f - (256.0 / 334.0)).abs() < 1e-12);
/// ```
pub fn ideal_goodput_fraction(tuples: usize) -> f64 {
    let payload = (SHORT_TUPLE_BYTES * tuples) as f64;
    payload / (payload + PACKET_OVERHEAD as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_78_bytes() {
        assert_eq!(PACKET_OVERHEAD, 78);
    }

    #[test]
    fn single_tuple_goodput_matches_paper() {
        // §3.2: a single-tuple packet at 100 Gbps yields ~9.3 Gbps goodput
        // (the paper quotes 9.76 Gbps with a slightly different overhead
        // base; the shape — an order-of-magnitude loss — is what matters).
        let g = ideal_goodput_fraction(1) * 100.0;
        assert!(g > 8.5 && g < 10.5, "got {g}");
    }

    #[test]
    fn goodput_fraction_monotonic() {
        let mut prev = 0.0;
        for x in 1..=128 {
            let f = ideal_goodput_fraction(x);
            assert!(f > prev);
            prev = f;
        }
        assert!(prev < 1.0);
    }
}
