//! # ask-wire — ASK's packet formats and codecs
//!
//! The on-the-wire vocabulary of the ASK protocol: [`key::Key`]s with their
//! short/medium/long classification (§3.2.3 of the paper), the slotted
//! [`packet::DataPacket`] whose bitmap the switch rewrites as it consumes
//! tuples (Figure 5), control-plane messages for task setup and switch
//! memory management, and a compact binary [`codec`].
//!
//! Size accounting follows the paper's §5.3 model: every packet costs
//! [`constants::PACKET_OVERHEAD`] = 78 bytes of framing/headers plus its
//! nominal payload, so goodput math in the benchmarks reproduces
//! Figure 8(a)'s `8x / (8x + 78)` curve exactly.
//!
//! ```
//! use ask_wire::prelude::*;
//!
//! let layout = PacketLayout::paper_default();
//! let mut slots = vec![None; layout.slot_count()];
//! slots[0] = Some(KvTuple::new(Key::from_str("cat")?, 2));
//! let pkt = AskPacket::Data(DataPacket {
//!     task: TaskId(1), channel: ChannelId(0), seq: SeqNo(0), slots,
//! });
//! let bytes = encode(&pkt, &layout);
//! assert_eq!(decode(bytes)?, pkt);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod constants;
pub mod key;
pub mod packet;
pub mod pool;
pub mod view;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::codec::{
        crc32, decode, decode_envelope, decode_envelope_pooled, decode_pooled, encode,
        encode_envelope, CodecError, Envelope,
    };
    pub use crate::constants::PACKET_OVERHEAD;
    pub use crate::key::{Key, KeyClass, KeyError};
    pub use crate::packet::{
        AaRegion, AggregateOp, AskPacket, ChannelId, ControlMsg, DataPacket, FetchScope, KvTuple,
        PacketLayout, SeqNo, TaskId,
    };
    pub use crate::pool::PacketPool;
    pub use crate::view::{DataPacketView, FrameView, PacketView, SlotView};
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    fn arb_key() -> impl Strategy<Value = Key> {
        proptest::collection::vec(1u8..=255, 1..20)
            .prop_map(|v| Key::new(Bytes::from(v)).expect("no NUL, non-empty"))
    }

    fn arb_short_key() -> impl Strategy<Value = Key> {
        proptest::collection::vec(1u8..=255, 1..=4)
            .prop_map(|v| Key::new(Bytes::from(v)).expect("no NUL, non-empty"))
    }

    proptest! {
        /// Any data packet round-trips through the codec.
        #[test]
        fn data_roundtrip(
            task in any::<u32>(),
            channel in any::<u32>(),
            seq in any::<u64>(),
            present in proptest::collection::vec(proptest::option::of((arb_short_key(), any::<u32>())), 1..=16),
        ) {
            let layout = PacketLayout::short_only(present.len());
            let slots: Vec<Option<KvTuple>> = present
                .into_iter()
                .map(|o| o.map(|(k, v)| KvTuple::new(k, v)))
                .collect();
            let p = AskPacket::Data(DataPacket {
                task: TaskId(task),
                channel: ChannelId(channel),
                seq: SeqNo(seq),
                slots,
            });
            let bytes = encode(&p, &layout);
            prop_assert!(bytes.len() <= p.wire_bytes(&layout));
            prop_assert_eq!(decode(bytes).unwrap(), p);
        }

        /// Long-kv packets round-trip for arbitrary key lengths.
        #[test]
        fn long_kv_roundtrip(
            entries in proptest::collection::vec((arb_key(), any::<u32>()), 0..20),
        ) {
            let layout = PacketLayout::paper_default();
            let p = AskPacket::LongKv {
                task: TaskId(1),
                channel: ChannelId(2),
                seq: SeqNo(3),
                entries: entries.into_iter().map(|(k, v)| KvTuple::new(k, v)).collect(),
            };
            let bytes = encode(&p, &layout);
            prop_assert_eq!(decode(bytes).unwrap(), p);
        }

        /// Data packets round-trip across the paper-default, short-only,
        /// and fully custom layouts (mixed short/medium slots).
        #[test]
        fn data_roundtrip_across_layouts(
            pick in 0u8..3,
            short in 1usize..=32,
            groups in 1usize..=4,
            segments in 2usize..=4,
            task in any::<u32>(),
            channel in any::<u32>(),
            seq in any::<u64>(),
            raw in proptest::collection::vec(
                proptest::option::of((
                    proptest::collection::vec(1u8..=255, 1..=16),
                    any::<u32>(),
                )),
                1..=40,
            ),
        ) {
            let layout = match pick {
                0 => PacketLayout::paper_default(),
                1 => PacketLayout::short_only(short),
                _ => PacketLayout::custom(short.min(8), groups, segments),
            };
            let n = layout.slot_count();
            let mut raw = raw;
            raw.resize(n, None);
            raw.truncate(n);
            let slots: Vec<Option<KvTuple>> = raw
                .into_iter()
                .enumerate()
                .map(|(i, o)| {
                    o.map(|(mut k, v)| {
                        // Clamp the key to what the slot class can carry.
                        let max = if layout.is_short_slot(i) {
                            4
                        } else {
                            layout.medium_max_key_len()
                        };
                        k.truncate(max);
                        KvTuple::new(Key::new(Bytes::from(k)).expect("no NUL, non-empty"), v)
                    })
                })
                .collect();
            let p = AskPacket::Data(DataPacket {
                task: TaskId(task),
                channel: ChannelId(channel),
                seq: SeqNo(seq),
                slots,
            });
            let bytes = encode(&p, &layout);
            prop_assert_eq!(decode(bytes).unwrap(), p);
        }

        /// Decoding arbitrary garbage never panics.
        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = decode(Bytes::from(bytes));
        }

        /// Key segmentation round-trips for every valid key.
        #[test]
        fn key_segments_roundtrip(key in arb_key()) {
            let segs: Vec<u32> = (0..key.segments()).map(|i| key.segment(i)).collect();
            prop_assert_eq!(Key::from_segments(&segs).unwrap(), key);
        }
    }
}
