//! Keys and their classification into short / medium / long (§3.2.3).

use bytes::Bytes;
use core::fmt;

/// Bytes of an aggregator's key part (`kPart`); the paper uses 64-bit
/// aggregators split into a 32-bit `kPart` and a 32-bit `vPart`.
pub const KPART_BYTES: usize = 4;

/// A validated aggregation key.
///
/// Keys are arbitrary non-empty byte strings that contain no NUL bytes.
/// The NUL restriction exists because the switch stores key segments
/// zero-padded to the aggregator width (§3.2.1: "If a key is less than n
/// bits, ASK pads it"); forbidding NUL makes the padding reversible, so the
/// receiver can reconstruct exact keys when fetching switch state.
///
/// # Examples
///
/// ```
/// use ask_wire::key::Key;
///
/// let k = Key::from_str("hello")?;
/// assert_eq!(k.len(), 5);
/// # Ok::<(), ask_wire::key::KeyError>(())
/// ```
///
/// # Representation
///
/// Keys up to [`INLINE_KEY_CAP`] bytes are stored inline — no heap
/// allocation, no reference counting — which covers every short and medium
/// key the switch can handle (§3.2.3) and makes the per-tuple hot paths
/// (decode, packetize, residual merge) allocation- and atomic-free. Longer
/// keys fall back to shared [`Bytes`] storage.
#[derive(Clone)]
pub struct Key(Repr);

/// Keys at most this long are stored inline in the [`Key`] value itself.
pub const INLINE_KEY_CAP: usize = 23;

#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [u8; INLINE_KEY_CAP] },
    Heap(Bytes),
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Key {}

impl core::hash::Hash for Key {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:?})", self.as_bytes())
    }
}

/// Error building a [`Key`] from raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyError {
    /// Keys must be non-empty.
    Empty,
    /// Keys must not contain NUL bytes (padding would be ambiguous).
    ContainsNul,
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::Empty => write!(f, "keys must be non-empty"),
            KeyError::ContainsNul => write!(f, "keys must not contain NUL bytes"),
        }
    }
}

impl std::error::Error for KeyError {}

impl Key {
    /// Stores already-validated bytes, choosing the inline representation
    /// when they fit.
    fn store(bytes: &[u8]) -> Self {
        debug_assert!(!bytes.is_empty() && !bytes.contains(&0));
        if bytes.len() <= INLINE_KEY_CAP {
            let mut buf = [0u8; INLINE_KEY_CAP];
            buf[..bytes.len()].copy_from_slice(bytes);
            Key(Repr::Inline {
                len: bytes.len() as u8,
                buf,
            })
        } else {
            Key(Repr::Heap(Bytes::copy_from_slice(bytes)))
        }
    }

    /// Validates and wraps raw key bytes.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if `bytes` is empty or contains a NUL byte.
    pub fn new(bytes: Bytes) -> Result<Self, KeyError> {
        if bytes.is_empty() {
            return Err(KeyError::Empty);
        }
        if bytes.contains(&0) {
            return Err(KeyError::ContainsNul);
        }
        if bytes.len() <= INLINE_KEY_CAP {
            Ok(Key::store(&bytes))
        } else {
            Ok(Key(Repr::Heap(bytes)))
        }
    }

    /// Wraps bytes the caller has already validated (non-empty, no NUL).
    /// Crate-private: used by the codec's hot decode path, which checks the
    /// invariants itself while scanning off the zero padding.
    pub(crate) fn from_validated_slice(bytes: &[u8]) -> Self {
        Key::store(bytes)
    }

    /// Builds a key from a string slice.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Key::new`].
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Result<Self, KeyError> {
        let b = s.as_bytes();
        if b.is_empty() {
            return Err(KeyError::Empty);
        }
        if b.contains(&0) {
            return Err(KeyError::ContainsNul);
        }
        Ok(Key::store(b))
    }

    /// Builds a 4-byte key from an integer (useful for synthetic workloads
    /// where keys are opaque ids). The encoding avoids NUL bytes by mapping
    /// each base-255 digit to `1..=255`. Always inline, never allocates.
    pub fn from_u64(mut v: u64) -> Self {
        let mut buf = [0u8; INLINE_KEY_CAP];
        let mut len = 0usize;
        loop {
            buf[len] = (v % 255) as u8 + 1;
            len += 1;
            v /= 255;
            if v == 0 {
                break;
            }
        }
        Key(Repr::Inline {
            len: len as u8,
            buf,
        })
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(b) => b,
        }
    }

    /// Byte length of the key.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(b) => b.len(),
        }
    }

    /// Always false — keys are validated non-empty — but provided for
    /// completeness alongside [`Key::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Classifies the key given `m`, the number of coalesced aggregator
    /// arrays per medium-key group (§3.2.3): short keys fit one `kPart`
    /// (≤ 4 bytes), medium keys fit `m` coalesced `kPart`s, long keys bypass
    /// the switch.
    pub fn class(&self, medium_segments: usize) -> KeyClass {
        let len = self.len();
        if len <= KPART_BYTES {
            KeyClass::Short
        } else if len <= KPART_BYTES * medium_segments {
            KeyClass::Medium
        } else {
            KeyClass::Long
        }
    }

    /// Packs bytes `[4i, 4i+4)` of the key, zero-padded, into a `u32` — the
    /// value stored in a `kPart` register. Segment 0 of a short key is the
    /// whole key.
    pub fn segment(&self, i: usize) -> u32 {
        let bytes = self.as_bytes();
        let mut word = [0u8; KPART_BYTES];
        let start = i * KPART_BYTES;
        if start < bytes.len() {
            let end = (start + KPART_BYTES).min(bytes.len());
            word[..end - start].copy_from_slice(&bytes[start..end]);
        }
        u32::from_be_bytes(word)
    }

    /// Number of `kPart` segments the key occupies.
    pub fn segments(&self) -> usize {
        self.len().div_ceil(KPART_BYTES)
    }

    /// Reconstructs a key from packed segments (inverse of [`Key::segment`]),
    /// stripping zero padding.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if the segments decode to an invalid key (all
    /// padding, or an embedded NUL, which cannot come from a valid key).
    pub fn from_segments(segments: &[u32]) -> Result<Self, KeyError> {
        let mut out = Vec::with_capacity(segments.len() * KPART_BYTES);
        for seg in segments {
            out.extend_from_slice(&seg.to_be_bytes());
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        if out.is_empty() {
            return Err(KeyError::Empty);
        }
        if out.contains(&0) {
            return Err(KeyError::ContainsNul);
        }
        Ok(Key::store(&out))
    }

    /// A stable 64-bit hash of the key (FNV-1a), used for subspace
    /// partitioning and aggregator indexing. Deterministic across runs so
    /// simulations are reproducible.
    pub fn hash64(&self) -> u64 {
        fnv1a(self.as_bytes())
    }

    /// Inverse of [`Key::from_u64`]: decodes the integer a key encodes, or
    /// `None` if the key was not produced by `from_u64` (some byte outside
    /// the base-255 digit alphabet, or a value overflowing `u64`).
    ///
    /// # Examples
    ///
    /// ```
    /// use ask_wire::key::Key;
    ///
    /// assert_eq!(Key::from_u64(123_456).to_u64(), Some(123_456));
    /// ```
    pub fn to_u64(&self) -> Option<u64> {
        let mut value: u64 = 0;
        let mut mul: u64 = 1;
        let bytes = self.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b == 0 {
                return None;
            }
            let digit = (b - 1) as u64;
            value = value.checked_add(digit.checked_mul(mul)?)?;
            if i + 1 < bytes.len() {
                mul = mul.checked_mul(255)?;
            }
        }
        Some(value)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match core::str::from_utf8(self.as_bytes()) {
            Ok(s) => write!(f, "{s:?}"),
            Err(_) => write!(f, "{:02x?}", self.as_bytes()),
        }
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

/// FNV-1a over a byte slice.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Size class of a key relative to the aggregator layout (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyClass {
    /// Fits one `kPart` (≤ 4 bytes): handled by a single aggregator array.
    Short,
    /// Fits `m` coalesced `kPart`s: handled by a medium-key group.
    Medium,
    /// Too long for the switch: bypasses INA, aggregated at the receiver.
    Long,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_keys() {
        assert_eq!(Key::new(Bytes::new()).unwrap_err(), KeyError::Empty);
        assert_eq!(
            Key::new(Bytes::from_static(b"a\0b")).unwrap_err(),
            KeyError::ContainsNul
        );
        assert!(!Key::from_str("ok").unwrap().is_empty());
    }

    #[test]
    fn classification_boundaries() {
        let m = 2; // medium keys are 5..=8 bytes
        assert_eq!(Key::from_str("abcd").unwrap().class(m), KeyClass::Short);
        assert_eq!(Key::from_str("abcde").unwrap().class(m), KeyClass::Medium);
        assert_eq!(
            Key::from_str("abcdefgh").unwrap().class(m),
            KeyClass::Medium
        );
        assert_eq!(Key::from_str("abcdefghi").unwrap().class(m), KeyClass::Long);
    }

    #[test]
    fn segments_pack_and_unpack() {
        let k = Key::from_str("yours").unwrap();
        assert_eq!(k.segments(), 2);
        let segs: Vec<u32> = (0..2).map(|i| k.segment(i)).collect();
        assert_eq!(segs[0], u32::from_be_bytes(*b"your"));
        assert_eq!(segs[1], u32::from_be_bytes([b's', 0, 0, 0]));
        assert_eq!(Key::from_segments(&segs).unwrap(), k);
    }

    #[test]
    fn distinct_long_keys_have_distinct_first_segments_hashing() {
        // "yours" and "yourself" share the "your" prefix; coalesced
        // placement distinguishes them by hashing the *whole* key.
        let a = Key::from_str("yours").unwrap();
        let b = Key::from_str("yourself").unwrap();
        assert_eq!(a.segment(0), b.segment(0));
        assert_ne!(a.hash64(), b.hash64());
    }

    #[test]
    fn from_u64_roundtrips_uniqueness() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u64 {
            let k = Key::from_u64(v);
            assert!(seen.insert(k.clone()), "collision at {v} ({k})");
            assert!(k.len() <= 8);
        }
    }

    #[test]
    fn from_u64_has_no_nul() {
        for v in [0u64, 1, 254, 255, 256, 65_535, u64::MAX] {
            let k = Key::from_u64(v);
            assert!(!k.as_bytes().contains(&0));
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Key::from_str("x").unwrap().to_string().is_empty());
    }

    #[test]
    fn hash_is_stable() {
        // Pin the FNV-1a value so cross-run determinism is explicit.
        assert_eq!(Key::from_str("hello").unwrap().hash64(), fnv1a(b"hello"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
