//! ASK packet types: identifiers, the slotted data packet, and control
//! messages.

use crate::constants::PACKET_OVERHEAD;
use crate::key::{Key, KPART_BYTES};
use core::fmt;
use std::sync::Arc;

/// Identifier of one aggregation task (unique per receiver daemon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// Channel-id stride per host: host `h`'s data channels are numbered
/// `h * CHANNEL_STRIDE ..`, so the owning host is recoverable from any
/// [`ChannelId`] (used for FIN accounting and rack-locality checks).
pub const CHANNEL_STRIDE: u32 = 256;

/// Identifier of one persistent data channel (a sender-daemon flow). The
/// switch keeps its per-flow reliability state (`seen`, `PktState`) keyed by
/// this id, which is what bounds switch state (§3.3 "Bounding Switch
/// States").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The raw node index of the host owning this channel.
    pub fn host(self) -> u32 {
        self.0 / CHANNEL_STRIDE
    }
}

/// Per-channel packet sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqNo(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}
impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}
impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq{}", self.0)
    }
}

/// One key-value tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KvTuple {
    /// The aggregation key.
    pub key: Key,
    /// The value; aggregation uses wrapping 32-bit addition, matching the
    /// switch's 32-bit `vPart` ALU.
    pub value: u32,
}

impl KvTuple {
    /// Convenience constructor.
    pub fn new(key: Key, value: u32) -> Self {
        KvTuple { key, value }
    }
}

/// Static description of how a packet's payload slots map onto the switch's
/// aggregator arrays (§3.2).
///
/// A packet carries `short_slots` single-`kPart` tuples plus `medium_groups`
/// medium-key tuples, each of which occupies `medium_segments` coalesced
/// aggregator arrays in adjacent stages. The defaults mirror the paper's
/// implementation: 32 AAs per pipeline with `m = 2` and `k = 8` (§3.2.3,
/// §4), i.e. 16 short slots + 8 medium groups × 2 segments = 32 AAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketLayout {
    short_slots: usize,
    medium_groups: usize,
    medium_segments: usize,
}

impl PacketLayout {
    /// The paper's default layout: 16 short slots, 8 medium groups of 2
    /// segments (32 aggregator arrays total).
    pub fn paper_default() -> Self {
        PacketLayout {
            short_slots: 16,
            medium_groups: 8,
            medium_segments: 2,
        }
    }

    /// A layout with only short-key slots (used by the strawman and the
    /// value-stream compatibility mode).
    ///
    /// # Panics
    ///
    /// Panics if `short_slots` is zero or exceeds 128.
    pub fn short_only(short_slots: usize) -> Self {
        PacketLayout::custom(short_slots, 0, 2)
    }

    /// Fully custom layout.
    ///
    /// # Panics
    ///
    /// Panics if there are no slots at all, more than 128 logical slots
    /// (the chained-pipeline maximum), or `medium_segments < 2` while
    /// `medium_groups > 0`.
    pub fn custom(short_slots: usize, medium_groups: usize, medium_segments: usize) -> Self {
        let slots = short_slots + medium_groups;
        assert!(slots > 0, "layout needs at least one slot");
        assert!(
            slots <= 128,
            "at most 128 logical slots (4 chained pipelines)"
        );
        assert!(
            medium_groups == 0 || medium_segments >= 2,
            "medium groups need at least two segments"
        );
        PacketLayout {
            short_slots,
            medium_groups,
            medium_segments,
        }
    }

    /// Number of short-key slots.
    pub fn short_slots(&self) -> usize {
        self.short_slots
    }

    /// Number of medium-key groups (`k` in the paper).
    pub fn medium_groups(&self) -> usize {
        self.medium_groups
    }

    /// Aggregator arrays coalesced per medium group (`m` in the paper).
    pub fn medium_segments(&self) -> usize {
        self.medium_segments
    }

    /// Total logical payload slots (short + medium).
    pub fn slot_count(&self) -> usize {
        self.short_slots + self.medium_groups
    }

    /// Total aggregator arrays the layout occupies on the switch.
    pub fn aggregator_arrays(&self) -> usize {
        self.short_slots + self.medium_groups * self.medium_segments
    }

    /// True if logical slot `i` is a short-key slot.
    pub fn is_short_slot(&self, i: usize) -> bool {
        i < self.short_slots
    }

    /// Nominal on-the-wire bytes of logical slot `i` when occupied.
    pub fn slot_bytes(&self, i: usize) -> usize {
        if self.is_short_slot(i) {
            2 * KPART_BYTES // 4-byte key segment + 4-byte value
        } else {
            KPART_BYTES * self.medium_segments + KPART_BYTES
        }
    }

    /// Maximum key length (bytes) a medium slot can carry.
    pub fn medium_max_key_len(&self) -> usize {
        KPART_BYTES * self.medium_segments
    }
}

impl Default for PacketLayout {
    fn default() -> Self {
        PacketLayout::paper_default()
    }
}

/// A slotted ASK data packet (§3.1, Figure 5): a bitmap over logical slots
/// followed by the occupied slots' key-value tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// The aggregation task the tuples belong to.
    pub task: TaskId,
    /// The sending data channel (reliability flow).
    pub channel: ChannelId,
    /// Per-channel sequence number.
    pub seq: SeqNo,
    /// One entry per logical slot; `None` slots are blank (bitmap bit 0).
    pub slots: Vec<Option<KvTuple>>,
}

impl DataPacket {
    /// The slot-occupancy bitmap: bit `i` set iff slot `i` carries a tuple.
    pub fn bitmap(&self) -> u128 {
        let mut bm = 0u128;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.is_some() {
                bm |= 1 << i;
            }
        }
        bm
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True once every tuple has been consumed (fully aggregated).
    pub fn is_empty(&self) -> bool {
        self.occupied() == 0
    }

    /// Nominal payload bytes given `layout` (only occupied slots count).
    pub fn payload_bytes(&self, layout: &PacketLayout) -> usize {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| layout.slot_bytes(i))
            .sum()
    }

    /// Nominal wire bytes: payload plus the fixed 78-byte overhead.
    pub fn wire_bytes(&self, layout: &PacketLayout) -> usize {
        PACKET_OVERHEAD + self.payload_bytes(layout)
    }
}

/// The aggregation operator applied to a task's values.
///
/// The paper's aggregation is commutative addition, but the service is
/// generic over any commutative, associative merge the switch ALU can
/// express — the same genericity that lets one service host `reduce()`,
/// `AllReduce()`, `MPI_Reduce()` and SQL `SUM()`/`MAX()`/`MIN()` (§1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggregateOp {
    /// Wrapping 32-bit addition (the paper's operator).
    #[default]
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl AggregateOp {
    /// Applies the operator to two values.
    pub fn combine(self, a: u32, b: u32) -> u32 {
        match self {
            AggregateOp::Sum => a.wrapping_add(b),
            AggregateOp::Max => a.max(b),
            AggregateOp::Min => a.min(b),
        }
    }

    /// Wire/action-data encoding.
    pub fn to_code(self) -> u8 {
        match self {
            AggregateOp::Sum => 0,
            AggregateOp::Max => 1,
            AggregateOp::Min => 2,
        }
    }

    /// Decodes a wire/action-data code (unknown codes fall back to Sum,
    /// the paper's default).
    pub fn from_code(code: u8) -> Self {
        match code {
            1 => AggregateOp::Max,
            2 => AggregateOp::Min,
            _ => AggregateOp::Sum,
        }
    }
}

/// Which shadow copies a fetch should read and reset (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchScope {
    /// Only the inactive copy (runtime shadow-copy harvest).
    Inactive,
    /// Both copies (final harvest at task teardown).
    All,
}

/// Region of aggregator indices granted to a task: the slice
/// `[base, base + aggregators)` of every aggregator array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AaRegion {
    /// First aggregator index of the region within each AA copy.
    pub base: u32,
    /// Number of aggregators per AA (per copy).
    pub aggregators: u32,
}

/// Daemon-level control messages (task lifecycle, switch controller RPCs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMsg {
    /// Receiver daemon asks the switch controller for an AA region.
    RegionRequest {
        /// The task needing memory.
        task: TaskId,
        /// The operator the switch ALU should apply for this task.
        op: AggregateOp,
    },
    /// Controller grants a region (per shadow copy).
    RegionGrant {
        /// The requesting task.
        task: TaskId,
        /// The granted slice of every AA.
        region: AaRegion,
    },
    /// Controller has no free memory; the task must run host-only.
    RegionDeny {
        /// The requesting task.
        task: TaskId,
    },
    /// Receiver daemon returns the region at teardown.
    RegionRelease {
        /// The finished task.
        task: TaskId,
    },
    /// Receiver daemon announces a task to a sender daemon (step ④ of
    /// Figure 4).
    TaskAnnounce {
        /// The new task.
        task: TaskId,
        /// Raw node index of the receiver host.
        receiver: u32,
    },
    /// Switch → host: the switch's current epoch. Sent when the switch
    /// drops a stale-epoch frame after a crash-restart, so the host learns
    /// the new epoch immediately instead of waiting for its next timeout.
    EpochNotify {
        /// The switch's current epoch.
        epoch: u32,
    },
}

/// Every packet the ASK protocol puts on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AskPacket {
    /// Key-value tuples travelling sender → switch → receiver.
    Data(DataPacket),
    /// Long-key tuples that bypass switch aggregation (§3.2.3) but share the
    /// channel's reliable sequence space.
    LongKv {
        /// The aggregation task.
        task: TaskId,
        /// The sending data channel.
        channel: ChannelId,
        /// Per-channel sequence number.
        seq: SeqNo,
        /// The long-key tuples.
        entries: Vec<KvTuple>,
    },
    /// Acknowledgment of `seq` on `channel`, sent by the switch (fully
    /// aggregated) or the receiver host.
    Ack {
        /// The acknowledged channel.
        channel: ChannelId,
        /// The acknowledged sequence number.
        seq: SeqNo,
        /// ECN echo: the acknowledged packet carried a congestion mark
        /// (drives the optional DCTCP-style congestion window, §7).
        ece: bool,
    },
    /// End-of-stream marker for one task on one channel; reliable like data.
    Fin {
        /// The finished task.
        task: TaskId,
        /// The sending data channel.
        channel: ChannelId,
        /// Per-channel sequence number.
        seq: SeqNo,
    },
    /// Receiver → switch: flip the task's shadow-copy indicator (§3.4).
    Swap {
        /// The task whose copies swap.
        task: TaskId,
    },
    /// Receiver → switch: read and reset the task's aggregators.
    ///
    /// Fetches are made reliable by `fetch_seq`: the switch harvests (and
    /// resets) only when it sees `fetch_seq == last_seq + 1`, and otherwise
    /// replays its cached reply, so a lost [`AskPacket::FetchReply`] can be
    /// recovered by retrying without double-resetting the aggregators.
    FetchRequest {
        /// The task to harvest.
        task: TaskId,
        /// Which copies to harvest.
        scope: FetchScope,
        /// Monotonic per-task fetch sequence number (starts at 1).
        fetch_seq: u32,
    },
    /// Switch → receiver: harvested key-value pairs.
    FetchReply {
        /// The harvested task.
        task: TaskId,
        /// Echo of the request's fetch sequence number.
        fetch_seq: u32,
        /// Reconstructed (key, aggregated value) pairs. Shared so the
        /// switch's fetch cache, the reply packet, and any retransmitted
        /// replay all reference one harvest buffer instead of cloning it.
        entries: Arc<Vec<KvTuple>>,
    },
    /// Daemon/controller control-plane message.
    Control(ControlMsg),
}

impl fmt::Display for AskPacket {
    /// One-line tcpdump-style summary, for logs and debugging.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AskPacket::Data(d) => write!(
                f,
                "DATA {} {} {} [{} of {} slots]",
                d.task,
                d.channel,
                d.seq,
                d.occupied(),
                d.slots.len()
            ),
            AskPacket::LongKv {
                task,
                channel,
                seq,
                entries,
            } => write!(
                f,
                "LONGKV {task} {channel} {seq} [{} tuples]",
                entries.len()
            ),
            AskPacket::Ack { channel, seq, ece } => {
                write!(f, "ACK {channel} {seq}{}", if *ece { " ECE" } else { "" })
            }
            AskPacket::Fin { task, channel, seq } => write!(f, "FIN {task} {channel} {seq}"),
            AskPacket::Swap { task } => write!(f, "SWAP {task}"),
            AskPacket::FetchRequest {
                task,
                scope,
                fetch_seq,
            } => write!(f, "FETCH {task} {scope:?} #{fetch_seq}"),
            AskPacket::FetchReply {
                task,
                fetch_seq,
                entries,
            } => write!(
                f,
                "FETCH-REPLY {task} #{fetch_seq} [{} tuples]",
                entries.len()
            ),
            AskPacket::Control(msg) => match msg {
                ControlMsg::RegionRequest { task, op } => {
                    write!(f, "CTRL region-request {task} {op:?}")
                }
                ControlMsg::RegionGrant { task, region } => write!(
                    f,
                    "CTRL region-grant {task} [{}..{})",
                    region.base,
                    region.base + region.aggregators
                ),
                ControlMsg::RegionDeny { task } => write!(f, "CTRL region-deny {task}"),
                ControlMsg::RegionRelease { task } => write!(f, "CTRL region-release {task}"),
                ControlMsg::TaskAnnounce { task, receiver } => {
                    write!(f, "CTRL announce {task} -> n{receiver}")
                }
                ControlMsg::EpochNotify { epoch } => write!(f, "CTRL epoch-notify e{epoch}"),
            },
        }
    }
}

impl AskPacket {
    /// Nominal wire bytes of this packet under `layout` (§5.3 accounting).
    pub fn wire_bytes(&self, layout: &PacketLayout) -> usize {
        match self {
            AskPacket::Data(d) => d.wire_bytes(layout),
            AskPacket::LongKv { entries, .. } => {
                PACKET_OVERHEAD + entries.iter().map(|t| 2 + t.key.len() + 4).sum::<usize>()
            }
            AskPacket::FetchReply { entries, .. } => {
                PACKET_OVERHEAD + entries.iter().map(|t| 2 + t.key.len() + 4).sum::<usize>()
            }
            // Pure header packets.
            AskPacket::Ack { .. }
            | AskPacket::Fin { .. }
            | AskPacket::Swap { .. }
            | AskPacket::FetchRequest { .. }
            | AskPacket::Control(_) => PACKET_OVERHEAD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(s: &str, v: u32) -> KvTuple {
        KvTuple::new(Key::from_str(s).unwrap(), v)
    }

    #[test]
    fn paper_default_layout_is_32_aas() {
        let l = PacketLayout::paper_default();
        assert_eq!(l.slot_count(), 24);
        assert_eq!(l.aggregator_arrays(), 32);
        assert_eq!(l.medium_max_key_len(), 8);
    }

    #[test]
    fn slot_bytes_short_vs_medium() {
        let l = PacketLayout::paper_default();
        assert_eq!(l.slot_bytes(0), 8); // short: 4 + 4
        assert_eq!(l.slot_bytes(16), 12); // medium m=2: 8 + 4
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_layout_rejected() {
        let _ = PacketLayout::custom(0, 0, 2);
    }

    #[test]
    #[should_panic(expected = "128")]
    fn oversized_layout_rejected() {
        let _ = PacketLayout::custom(129, 0, 2);
    }

    #[test]
    fn bitmap_reflects_occupancy() {
        let mut slots = vec![None; 4];
        slots[1] = Some(kv("a", 1));
        slots[3] = Some(kv("b", 2));
        let p = DataPacket {
            task: TaskId(1),
            channel: ChannelId(0),
            seq: SeqNo(0),
            slots,
        };
        assert_eq!(p.bitmap(), 0b1010);
        assert_eq!(p.occupied(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn wire_bytes_single_short_tuple_is_86() {
        // One 8-byte tuple + 78 bytes overhead — the §3.2 goodput example.
        let l = PacketLayout::short_only(1);
        let p = DataPacket {
            task: TaskId(0),
            channel: ChannelId(0),
            seq: SeqNo(0),
            slots: vec![Some(kv("k", 1))],
        };
        assert_eq!(p.wire_bytes(&l), 86);
    }

    #[test]
    fn wire_bytes_full_paper_packet() {
        let l = PacketLayout::paper_default();
        let mut slots = Vec::new();
        for i in 0..l.slot_count() {
            let name = format!("k{i:06}"); // 7 bytes: medium
            let s = if l.is_short_slot(i) { "abcd" } else { &name };
            slots.push(Some(kv(s, 1)));
        }
        let p = DataPacket {
            task: TaskId(0),
            channel: ChannelId(0),
            seq: SeqNo(0),
            slots,
        };
        // 16 short × 8 + 8 medium × 12 = 224 payload bytes + 78.
        assert_eq!(p.wire_bytes(&l), 224 + 78);
    }

    #[test]
    fn header_only_packets_cost_overhead() {
        let l = PacketLayout::paper_default();
        assert_eq!(
            AskPacket::Ack {
                channel: ChannelId(1),
                seq: SeqNo(9),
                ece: false,
            }
            .wire_bytes(&l),
            78
        );
        assert_eq!(AskPacket::Swap { task: TaskId(0) }.wire_bytes(&l), 78);
    }

    #[test]
    fn display_summaries_are_informative() {
        let p = AskPacket::Ack {
            channel: ChannelId(3),
            seq: SeqNo(9),
            ece: true,
        };
        assert_eq!(p.to_string(), "ACK ch3 seq9 ECE");
        let mut slots = vec![None; 4];
        slots[1] = Some(kv("a", 1));
        let d = AskPacket::Data(DataPacket {
            task: TaskId(2),
            channel: ChannelId(0),
            seq: SeqNo(5),
            slots,
        });
        assert_eq!(d.to_string(), "DATA task2 ch0 seq5 [1 of 4 slots]");
        let c = AskPacket::Control(ControlMsg::RegionGrant {
            task: TaskId(1),
            region: AaRegion {
                base: 8,
                aggregators: 8,
            },
        });
        assert_eq!(c.to_string(), "CTRL region-grant task1 [8..16)");
    }

    #[test]
    fn long_kv_wire_bytes_scale_with_key_len() {
        let l = PacketLayout::paper_default();
        let p = AskPacket::LongKv {
            task: TaskId(0),
            channel: ChannelId(0),
            seq: SeqNo(0),
            entries: vec![kv("averylongkeyxxxx", 1)],
        };
        assert_eq!(p.wire_bytes(&l), 78 + 2 + 16 + 4);
    }
}
