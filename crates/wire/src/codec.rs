//! Binary encoding of [`AskPacket`]s.
//!
//! The encoding is compact enough that the serialized size never exceeds the
//! *nominal* wire size used for bandwidth accounting
//! ([`AskPacket::wire_bytes`]), so frames can carry real bytes while the
//! simulator charges the paper's 78-byte overhead model.
//!
//! Short and medium slots are encoded as fixed-width zero-padded key
//! segments (exactly what the switch's `kPart` registers store), which is
//! reversible because [`Key`]s never contain NUL bytes.

use crate::key::{Key, KeyError, KPART_BYTES};
use crate::packet::{
    AaRegion, AggregateOp, AskPacket, ChannelId, ControlMsg, DataPacket, FetchScope, KvTuple,
    PacketLayout, SeqNo, TaskId,
};
use crate::pool::PacketPool;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use core::fmt;
use std::sync::Arc;

pub(crate) const KIND_DATA: u8 = 0;
pub(crate) const KIND_LONG_KV: u8 = 1;
pub(crate) const KIND_ACK: u8 = 2;
pub(crate) const KIND_FIN: u8 = 3;
pub(crate) const KIND_SWAP: u8 = 4;
pub(crate) const KIND_FETCH_REQ: u8 = 5;
pub(crate) const KIND_FETCH_REPLY: u8 = 6;
pub(crate) const KIND_CONTROL: u8 = 7;

pub(crate) const CTRL_REGION_REQUEST: u8 = 0;
pub(crate) const CTRL_REGION_GRANT: u8 = 1;
pub(crate) const CTRL_REGION_DENY: u8 = 2;
pub(crate) const CTRL_REGION_RELEASE: u8 = 3;
pub(crate) const CTRL_TASK_ANNOUNCE: u8 = 4;
pub(crate) const CTRL_EPOCH_NOTIFY: u8 = 5;

/// Envelope header length: checksum, source, destination, epoch, flags.
pub const ENVELOPE_HEADER_BYTES: usize = 4 + 4 + 4 + 4 + 1;

/// Envelope flag bit: the carried data packet must not be aggregated by the
/// switch — relay it to the destination unchanged (degraded pass-through
/// while the switch is recovering from a crash).
pub const FLAG_NO_AGGREGATE: u8 = 0b1;

/// Error decoding a byte buffer into an [`AskPacket`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the packet was complete.
    Truncated,
    /// The envelope checksum did not match — the frame was corrupted in
    /// transit and must be treated as lost.
    ChecksumMismatch,
    /// Unknown packet kind byte.
    BadKind(u8),
    /// Unknown control-message kind byte.
    BadControlKind(u8),
    /// A decoded key failed validation.
    BadKey(KeyError),
    /// Bytes remained after a complete packet.
    TrailingBytes(usize),
    /// A data packet declared an impossible slot layout.
    BadLayout,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "packet truncated"),
            CodecError::ChecksumMismatch => write!(f, "envelope checksum mismatch"),
            CodecError::BadKind(k) => write!(f, "unknown packet kind {k}"),
            CodecError::BadControlKind(k) => write!(f, "unknown control kind {k}"),
            CodecError::BadKey(e) => write!(f, "invalid key: {e}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after packet"),
            CodecError::BadLayout => write!(f, "invalid slot layout in data packet"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::BadKey(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<KeyError> for CodecError {
    fn from(e: KeyError) -> Self {
        CodecError::BadKey(e)
    }
}

/// Exact serialized size of `packet` under `layout`, used to reserve
/// encoding buffers up front so the hot path never reallocates mid-write.
pub fn encoded_size(packet: &AskPacket, layout: &PacketLayout) -> usize {
    fn entries_size(entries: &[KvTuple]) -> usize {
        4 + entries.iter().map(|t| 2 + t.key.len() + 4).sum::<usize>()
    }
    match packet {
        AskPacket::Data(d) => {
            let mut n = 1 + 4 + 4 + 8 + 3 + 16;
            for (i, slot) in d.slots.iter().enumerate() {
                if slot.is_some() {
                    let width = if layout.is_short_slot(i) {
                        KPART_BYTES
                    } else {
                        layout.medium_max_key_len()
                    };
                    n += width + 4;
                }
            }
            n
        }
        AskPacket::LongKv { entries, .. } => 1 + 4 + 4 + 8 + entries_size(entries),
        AskPacket::Ack { .. } => 1 + 4 + 8 + 1,
        AskPacket::Fin { .. } => 1 + 4 + 4 + 8,
        AskPacket::Swap { .. } => 1 + 4,
        AskPacket::FetchRequest { .. } => 1 + 4 + 1 + 4,
        AskPacket::FetchReply { entries, .. } => 1 + 4 + 4 + entries_size(entries),
        AskPacket::Control(msg) => match msg {
            ControlMsg::RegionRequest { .. } => 2 + 4 + 1,
            ControlMsg::RegionGrant { .. } => 2 + 4 + 8,
            ControlMsg::RegionDeny { .. } | ControlMsg::RegionRelease { .. } => 2 + 4,
            ControlMsg::TaskAnnounce { .. } => 2 + 4 + 4,
            ControlMsg::EpochNotify { .. } => 2 + 4,
        },
    }
}

/// Zero padding written after a key to fill its fixed-width slot.
fn put_zero_pad(buf: &mut BytesMut, mut n: usize) {
    const PAD: [u8; 64] = [0u8; 64];
    while n > 0 {
        let chunk = n.min(PAD.len());
        buf.put_slice(&PAD[..chunk]);
        n -= chunk;
    }
}

/// Serializes a packet. `layout` governs the slot widths of data packets.
///
/// # Panics
///
/// Panics if a [`DataPacket`]'s slot vector length differs from
/// `layout.slot_count()`, or a slot carries a key wider than its slot.
pub fn encode(packet: &AskPacket, layout: &PacketLayout) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_size(packet, layout));
    encode_into(&mut buf, packet, layout);
    buf.freeze()
}

/// Appends `packet`'s serialized form to `buf` — the scratch-buffer form of
/// [`encode`], letting callers compose an envelope (or any outer framing)
/// in one buffer without an intermediate body allocation and copy.
///
/// # Panics
///
/// Same conditions as [`encode`].
pub fn encode_into(buf: &mut BytesMut, packet: &AskPacket, layout: &PacketLayout) {
    match packet {
        AskPacket::Data(d) => {
            assert_eq!(
                d.slots.len(),
                layout.slot_count(),
                "slot vector must match layout"
            );
            buf.put_u8(KIND_DATA);
            buf.put_u32(d.task.0);
            buf.put_u32(d.channel.0);
            buf.put_u64(d.seq.0);
            buf.put_u8(layout.short_slots() as u8);
            buf.put_u8(layout.medium_groups() as u8);
            buf.put_u8(layout.medium_segments() as u8);
            buf.put_u128(d.bitmap());
            for (i, slot) in d.slots.iter().enumerate() {
                let Some(t) = slot else { continue };
                let width = if layout.is_short_slot(i) {
                    KPART_BYTES
                } else {
                    layout.medium_max_key_len()
                };
                assert!(
                    t.key.len() <= width,
                    "key {} too long for slot {i} (width {width})",
                    t.key
                );
                buf.put_slice(t.key.as_bytes());
                put_zero_pad(buf, width - t.key.len());
                buf.put_u32(t.value);
            }
        }
        AskPacket::LongKv {
            task,
            channel,
            seq,
            entries,
        } => {
            buf.put_u8(KIND_LONG_KV);
            buf.put_u32(task.0);
            buf.put_u32(channel.0);
            buf.put_u64(seq.0);
            put_entries(buf, entries);
        }
        AskPacket::Ack { channel, seq, ece } => {
            buf.put_u8(KIND_ACK);
            buf.put_u32(channel.0);
            buf.put_u64(seq.0);
            buf.put_u8(*ece as u8);
        }
        AskPacket::Fin { task, channel, seq } => {
            buf.put_u8(KIND_FIN);
            buf.put_u32(task.0);
            buf.put_u32(channel.0);
            buf.put_u64(seq.0);
        }
        AskPacket::Swap { task } => {
            buf.put_u8(KIND_SWAP);
            buf.put_u32(task.0);
        }
        AskPacket::FetchRequest {
            task,
            scope,
            fetch_seq,
        } => {
            buf.put_u8(KIND_FETCH_REQ);
            buf.put_u32(task.0);
            buf.put_u8(match scope {
                FetchScope::Inactive => 0,
                FetchScope::All => 1,
            });
            buf.put_u32(*fetch_seq);
        }
        AskPacket::FetchReply {
            task,
            fetch_seq,
            entries,
        } => {
            buf.put_u8(KIND_FETCH_REPLY);
            buf.put_u32(task.0);
            buf.put_u32(*fetch_seq);
            put_entries(buf, entries);
        }
        AskPacket::Control(msg) => {
            buf.put_u8(KIND_CONTROL);
            match msg {
                ControlMsg::RegionRequest { task, op } => {
                    buf.put_u8(CTRL_REGION_REQUEST);
                    buf.put_u32(task.0);
                    buf.put_u8(op.to_code());
                }
                ControlMsg::RegionGrant { task, region } => {
                    buf.put_u8(CTRL_REGION_GRANT);
                    buf.put_u32(task.0);
                    buf.put_u32(region.base);
                    buf.put_u32(region.aggregators);
                }
                ControlMsg::RegionDeny { task } => {
                    buf.put_u8(CTRL_REGION_DENY);
                    buf.put_u32(task.0);
                }
                ControlMsg::RegionRelease { task } => {
                    buf.put_u8(CTRL_REGION_RELEASE);
                    buf.put_u32(task.0);
                }
                ControlMsg::TaskAnnounce { task, receiver } => {
                    buf.put_u8(CTRL_TASK_ANNOUNCE);
                    buf.put_u32(task.0);
                    buf.put_u32(*receiver);
                }
                ControlMsg::EpochNotify { epoch } => {
                    buf.put_u8(CTRL_EPOCH_NOTIFY);
                    buf.put_u32(*epoch);
                }
            }
        }
    }
}

fn put_entries(buf: &mut BytesMut, entries: &[KvTuple]) {
    buf.put_u32(entries.len() as u32);
    for t in entries {
        buf.put_u16(t.key.len() as u16);
        buf.put_slice(t.key.as_bytes());
        buf.put_u32(t.value);
    }
}

/// Deserializes a packet previously produced by [`encode`].
///
/// # Errors
///
/// Returns [`CodecError`] on truncation, unknown kinds, invalid keys, an
/// impossible declared layout, or trailing bytes.
pub fn decode(mut buf: Bytes) -> Result<AskPacket, CodecError> {
    let packet = decode_inner(&mut buf, None)?;
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes(buf.len()));
    }
    Ok(packet)
}

/// [`decode`] drawing slot/tuple backing stores from `pool` instead of
/// allocating. Vectors taken for a packet that later fails to decode are
/// dropped, not returned — error paths are cold and self-heal on the next
/// recycle.
///
/// # Errors
///
/// Same conditions as [`decode`].
pub fn decode_pooled(mut buf: Bytes, pool: &mut PacketPool) -> Result<AskPacket, CodecError> {
    let packet = decode_inner(&mut buf, Some(pool))?;
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes(buf.len()));
    }
    Ok(packet)
}

fn need(buf: &Bytes, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

fn decode_inner(
    buf: &mut Bytes,
    mut pool: Option<&mut PacketPool>,
) -> Result<AskPacket, CodecError> {
    need(buf, 1)?;
    let kind = buf.get_u8();
    match kind {
        KIND_DATA => {
            need(buf, 4 + 4 + 8 + 3 + 16)?;
            let task = TaskId(buf.get_u32());
            let channel = ChannelId(buf.get_u32());
            let seq = SeqNo(buf.get_u64());
            let short_slots = buf.get_u8() as usize;
            let medium_groups = buf.get_u8() as usize;
            let medium_segments = buf.get_u8() as usize;
            let slots_total = short_slots + medium_groups;
            if slots_total == 0 || slots_total > 128 || (medium_groups > 0 && medium_segments < 2) {
                return Err(CodecError::BadLayout);
            }
            let layout = PacketLayout::custom(short_slots, medium_groups, medium_segments);
            let bitmap = buf.get_u128();
            if slots_total < 128 && bitmap >> slots_total != 0 {
                return Err(CodecError::BadLayout);
            }
            let mut slots = match pool.as_deref_mut() {
                Some(p) => p.take_slots(slots_total),
                None => Vec::with_capacity(slots_total),
            };
            for i in 0..slots_total {
                if bitmap & (1 << i) == 0 {
                    slots.push(None);
                    continue;
                }
                let width = if layout.is_short_slot(i) {
                    KPART_BYTES
                } else {
                    layout.medium_max_key_len()
                };
                need(buf, width + 4)?;
                // Scan the padded segment through the plain byte view first,
                // then borrow the key bytes from the input buffer with a
                // single O(1) slice of the shared backing storage — no
                // per-slot allocation and only one refcount touch.
                let raw = &buf[..width];
                let key_len = raw.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
                if key_len == 0 {
                    return Err(KeyError::Empty.into());
                }
                if raw[..key_len].contains(&0) {
                    return Err(KeyError::ContainsNul.into());
                }
                let key = Key::from_validated_slice(&raw[..key_len]);
                buf.advance(width);
                let value = buf.get_u32();
                slots.push(Some(KvTuple::new(key, value)));
            }
            Ok(AskPacket::Data(DataPacket {
                task,
                channel,
                seq,
                slots,
            }))
        }
        KIND_LONG_KV => {
            need(buf, 4 + 4 + 8)?;
            let task = TaskId(buf.get_u32());
            let channel = ChannelId(buf.get_u32());
            let seq = SeqNo(buf.get_u64());
            let entries = get_entries(buf, pool)?;
            Ok(AskPacket::LongKv {
                task,
                channel,
                seq,
                entries,
            })
        }
        KIND_ACK => {
            need(buf, 4 + 8 + 1)?;
            Ok(AskPacket::Ack {
                channel: ChannelId(buf.get_u32()),
                seq: SeqNo(buf.get_u64()),
                ece: buf.get_u8() != 0,
            })
        }
        KIND_FIN => {
            need(buf, 4 + 4 + 8)?;
            Ok(AskPacket::Fin {
                task: TaskId(buf.get_u32()),
                channel: ChannelId(buf.get_u32()),
                seq: SeqNo(buf.get_u64()),
            })
        }
        KIND_SWAP => {
            need(buf, 4)?;
            Ok(AskPacket::Swap {
                task: TaskId(buf.get_u32()),
            })
        }
        KIND_FETCH_REQ => {
            need(buf, 9)?;
            let task = TaskId(buf.get_u32());
            let scope = match buf.get_u8() {
                0 => FetchScope::Inactive,
                _ => FetchScope::All,
            };
            let fetch_seq = buf.get_u32();
            Ok(AskPacket::FetchRequest {
                task,
                scope,
                fetch_seq,
            })
        }
        KIND_FETCH_REPLY => {
            need(buf, 8)?;
            let task = TaskId(buf.get_u32());
            let fetch_seq = buf.get_u32();
            // Fetch-reply entries go behind a shared `Arc` (fetch cache,
            // replayed replies), so their backing store cannot be recycled.
            let entries = Arc::new(get_entries(buf, None)?);
            Ok(AskPacket::FetchReply {
                task,
                fetch_seq,
                entries,
            })
        }
        KIND_CONTROL => {
            need(buf, 1)?;
            let ctrl = buf.get_u8();
            match ctrl {
                CTRL_REGION_REQUEST => {
                    need(buf, 5)?;
                    Ok(AskPacket::Control(ControlMsg::RegionRequest {
                        task: TaskId(buf.get_u32()),
                        op: AggregateOp::from_code(buf.get_u8()),
                    }))
                }
                CTRL_REGION_GRANT => {
                    need(buf, 12)?;
                    Ok(AskPacket::Control(ControlMsg::RegionGrant {
                        task: TaskId(buf.get_u32()),
                        region: AaRegion {
                            base: buf.get_u32(),
                            aggregators: buf.get_u32(),
                        },
                    }))
                }
                CTRL_REGION_DENY => {
                    need(buf, 4)?;
                    Ok(AskPacket::Control(ControlMsg::RegionDeny {
                        task: TaskId(buf.get_u32()),
                    }))
                }
                CTRL_REGION_RELEASE => {
                    need(buf, 4)?;
                    Ok(AskPacket::Control(ControlMsg::RegionRelease {
                        task: TaskId(buf.get_u32()),
                    }))
                }
                CTRL_TASK_ANNOUNCE => {
                    need(buf, 8)?;
                    Ok(AskPacket::Control(ControlMsg::TaskAnnounce {
                        task: TaskId(buf.get_u32()),
                        receiver: buf.get_u32(),
                    }))
                }
                CTRL_EPOCH_NOTIFY => {
                    need(buf, 4)?;
                    Ok(AskPacket::Control(ControlMsg::EpochNotify {
                        epoch: buf.get_u32(),
                    }))
                }
                other => Err(CodecError::BadControlKind(other)),
            }
        }
        other => Err(CodecError::BadKind(other)),
    }
}

/// An [`AskPacket`] wrapped with source/destination addressing, the unit a
/// host actually puts on the wire. The addresses stand in for the IP header
/// the paper's packets carry ("the sender streams the packets to the
/// receiver with the task ID and the destination IP address in the packet",
/// §3.1); they are raw simulator node indices here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Originating node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Switch epoch the frame was stamped with. Bumped by every
    /// switch crash-restart; frames from an older epoch are stale and must
    /// be dropped, not processed (their reliability state died with the
    /// crash). `0` is the boot epoch, so crash-free runs never see a
    /// mismatch.
    pub epoch: u32,
    /// Envelope flag bits (see [`FLAG_NO_AGGREGATE`]).
    pub flags: u8,
    /// The carried packet.
    pub packet: AskPacket,
}

impl Envelope {
    /// Convenience constructor (boot epoch, no flags).
    pub fn new(src: u32, dst: u32, packet: AskPacket) -> Self {
        Envelope {
            src,
            dst,
            epoch: 0,
            flags: 0,
            packet,
        }
    }

    /// Nominal wire bytes (addressing is part of the 78-byte overhead).
    pub fn wire_bytes(&self, layout: &PacketLayout) -> usize {
        self.packet.wire_bytes(layout)
    }
}

/// Lookup tables for slice-by-8 CRC-32: `CRC32_TABLES[0]` is the classic
/// byte-at-a-time table for the reflected IEEE 802.3 polynomial; table `t`
/// advances a byte through `t` additional zero bytes, letting eight input
/// bytes fold into the CRC per step.
const CRC32_TABLES: [[u32; 256]; 8] = build_crc32_tables();

const fn build_crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// CRC-32 (IEEE 802.3 polynomial) over a byte slice — the envelope's
/// integrity check, standing in for the Ethernet FCS the simulator's
/// framing-overhead constant already accounts for. Slice-by-8 table
/// lookup; identical values to the bitwise definition.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = CRC32_TABLES[7][(lo & 0xff) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xff) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Serializes an addressed packet, prepending a CRC-32 over the body so
/// in-transit corruption is detected at the next hop and the frame is
/// treated as lost (recovered by retransmission).
///
/// # Panics
///
/// Same conditions as [`encode`].
pub fn encode_envelope(envelope: &Envelope, layout: &PacketLayout) -> Bytes {
    encode_envelope_parts(
        envelope.src,
        envelope.dst,
        envelope.epoch,
        envelope.flags,
        &envelope.packet,
        layout,
    )
}

/// [`encode_envelope`] without requiring an [`Envelope`] to be built first,
/// so senders can serialize a packet they still own. The whole envelope is
/// written into a single exactly-sized buffer: the header first, the body
/// directly behind it, then the checksum patched in — no separate body
/// allocation or copy.
///
/// # Panics
///
/// Same conditions as [`encode`].
pub fn encode_envelope_parts(
    src: u32,
    dst: u32,
    epoch: u32,
    flags: u8,
    packet: &AskPacket,
    layout: &PacketLayout,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(ENVELOPE_HEADER_BYTES + encoded_size(packet, layout));
    buf.put_u32(0); // checksum placeholder
    buf.put_u32(src);
    buf.put_u32(dst);
    buf.put_u32(epoch);
    buf.put_u8(flags);
    encode_into(&mut buf, packet, layout);
    let sum = crc32(&buf[4..]);
    buf[0..4].copy_from_slice(&sum.to_be_bytes());
    buf.freeze()
}

/// The addressing fields of a validated envelope header — the single
/// checksum-and-header pass shared by [`decode_envelope`],
/// [`decode_envelope_pooled`], and [`crate::view::FrameView::parse`], so no
/// ingest path ever CRCs a frame twice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EnvelopeHeader {
    pub(crate) src: u32,
    pub(crate) dst: u32,
    pub(crate) epoch: u32,
    pub(crate) flags: u8,
}

/// Verifies the envelope checksum and reads the addressing header.
pub(crate) fn check_envelope_header(bytes: &[u8]) -> Result<EnvelopeHeader, CodecError> {
    if bytes.len() < ENVELOPE_HEADER_BYTES {
        return Err(CodecError::Truncated);
    }
    let expected = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if crc32(&bytes[4..]) != expected {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(EnvelopeHeader {
        src: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        dst: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
        epoch: u32::from_be_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
        flags: bytes[16],
    })
}

/// Deserializes an addressed packet produced by [`encode_envelope`],
/// verifying the integrity checksum first.
///
/// # Errors
///
/// [`CodecError::ChecksumMismatch`] for corrupted frames; otherwise the
/// same conditions as [`decode`].
pub fn decode_envelope(bytes: Bytes) -> Result<Envelope, CodecError> {
    let h = check_envelope_header(&bytes)?;
    let packet = decode(bytes.slice(ENVELOPE_HEADER_BYTES..))?;
    Ok(Envelope {
        src: h.src,
        dst: h.dst,
        epoch: h.epoch,
        flags: h.flags,
        packet,
    })
}

/// [`decode_envelope`] drawing packet backing stores from `pool` — the hot
/// path used by the switch and the daemons, which own a [`PacketPool`] and
/// recycle each packet's vectors once its tuples are consumed.
///
/// # Errors
///
/// Same conditions as [`decode_envelope`].
pub fn decode_envelope_pooled(
    bytes: Bytes,
    pool: &mut PacketPool,
) -> Result<Envelope, CodecError> {
    let h = check_envelope_header(&bytes)?;
    let packet = decode_pooled(bytes.slice(ENVELOPE_HEADER_BYTES..), pool)?;
    Ok(Envelope {
        src: h.src,
        dst: h.dst,
        epoch: h.epoch,
        flags: h.flags,
        packet,
    })
}

fn get_entries(
    buf: &mut Bytes,
    pool: Option<&mut PacketPool>,
) -> Result<Vec<KvTuple>, CodecError> {
    need(buf, 4)?;
    let count = buf.get_u32() as usize;
    let mut entries = match pool {
        Some(p) => p.take_tuples(count.min(4096)),
        None => Vec::with_capacity(count.min(4096)),
    };
    for _ in 0..count {
        need(buf, 2)?;
        let len = buf.get_u16() as usize;
        need(buf, len + 4)?;
        let key = Key::new(buf.copy_to_bytes(len))?;
        let value = buf.get_u32();
        entries.push(KvTuple::new(key, value));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(s: &str, v: u32) -> KvTuple {
        KvTuple::new(Key::from_str(s).unwrap(), v)
    }

    fn roundtrip(p: &AskPacket, layout: &PacketLayout) {
        let bytes = encode(p, layout);
        let back = decode(bytes).expect("decode");
        assert_eq!(&back, p);
    }

    #[test]
    fn data_packet_roundtrips() {
        let layout = PacketLayout::paper_default();
        let mut slots = vec![None; layout.slot_count()];
        slots[0] = Some(kv("ab", 7));
        slots[3] = Some(kv("wxyz", 1));
        slots[16] = Some(kv("mediumk", 42)); // 7-byte medium key
        let p = AskPacket::Data(DataPacket {
            task: TaskId(5),
            channel: ChannelId(2),
            seq: SeqNo(99),
            slots,
        });
        roundtrip(&p, &layout);
    }

    #[test]
    fn encoded_size_never_exceeds_nominal_wire_size() {
        let layout = PacketLayout::paper_default();
        let mut slots = Vec::new();
        for i in 0..layout.slot_count() {
            let name = format!("k{i:06}");
            let s = if layout.is_short_slot(i) {
                "abcd"
            } else {
                &name
            };
            slots.push(Some(kv(s, i as u32)));
        }
        let p = AskPacket::Data(DataPacket {
            task: TaskId(0),
            channel: ChannelId(0),
            seq: SeqNo(0),
            slots,
        });
        let encoded = encode(&p, &layout);
        assert!(
            encoded.len() <= p.wire_bytes(&layout),
            "{} > {}",
            encoded.len(),
            p.wire_bytes(&layout)
        );
    }

    #[test]
    fn all_header_packets_roundtrip() {
        let layout = PacketLayout::paper_default();
        let packets = vec![
            AskPacket::Ack {
                channel: ChannelId(1),
                seq: SeqNo(u64::MAX),
                ece: true,
            },
            AskPacket::Fin {
                task: TaskId(1),
                channel: ChannelId(2),
                seq: SeqNo(3),
            },
            AskPacket::Swap { task: TaskId(9) },
            AskPacket::FetchRequest {
                task: TaskId(4),
                scope: FetchScope::Inactive,
                fetch_seq: 1,
            },
            AskPacket::FetchRequest {
                task: TaskId(4),
                scope: FetchScope::All,
                fetch_seq: 2,
            },
            AskPacket::Control(ControlMsg::RegionRequest {
                task: TaskId(7),
                op: AggregateOp::Max,
            }),
            AskPacket::Control(ControlMsg::RegionGrant {
                task: TaskId(7),
                region: AaRegion {
                    base: 64,
                    aggregators: 1024,
                },
            }),
            AskPacket::Control(ControlMsg::RegionDeny { task: TaskId(7) }),
            AskPacket::Control(ControlMsg::RegionRelease { task: TaskId(7) }),
            AskPacket::Control(ControlMsg::TaskAnnounce {
                task: TaskId(7),
                receiver: 3,
            }),
            AskPacket::Control(ControlMsg::EpochNotify { epoch: 42 }),
        ];
        for p in &packets {
            roundtrip(p, &layout);
        }
    }

    #[test]
    fn long_kv_and_fetch_reply_roundtrip() {
        let layout = PacketLayout::paper_default();
        roundtrip(
            &AskPacket::LongKv {
                task: TaskId(1),
                channel: ChannelId(1),
                seq: SeqNo(12),
                entries: vec![kv("a-very-long-key-beyond-eight", 5), kv("another1234", 6)],
            },
            &layout,
        );
        roundtrip(
            &AskPacket::FetchReply {
                task: TaskId(1),
                fetch_seq: 3,
                entries: Arc::new(vec![kv("x", 1)]),
            },
            &layout,
        );
    }

    #[test]
    fn encoded_size_is_exact() {
        let layout = PacketLayout::paper_default();
        let mut slots = vec![None; layout.slot_count()];
        slots[0] = Some(kv("ab", 7));
        slots[17] = Some(kv("mediumk", 42));
        let packets = vec![
            AskPacket::Data(DataPacket {
                task: TaskId(5),
                channel: ChannelId(2),
                seq: SeqNo(99),
                slots,
            }),
            AskPacket::LongKv {
                task: TaskId(1),
                channel: ChannelId(1),
                seq: SeqNo(12),
                entries: vec![kv("a-very-long-key", 5)],
            },
            AskPacket::Ack {
                channel: ChannelId(1),
                seq: SeqNo(2),
                ece: true,
            },
            AskPacket::Fin {
                task: TaskId(1),
                channel: ChannelId(2),
                seq: SeqNo(3),
            },
            AskPacket::Swap { task: TaskId(9) },
            AskPacket::FetchRequest {
                task: TaskId(4),
                scope: FetchScope::All,
                fetch_seq: 2,
            },
            AskPacket::FetchReply {
                task: TaskId(1),
                fetch_seq: 3,
                entries: Arc::new(vec![kv("x", 1), kv("yy", 2)]),
            },
            AskPacket::Control(ControlMsg::TaskAnnounce {
                task: TaskId(7),
                receiver: 3,
            }),
            AskPacket::Control(ControlMsg::EpochNotify { epoch: 9 }),
        ];
        for p in &packets {
            assert_eq!(
                encode(p, &layout).len(),
                encoded_size(p, &layout),
                "size mismatch for {p}"
            );
        }
    }

    #[test]
    fn truncated_buffers_error() {
        let layout = PacketLayout::paper_default();
        let bytes = encode(
            &AskPacket::Ack {
                channel: ChannelId(1),
                seq: SeqNo(2),
                ece: false,
            },
            &layout,
        );
        for cut in 0..bytes.len() {
            let err = decode(bytes.slice(0..cut)).unwrap_err();
            assert_eq!(err, CodecError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let layout = PacketLayout::paper_default();
        let mut v = encode(&AskPacket::Swap { task: TaskId(1) }, &layout).to_vec();
        v.push(0xAA);
        assert_eq!(
            decode(Bytes::from(v)).unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(
            decode(Bytes::from_static(&[200])).unwrap_err(),
            CodecError::BadKind(200)
        );
    }

    #[test]
    fn bad_layout_rejected() {
        // Hand-craft a data packet header declaring zero slots.
        let mut buf = BytesMut::new();
        buf.put_u8(KIND_DATA);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u64(0);
        buf.put_u8(0); // short
        buf.put_u8(0); // medium groups
        buf.put_u8(2); // m
        buf.put_u128(0);
        assert_eq!(decode(buf.freeze()).unwrap_err(), CodecError::BadLayout);
    }

    #[test]
    fn bitmap_beyond_slots_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(KIND_DATA);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u64(0);
        buf.put_u8(2); // 2 short slots
        buf.put_u8(0);
        buf.put_u8(2);
        buf.put_u128(0b100); // bit 2 set but only slots 0..2 exist
        assert_eq!(decode(buf.freeze()).unwrap_err(), CodecError::BadLayout);
    }

    #[test]
    fn envelope_roundtrips_with_checksum() {
        let layout = PacketLayout::paper_default();
        let env = Envelope::new(3, 9, AskPacket::Swap { task: TaskId(5) });
        let bytes = encode_envelope(&env, &layout);
        assert_eq!(decode_envelope(bytes).unwrap(), env);
    }

    #[test]
    fn envelope_epoch_and_flags_roundtrip() {
        let layout = PacketLayout::paper_default();
        let mut env = Envelope::new(1, 2, AskPacket::Swap { task: TaskId(5) });
        env.epoch = 3;
        env.flags = FLAG_NO_AGGREGATE;
        let bytes = encode_envelope(&env, &layout);
        let back = decode_envelope(bytes).unwrap();
        assert_eq!(back.epoch, 3);
        assert_eq!(back.flags & FLAG_NO_AGGREGATE, FLAG_NO_AGGREGATE);
        assert_eq!(back, env);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let layout = PacketLayout::paper_default();
        let env = Envelope::new(
            1,
            2,
            AskPacket::Fin {
                task: TaskId(1),
                channel: ChannelId(2),
                seq: SeqNo(3),
            },
        );
        let bytes = encode_envelope(&env, &layout);
        for byte_ix in 0..bytes.len() {
            for bit in 0..8 {
                let mut v = bytes.to_vec();
                v[byte_ix] ^= 1 << bit;
                let got = decode_envelope(Bytes::from(v));
                assert!(
                    got != Ok(env.clone()),
                    "flip at {byte_ix}.{bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            CodecError::Truncated,
            CodecError::ChecksumMismatch,
            CodecError::BadKind(1),
            CodecError::BadControlKind(1),
            CodecError::BadKey(KeyError::Empty),
            CodecError::TrailingBytes(2),
            CodecError::BadLayout,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
