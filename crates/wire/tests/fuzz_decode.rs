//! Decode-never-panics fuzz corpus.
//!
//! Every packet kind is encoded under several layouts, then attacked with
//! systematic truncation and single-bit flips; finally the decoders eat
//! seeded random byte soup. The contract under test: a hostile or mangled
//! buffer must produce `Err(CodecError)` (or, for raw bit flips that land
//! on value bytes, a different valid packet) — never a panic, and never an
//! `Ok` from a corrupted envelope, whose CRC must catch every flip.

use ask_wire::codec::{
    decode, decode_envelope, encode, encode_envelope, CodecError, Envelope,
};
use ask_wire::key::Key;
use ask_wire::packet::{
    AaRegion, AggregateOp, AskPacket, ChannelId, ControlMsg, DataPacket, FetchScope, KvTuple,
    PacketLayout, SeqNo, TaskId,
};
use ask_wire::view::{FrameView, PacketView};
use bytes::Bytes;
use std::sync::Arc;

/// The borrowed-view parser must agree with the full materializing decoder
/// on *every* input: same accept/reject verdict, the same typed error on
/// reject, and on accept the same envelope fields, the same packet after
/// materialization, and — for data frames — the same header fields and
/// `(key, value)` pairs read slot by slot straight off the wire bytes.
fn assert_view_agrees_with_decode(bytes: Bytes) {
    match (FrameView::parse(bytes.clone()), decode_envelope(bytes)) {
        (Err(view_err), Err(dec_err)) => {
            assert_eq!(view_err, dec_err, "view and decoder reject differently");
        }
        (Ok(view), Ok(env)) => {
            assert_eq!(view.src(), env.src);
            assert_eq!(view.dst(), env.dst);
            assert_eq!(view.epoch(), env.epoch);
            assert_eq!(view.flags(), env.flags);
            if let (PacketView::Data(d), AskPacket::Data(p)) = (view.packet(), &env.packet) {
                assert_eq!(d.task(), p.task);
                assert_eq!(d.channel(), p.channel);
                assert_eq!(d.seq(), p.seq);
                assert_eq!(d.bitmap(), p.bitmap());
                assert_eq!(d.occupied(), p.occupied());
                let mut seen = 0usize;
                for slot in d.slots() {
                    let tuple = p.slots[slot.index()]
                        .as_ref()
                        .expect("view yields only occupied slots");
                    assert_eq!(slot.key(), tuple.key, "slot {} key", slot.index());
                    assert_eq!(slot.value(), tuple.value, "slot {} value", slot.index());
                    assert_eq!(slot.key_len(), tuple.key.len());
                    seen += 1;
                }
                assert_eq!(seen, p.occupied(), "view must visit every occupied slot");
            }
            assert_eq!(view.materialize(), env, "materialized view diverges");
        }
        (view, dec) => panic!(
            "accept/reject verdicts diverge: view={:?} decode={:?}",
            view.map(|v| v.materialize()),
            dec,
        ),
    }
}

/// Tiny deterministic PRNG (splitmix64) so the corpus needs no rand dep.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn layouts() -> Vec<PacketLayout> {
    vec![
        PacketLayout::paper_default(),
        PacketLayout::custom(4, 2, 2),
        PacketLayout::custom(2, 2, 3),
        PacketLayout::custom(1, 0, 2),
    ]
}

fn tuple(key: &str, value: u32) -> KvTuple {
    KvTuple::new(Key::from_str(key).unwrap(), value)
}

/// Every packet kind, with empty/sparse/full payload variants.
fn corpus(layout: &PacketLayout) -> Vec<AskPacket> {
    let slots = layout.slot_count();
    let full: Vec<Option<KvTuple>> = (0..slots)
        .map(|i| Some(tuple(&format!("k{i}"), i as u32 + 1)))
        .collect();
    let sparse: Vec<Option<KvTuple>> = (0..slots)
        .map(|i| (i % 2 == 0).then(|| tuple(&format!("s{i}"), 7)))
        .collect();
    let empty: Vec<Option<KvTuple>> = vec![None; slots];
    let data = |slots: Vec<Option<KvTuple>>| {
        AskPacket::Data(DataPacket {
            task: TaskId(3),
            channel: ChannelId(12),
            seq: SeqNo(u64::MAX - 1),
            slots,
        })
    };
    vec![
        data(full),
        data(sparse),
        data(empty),
        AskPacket::LongKv {
            task: TaskId(3),
            channel: ChannelId(12),
            seq: SeqNo(0),
            entries: vec![tuple("a-very-long-key-indeed", 9), tuple("another-one", 1)],
        },
        AskPacket::LongKv {
            task: TaskId(3),
            channel: ChannelId(0),
            seq: SeqNo(5),
            entries: vec![],
        },
        AskPacket::Ack {
            channel: ChannelId(1),
            seq: SeqNo(42),
            ece: true,
        },
        AskPacket::Ack {
            channel: ChannelId(1),
            seq: SeqNo(43),
            ece: false,
        },
        AskPacket::Fin {
            task: TaskId(3),
            channel: ChannelId(12),
            seq: SeqNo(1000),
        },
        AskPacket::Swap { task: TaskId(3) },
        AskPacket::FetchRequest {
            task: TaskId(3),
            scope: FetchScope::Inactive,
            fetch_seq: 1,
        },
        AskPacket::FetchRequest {
            task: TaskId(3),
            scope: FetchScope::All,
            fetch_seq: 2,
        },
        AskPacket::FetchReply {
            task: TaskId(3),
            fetch_seq: 2,
            entries: Arc::new(vec![tuple("fetched", 77)]),
        },
        AskPacket::Control(ControlMsg::RegionRequest {
            task: TaskId(3),
            op: AggregateOp::Max,
        }),
        AskPacket::Control(ControlMsg::RegionGrant {
            task: TaskId(3),
            region: AaRegion {
                base: 64,
                aggregators: 32,
            },
        }),
        AskPacket::Control(ControlMsg::RegionDeny { task: TaskId(3) }),
        AskPacket::Control(ControlMsg::RegionRelease { task: TaskId(3) }),
        AskPacket::Control(ControlMsg::TaskAnnounce {
            task: TaskId(3),
            receiver: 5,
        }),
    ]
}

#[test]
fn every_truncation_of_every_packet_is_an_error_not_a_panic() {
    for layout in layouts() {
        for packet in corpus(&layout) {
            let bytes = encode(&packet, &layout);
            assert_eq!(decode(bytes.clone()), Ok(packet.clone()), "{packet}");
            for cut in 0..bytes.len() {
                let truncated = bytes.slice(..cut);
                assert!(
                    decode(truncated).is_err(),
                    "truncating {packet} to {cut} of {} bytes must fail",
                    bytes.len(),
                );
            }
        }
    }
}

#[test]
fn every_envelope_truncation_is_an_error() {
    let layout = PacketLayout::paper_default();
    for packet in corpus(&layout) {
        let env = Envelope::new(2, 7, packet);
        let bytes = encode_envelope(&env, &layout);
        assert_eq!(decode_envelope(bytes.clone()), Ok(env));
        for cut in 0..bytes.len() {
            assert!(decode_envelope(bytes.slice(..cut)).is_err());
            assert_view_agrees_with_decode(bytes.slice(..cut));
        }
        assert_view_agrees_with_decode(bytes);
    }
}

#[test]
fn every_single_bit_flip_in_an_envelope_is_caught_by_the_crc() {
    let layout = PacketLayout::custom(4, 2, 2);
    for packet in corpus(&layout) {
        let bytes = encode_envelope(&Envelope::new(2, 7, packet.clone()), &layout);
        for byte_ix in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.to_vec();
                flipped[byte_ix] ^= 1 << bit;
                let flipped = Bytes::from(flipped);
                assert!(
                    decode_envelope(flipped.clone()).is_err(),
                    "flipping bit {bit} of byte {byte_ix} in {packet} must be rejected",
                );
                assert_view_agrees_with_decode(flipped);
            }
        }
    }
}

#[test]
fn view_accessors_agree_with_decode_on_every_valid_frame() {
    for layout in layouts() {
        for packet in corpus(&layout) {
            let bytes = encode_envelope(&Envelope::new(2, 7, packet), &layout);
            assert_view_agrees_with_decode(bytes);
        }
    }
}

#[test]
fn raw_decode_survives_single_bit_flips() {
    // Without the envelope CRC a flipped value byte may legitimately decode
    // to a different valid packet; the contract is only "no panic, and
    // errors are typed".
    let layout = PacketLayout::paper_default();
    for packet in corpus(&layout) {
        let bytes = encode(&packet, &layout);
        for byte_ix in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.to_vec();
                flipped[byte_ix] ^= 1 << bit;
                match decode(Bytes::from(flipped)) {
                    Ok(_) => {}
                    Err(
                        CodecError::Truncated
                        | CodecError::ChecksumMismatch
                        | CodecError::BadKind(_)
                        | CodecError::BadControlKind(_)
                        | CodecError::BadKey(_)
                        | CodecError::TrailingBytes(_)
                        | CodecError::BadLayout,
                    ) => {}
                }
            }
        }
    }
}

#[test]
fn random_byte_soup_never_panics_either_decoder() {
    let mut rng = Mix(0xF00D);
    for case in 0..4000 {
        let len = (rng.next() % 192) as usize;
        let mut buf = Vec::with_capacity(len);
        while buf.len() < len {
            buf.extend_from_slice(&rng.next().to_le_bytes());
        }
        buf.truncate(len);
        // Bias some cases toward plausible kind bytes so the fuzz reaches
        // deep into each variant's field parsing instead of bouncing off
        // BadKind immediately.
        if case % 2 == 0 && !buf.is_empty() {
            buf[0] = (rng.next() % 12) as u8;
        }
        let _ = decode(Bytes::from(buf.clone()));
        let _ = decode_envelope(Bytes::from(buf.clone()));
        assert_view_agrees_with_decode(Bytes::from(buf));
    }
}
