//! Simulated time.
//!
//! The simulator measures time in integer nanoseconds wrapped in the
//! [`SimTime`] and [`SimDuration`] newtypes so that wall-clock time and
//! simulated time can never be confused ([C-NEWTYPE]).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use ask_simnet::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use ask_simnet::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 2_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the duration as raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 7_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 20);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", SimDuration::ZERO).is_empty());
    }
}
