//! Point-to-point link model: bandwidth, propagation delay, fault injection.

use crate::faults::FaultModel;
use crate::time::{SimDuration, SimTime};

/// Configuration of one *directed* link.
///
/// A duplex connection is modelled as two directed links with (usually) the
/// same configuration.
///
/// # Examples
///
/// ```
/// use ask_simnet::link::LinkConfig;
///
/// // A 100 Gbps link with 1 µs propagation delay, as in the paper's testbed.
/// let cfg = LinkConfig::new(100e9, ask_simnet::time::SimDuration::from_micros(1));
/// assert_eq!(cfg.bits_per_sec(), 100e9);
/// ```
#[derive(Debug, Clone)]
pub struct LinkConfig {
    bits_per_sec: f64,
    propagation: SimDuration,
    faults: FaultModel,
    ecn_threshold: Option<SimDuration>,
    /// Maximum queueing delay the transmit queue may hold; frames arriving
    /// beyond it are tail-dropped. `None` = unbounded (ideal) queue.
    queue_limit: Option<SimDuration>,
}

impl LinkConfig {
    /// Creates a lossless link with the given bandwidth and propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is not strictly positive and finite.
    pub fn new(bits_per_sec: f64, propagation: SimDuration) -> Self {
        assert!(
            bits_per_sec.is_finite() && bits_per_sec > 0.0,
            "bandwidth must be positive"
        );
        LinkConfig {
            bits_per_sec,
            propagation,
            faults: FaultModel::reliable(),
            ecn_threshold: None,
            queue_limit: None,
        }
    }

    /// Bounds the transmit queue: a frame that would wait longer than
    /// `limit` is tail-dropped instead of enqueued — how a real switch port
    /// behaves when its buffer fills.
    pub fn with_queue_limit(mut self, limit: SimDuration) -> Self {
        self.queue_limit = Some(limit);
        self
    }

    /// The tail-drop queue bound, if any.
    pub fn queue_limit(&self) -> Option<SimDuration> {
        self.queue_limit
    }

    /// Enables ECN marking: frames whose queueing delay at this link
    /// exceeds `threshold` get the congestion-experienced mark.
    pub fn with_ecn(mut self, threshold: SimDuration) -> Self {
        self.ecn_threshold = Some(threshold);
        self
    }

    /// The ECN marking threshold, if enabled.
    pub fn ecn_threshold(&self) -> Option<SimDuration> {
        self.ecn_threshold
    }

    /// Replaces the fault model (packet loss / duplication / reordering).
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Link bandwidth in bits per second.
    pub fn bits_per_sec(&self) -> f64 {
        self.bits_per_sec
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// The fault model applied to frames on this link.
    pub fn faults(&self) -> &FaultModel {
        &self.faults
    }

    /// Time to clock `bytes` onto the wire at this link's bandwidth.
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bits_per_sec)
    }
}

/// Runtime state of a directed link: FIFO serialization and byte counters.
#[derive(Debug)]
pub(crate) struct LinkState {
    pub(crate) config: LinkConfig,
    /// Earliest time the transmitter is free to start serializing a new frame.
    pub(crate) next_free: SimTime,
    pub(crate) stats: LinkStats,
}

impl LinkState {
    pub(crate) fn new(config: LinkConfig) -> Self {
        LinkState {
            config,
            next_free: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// Computes the arrival time of a frame enqueued at `now`, advancing the
    /// transmitter's busy horizon. Does not apply faults. Returns the
    /// arrival time and whether the frame's queueing delay crossed the ECN
    /// threshold.
    pub(crate) fn schedule(&mut self, now: SimTime, wire_bytes: usize) -> ScheduleOutcome {
        let start = now.max(self.next_free);
        let queue_delay = start.saturating_since(now);
        if let Some(limit) = self.config.queue_limit {
            if queue_delay > limit {
                self.stats.frames_tail_dropped += 1;
                return ScheduleOutcome::TailDropped;
            }
        }
        let done = start + self.config.serialization_delay(wire_bytes);
        self.next_free = done;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += wire_bytes as u64;
        let marked = match self.config.ecn_threshold {
            Some(thr) => queue_delay > thr,
            None => false,
        };
        if marked {
            self.stats.frames_ecn_marked += 1;
        }
        ScheduleOutcome::Enqueued {
            arrival: done + self.config.propagation(),
            ecn: marked,
        }
    }
}

/// Result of handing a frame to a link's transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScheduleOutcome {
    /// The frame was enqueued and will arrive at `arrival`.
    Enqueued {
        /// Delivery time at the receiver.
        arrival: SimTime,
        /// Whether the queueing delay crossed the ECN threshold.
        ecn: bool,
    },
    /// The transmit queue was full; the frame is gone.
    TailDropped,
}

/// Counters accumulated by a directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames handed to the transmitter (before fault injection).
    pub frames_sent: u64,
    /// Wire bytes handed to the transmitter (before fault injection).
    pub bytes_sent: u64,
    /// Frames actually delivered to the receiver.
    pub frames_delivered: u64,
    /// Frames dropped by the fault model.
    pub frames_dropped: u64,
    /// Extra copies injected by the duplication fault.
    pub frames_duplicated: u64,
    /// Frames that received the ECN congestion-experienced mark.
    pub frames_ecn_marked: u64,
    /// Frames tail-dropped by the bounded transmit queue.
    pub frames_tail_dropped: u64,
}

impl LinkStats {
    /// Average throughput over `elapsed`, in bits per second, based on bytes
    /// handed to the transmitter.
    pub fn throughput_bps(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes_sent as f64 * 8.0 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LinkConfig {
        LinkConfig::new(8e9, SimDuration::from_nanos(500)) // 1 byte/ns
    }

    #[test]
    fn serialization_delay_matches_bandwidth() {
        let c = cfg();
        assert_eq!(c.serialization_delay(1000).as_nanos(), 1000);
    }

    #[test]
    fn fifo_serialization_queues_back_to_back() {
        let mut link = LinkState::new(cfg());
        let t0 = SimTime::ZERO;
        // Two 1000-byte frames enqueued at t=0: second waits for the first.
        let ScheduleOutcome::Enqueued { arrival: a1, .. } = link.schedule(t0, 1000) else {
            panic!("enqueued")
        };
        let ScheduleOutcome::Enqueued { arrival: a2, .. } = link.schedule(t0, 1000) else {
            panic!("enqueued")
        };
        assert_eq!(a1.as_nanos(), 1000 + 500);
        assert_eq!(a2.as_nanos(), 2000 + 500);
        assert_eq!(link.stats.frames_sent, 2);
        assert_eq!(link.stats.bytes_sent, 2000);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut link = LinkState::new(cfg());
        link.schedule(SimTime::ZERO, 100);
        // After the link drains, a later frame starts at its enqueue time.
        let ScheduleOutcome::Enqueued { arrival, .. } =
            link.schedule(SimTime::from_nanos(10_000), 100)
        else {
            panic!("enqueued")
        };
        assert_eq!(arrival.as_nanos(), 10_000 + 100 + 500);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkConfig::new(0.0, SimDuration::ZERO);
    }

    #[test]
    fn tail_drop_when_queue_exceeds_limit() {
        let mut link = LinkState::new(cfg().with_queue_limit(SimDuration::from_nanos(1500)));
        let t0 = SimTime::ZERO;
        // Three 1000-byte frames (1 µs each at 8 Gbps): the third would
        // wait 2 µs > 1.5 µs limit.
        assert!(matches!(
            link.schedule(t0, 1000),
            ScheduleOutcome::Enqueued { .. }
        ));
        assert!(matches!(
            link.schedule(t0, 1000),
            ScheduleOutcome::Enqueued { .. }
        ));
        assert_eq!(link.schedule(t0, 1000), ScheduleOutcome::TailDropped);
        assert_eq!(link.stats.frames_tail_dropped, 1);
        assert_eq!(
            link.stats.frames_sent, 2,
            "dropped frames never count as sent"
        );
    }

    #[test]
    fn throughput_accounting() {
        let mut link = LinkState::new(cfg());
        link.schedule(SimTime::ZERO, 1_000_000);
        let bps = link.stats.throughput_bps(SimDuration::from_millis(1));
        assert!((bps - 8e9).abs() / 8e9 < 1e-9, "got {bps}");
    }
}
