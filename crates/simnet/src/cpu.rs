//! Host CPU cost model.
//!
//! The paper's evaluation reports CPU utilization alongside throughput
//! (Figures 3 and 7). [`CpuPool`] models a host with a fixed number of cores:
//! work items occupy a core for a computed span of simulated time, and the
//! pool reports both when the work completes and how busy the host was.
//!
//! The model is intentionally simple — greedy earliest-available-core
//! scheduling with no preemption — which matches how the paper's daemon pins
//! one data channel per core.

use crate::time::{SimDuration, SimTime};

/// A pool of identical cores with earliest-available greedy scheduling.
///
/// # Examples
///
/// ```
/// use ask_simnet::cpu::CpuPool;
/// use ask_simnet::time::{SimDuration, SimTime};
///
/// let mut pool = CpuPool::new(2);
/// let d = SimDuration::from_micros(10);
/// // Two jobs run in parallel, the third queues behind the first.
/// assert_eq!(pool.run(SimTime::ZERO, d).as_nanos(), 10_000);
/// assert_eq!(pool.run(SimTime::ZERO, d).as_nanos(), 10_000);
/// assert_eq!(pool.run(SimTime::ZERO, d).as_nanos(), 20_000);
/// ```
#[derive(Debug, Clone)]
pub struct CpuPool {
    /// Time each core becomes free.
    cores: Vec<SimTime>,
    busy_total: SimDuration,
}

impl CpuPool {
    /// Creates a pool of `cores` identical cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "a host needs at least one core");
        CpuPool {
            cores: vec![SimTime::ZERO; cores],
            busy_total: SimDuration::ZERO,
        }
    }

    /// Number of cores in the pool.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Schedules a job of length `work` that becomes runnable at `ready`.
    /// Returns the completion time.
    pub fn run(&mut self, ready: SimTime, work: SimDuration) -> SimTime {
        let core = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, free_at)| **free_at)
            .map(|(ix, _)| ix)
            .expect("pool is non-empty");
        let start = ready.max(self.cores[core]);
        let done = start + work;
        self.cores[core] = done;
        self.busy_total += work;
        done
    }

    /// Total core-busy time accumulated so far.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Average utilization over `[0, horizon]` across all cores, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        let capacity = horizon.as_secs_f64() * self.cores.len() as f64;
        (self.busy_total.as_secs_f64() / capacity).min(1.0)
    }

    /// The earliest time any core is free.
    pub fn earliest_free(&self) -> SimTime {
        *self.cores.iter().min().expect("pool is non-empty")
    }
}

/// Converts a per-item processing rate (items per second per core) into the
/// span one core needs for `items` items.
///
/// # Examples
///
/// ```
/// use ask_simnet::cpu::work_for_items;
///
/// // 10 M items at 1 M items/s/core is 10 core-seconds.
/// let d = work_for_items(10_000_000, 1_000_000.0);
/// assert_eq!(d.as_nanos(), 10_000_000_000);
/// ```
///
/// # Panics
///
/// Panics if `rate_per_sec` is not strictly positive.
pub fn work_for_items(items: u64, rate_per_sec: f64) -> SimDuration {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    SimDuration::from_secs_f64(items as f64 / rate_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_packs_parallel_then_queues() {
        let mut pool = CpuPool::new(4);
        let w = SimDuration::from_secs(1);
        let mut finishes: Vec<u64> = (0..8)
            .map(|_| pool.run(SimTime::ZERO, w).as_nanos())
            .collect();
        finishes.sort_unstable();
        assert_eq!(
            finishes,
            vec![1, 1, 1, 1, 2, 2, 2, 2]
                .into_iter()
                .map(|s: u64| s * 1_000_000_000)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn utilization_counts_busy_share() {
        let mut pool = CpuPool::new(2);
        pool.run(SimTime::ZERO, SimDuration::from_secs(1));
        // 1 busy core-second out of 2 cores × 2 s = 0.25.
        let u = pool.utilization(SimTime::from_nanos(2_000_000_000));
        assert!((u - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ready_time_is_respected() {
        let mut pool = CpuPool::new(1);
        let done = pool.run(SimTime::from_nanos(500), SimDuration::from_nanos(10));
        assert_eq!(done.as_nanos(), 510);
    }

    #[test]
    fn busy_total_accumulates() {
        let mut pool = CpuPool::new(3);
        pool.run(SimTime::ZERO, SimDuration::from_millis(5));
        pool.run(SimTime::ZERO, SimDuration::from_millis(7));
        assert_eq!(pool.busy_total(), SimDuration::from_millis(12));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CpuPool::new(0);
    }

    #[test]
    fn work_for_items_scales() {
        assert_eq!(work_for_items(0, 100.0), SimDuration::ZERO);
        assert_eq!(work_for_items(200, 100.0), SimDuration::from_secs(2));
    }
}
