//! # ask-simnet — deterministic discrete-event network simulation
//!
//! This crate is the network substrate of the [ASK reproduction]: a small,
//! deterministic discrete-event simulator with just enough fidelity to
//! reproduce the paper's evaluation — FIFO link serialization at a configured
//! bandwidth, propagation delay, per-frame framing overhead, probabilistic
//! loss / duplication / reordering, per-node timers, and a CPU-pool cost
//! model for host-side work.
//!
//! Determinism: every run is a pure function of the topology and the seed
//! passed to [`network::NetworkBuilder::new`].
//!
//! [ASK reproduction]: https://doi.org/10.1145/3575693.3575708
//!
//! ## Example
//!
//! ```
//! use ask_simnet::prelude::*;
//! use bytes::Bytes;
//!
//! /// A node that counts every frame it receives.
//! struct Sink { frames: usize }
//! impl Node for Sink {
//!     fn on_frame(&mut self, _from: NodeId, _frame: Frame, _ctx: &mut Context<'_>) {
//!         self.frames += 1;
//!     }
//! }
//!
//! /// A node that fires one frame at its peer on start.
//! struct Source { peer: NodeId }
//! impl Node for Source {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         let peer = self.peer;
//!         ctx.send(peer, Frame::new(Bytes::from_static(b"hi"))).expect("linked");
//!     }
//!     fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {}
//! }
//!
//! let mut b = NetworkBuilder::new(42);
//! let sink = b.add_node(Sink { frames: 0 });
//! let src = b.add_node(Source { peer: sink });
//! b.connect(src, sink, LinkConfig::new(100e9, SimDuration::from_micros(1)));
//! let mut net = b.build();
//! net.run_to_idle();
//! assert_eq!(net.node::<Sink>(sink).frames, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench_api;
pub mod cpu;
mod event;
pub mod faults;
pub mod frame;
pub mod link;
pub mod network;
pub mod time;

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    /// Records the order in which tagged frames arrive.
    struct Recorder {
        seen: Vec<u64>,
    }
    impl Node for Recorder {
        fn on_frame(&mut self, _: NodeId, frame: Frame, _: &mut Context<'_>) {
            let mut b = [0u8; 8];
            b.copy_from_slice(&frame.payload()[..8]);
            self.seen.push(u64::from_be_bytes(b));
        }
    }

    /// Emits tagged frames at given delays.
    struct Emitter {
        peer: NodeId,
        sends: Vec<(u64, usize)>, // (delay ns, wire size)
    }
    impl Node for Emitter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for (i, &(delay, _)) in self.sends.iter().enumerate() {
                ctx.set_timer(SimDuration::from_nanos(delay), i as u64);
            }
        }
        fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
            let (_, wire) = self.sends[token as usize];
            let frame =
                Frame::with_wire_bytes(Bytes::copy_from_slice(&token.to_be_bytes()), wire.max(8));
            let _ = ctx.send(self.peer, frame);
        }
    }

    proptest! {
        /// Without faults, a link never reorders: frames arrive in the
        /// order they were handed to the transmitter, regardless of sizes.
        #[test]
        fn fifo_links_never_reorder(
            sends in proptest::collection::vec((0u64..10_000, 8usize..2000), 1..40),
            bw in 1u64..=100,
        ) {
            let mut b = NetworkBuilder::new(1);
            let sink = b.add_node(Recorder { seen: vec![] });
            let src = b.add_node(Emitter { peer: sink, sends: sends.clone() });
            b.connect(src, sink, LinkConfig::new(bw as f64 * 1e9, SimDuration::from_micros(1)));
            let mut net = b.build();
            net.run_to_idle();

            // Expected order: by send time, ties by timer insertion order.
            let mut order: Vec<(u64, u64)> = sends
                .iter()
                .enumerate()
                .map(|(i, &(delay, _))| (delay, i as u64))
                .collect();
            order.sort();
            let expected: Vec<u64> = order.into_iter().map(|(_, i)| i).collect();
            prop_assert_eq!(&net.node::<Recorder>(sink).seen, &expected);
        }

        /// Byte accounting is exact: the link's sent-byte counter equals
        /// the sum of wire sizes.
        #[test]
        fn link_byte_accounting_is_exact(
            sends in proptest::collection::vec((0u64..1_000, 8usize..3000), 1..30),
        ) {
            let mut b = NetworkBuilder::new(1);
            let sink = b.add_node(Recorder { seen: vec![] });
            let src = b.add_node(Emitter { peer: sink, sends: sends.clone() });
            b.connect(src, sink, LinkConfig::new(1e9, SimDuration::ZERO));
            let mut net = b.build();
            net.run_to_idle();
            let total: u64 = sends.iter().map(|&(_, w)| w.max(8) as u64).sum();
            prop_assert_eq!(net.link_stats(src, sink).bytes_sent, total);
            prop_assert_eq!(net.link_stats(src, sink).frames_delivered, sends.len() as u64);
        }
    }

    /// A leaf that fires `count` frames at the hub on a timer cadence and
    /// counts the echoes it gets back.
    struct Pinger {
        hub: NodeId,
        count: u64,
        gap_ns: u64,
        got: u64,
    }
    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.count {
                ctx.set_timer(SimDuration::from_nanos(1 + i * self.gap_ns), i);
            }
        }
        fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {
            self.got += 1;
        }
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
            let hub = self.hub;
            let _ = ctx.send(hub, Frame::new(Bytes::copy_from_slice(&token.to_be_bytes())));
        }
    }

    /// A hub that echoes every frame back after a short in-window delay —
    /// the staged-timer path the parallel executor must replay exactly.
    struct EchoHub {
        delay_ns: u64,
        echoes: u64,
    }
    impl Node for EchoHub {
        fn on_frame(&mut self, from: NodeId, _: Frame, ctx: &mut Context<'_>) {
            ctx.set_timer(
                SimDuration::from_nanos(self.delay_ns),
                from.index() as u64,
            );
        }
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
            self.echoes += 1;
            let to = NodeId::from_index(token as usize);
            let _ = ctx.send(to, Frame::new(Bytes::from_static(b"echo")));
        }
    }

    /// Everything observable about one run of the random star scenario.
    #[derive(Debug, PartialEq)]
    struct Observed {
        trace: Vec<FrameTraceEntry>,
        events: u64,
        now: SimTime,
        echoes: u64,
        got: Vec<u64>,
    }

    /// One random loss×reorder×dup×crash scenario on a star topology.
    #[derive(Debug, Clone)]
    struct LaneScenario {
        leaves: usize,
        count: u64,
        gap_ns: u64,
        echo_delay_ns: u64,
        loss: f64,
        dup: f64,
        reorder: f64,
        jitter_ns: u64,
        crash: Option<(u64, u64)>, // hub (down_at ns, outage ns)
        seed: u64,
        fault_seed: u64,
    }

    fn lane_scenario() -> impl Strategy<Value = LaneScenario> {
        (
            (2usize..5, 1u64..12, 0u64..2_500, 1u64..1_500),
            (0.0f64..0.3, 0.0f64..0.2, 0.0f64..0.3, 0u64..2_000),
            proptest::option::of((500u64..8_000, 300u64..4_000)),
            (1u64..u64::MAX, 1u64..u64::MAX),
        )
            .prop_map(
                |(
                    (leaves, count, gap_ns, echo_delay_ns),
                    (loss, dup, reorder, jitter_ns),
                    crash,
                    (seed, fault_seed),
                )| LaneScenario {
                    leaves,
                    count,
                    gap_ns,
                    echo_delay_ns,
                    loss,
                    dup,
                    reorder,
                    jitter_ns,
                    crash,
                    seed,
                    fault_seed,
                },
            )
    }

    fn run_lane_scenario(sc: &LaneScenario, lanes: usize) -> Observed {
        let mut b = NetworkBuilder::new(sc.seed);
        b.set_fault_seed(sc.fault_seed);
        b.set_lanes(lanes);
        let hub = b.add_node(EchoHub {
            delay_ns: sc.echo_delay_ns,
            echoes: 0,
        });
        let faults = FaultModel::reliable()
            .with_loss(sc.loss)
            .with_duplication(sc.dup)
            .with_reordering(
                sc.reorder,
                SimDuration::from_nanos(sc.jitter_ns),
            );
        let link = LinkConfig::new(100e9, SimDuration::from_micros(1));
        let leaves: Vec<NodeId> = (0..sc.leaves)
            .map(|_| {
                let leaf = b.add_node(Pinger {
                    hub,
                    count: sc.count,
                    gap_ns: sc.gap_ns,
                    got: 0,
                });
                b.connect(leaf, hub, link.clone().with_faults(faults.clone()));
                leaf
            })
            .collect();
        let mut net = b.build();
        net.enable_frame_trace(4096);
        if let Some((down_at, outage)) = sc.crash {
            net.schedule_node_down(hub, SimTime::from_nanos(down_at));
            net.schedule_node_up(hub, SimTime::from_nanos(down_at + outage));
        }
        net.run_to_idle();
        Observed {
            trace: net.frame_trace().copied().collect(),
            events: net.events_processed(),
            now: net.now(),
            echoes: net.node::<EchoHub>(hub).echoes,
            got: leaves
                .iter()
                .map(|&l| net.node::<Pinger>(l).got)
                .collect(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// The tentpole's determinism contract: under random loss ×
        /// reorder × duplication × crash, parallel lanes ∈ {2, 4} produce
        /// a full frame trace — and every counter and clock — byte-identical
        /// to sequential execution.
        #[test]
        fn parallel_lanes_are_byte_identical_to_sequential(sc in lane_scenario()) {
            let sequential = run_lane_scenario(&sc, 1);
            for lanes in [2usize, 4] {
                let parallel = run_lane_scenario(&sc, lanes);
                prop_assert_eq!(&sequential, &parallel, "lanes={}", lanes);
            }
        }
    }
}

/// Convenient glob import of the types almost every user needs.
pub mod prelude {
    pub use crate::faults::FaultModel;
    pub use crate::frame::{Frame, NodeId};
    pub use crate::link::{LinkConfig, LinkStats};
    pub use crate::network::{
        Context, FrameTraceEntry, Network, NetworkBuilder, Node, SendError, StopReason, TraceFate,
    };
    pub use crate::time::{SimDuration, SimTime};
}
