//! # ask-simnet — deterministic discrete-event network simulation
//!
//! This crate is the network substrate of the [ASK reproduction]: a small,
//! deterministic discrete-event simulator with just enough fidelity to
//! reproduce the paper's evaluation — FIFO link serialization at a configured
//! bandwidth, propagation delay, per-frame framing overhead, probabilistic
//! loss / duplication / reordering, per-node timers, and a CPU-pool cost
//! model for host-side work.
//!
//! Determinism: every run is a pure function of the topology and the seed
//! passed to [`network::NetworkBuilder::new`].
//!
//! [ASK reproduction]: https://doi.org/10.1145/3575693.3575708
//!
//! ## Example
//!
//! ```
//! use ask_simnet::prelude::*;
//! use bytes::Bytes;
//!
//! /// A node that counts every frame it receives.
//! struct Sink { frames: usize }
//! impl Node for Sink {
//!     fn on_frame(&mut self, _from: NodeId, _frame: Frame, _ctx: &mut Context<'_>) {
//!         self.frames += 1;
//!     }
//! }
//!
//! /// A node that fires one frame at its peer on start.
//! struct Source { peer: NodeId }
//! impl Node for Source {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         let peer = self.peer;
//!         ctx.send(peer, Frame::new(Bytes::from_static(b"hi"))).expect("linked");
//!     }
//!     fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {}
//! }
//!
//! let mut b = NetworkBuilder::new(42);
//! let sink = b.add_node(Sink { frames: 0 });
//! let src = b.add_node(Source { peer: sink });
//! b.connect(src, sink, LinkConfig::new(100e9, SimDuration::from_micros(1)));
//! let mut net = b.build();
//! net.run_to_idle();
//! assert_eq!(net.node::<Sink>(sink).frames, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench_api;
pub mod cpu;
mod event;
pub mod faults;
pub mod frame;
pub mod link;
pub mod network;
pub mod time;

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    /// Records the order in which tagged frames arrive.
    struct Recorder {
        seen: Vec<u64>,
    }
    impl Node for Recorder {
        fn on_frame(&mut self, _: NodeId, frame: Frame, _: &mut Context<'_>) {
            let mut b = [0u8; 8];
            b.copy_from_slice(&frame.payload()[..8]);
            self.seen.push(u64::from_be_bytes(b));
        }
    }

    /// Emits tagged frames at given delays.
    struct Emitter {
        peer: NodeId,
        sends: Vec<(u64, usize)>, // (delay ns, wire size)
    }
    impl Node for Emitter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for (i, &(delay, _)) in self.sends.iter().enumerate() {
                ctx.set_timer(SimDuration::from_nanos(delay), i as u64);
            }
        }
        fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
            let (_, wire) = self.sends[token as usize];
            let frame =
                Frame::with_wire_bytes(Bytes::copy_from_slice(&token.to_be_bytes()), wire.max(8));
            let _ = ctx.send(self.peer, frame);
        }
    }

    proptest! {
        /// Without faults, a link never reorders: frames arrive in the
        /// order they were handed to the transmitter, regardless of sizes.
        #[test]
        fn fifo_links_never_reorder(
            sends in proptest::collection::vec((0u64..10_000, 8usize..2000), 1..40),
            bw in 1u64..=100,
        ) {
            let mut b = NetworkBuilder::new(1);
            let sink = b.add_node(Recorder { seen: vec![] });
            let src = b.add_node(Emitter { peer: sink, sends: sends.clone() });
            b.connect(src, sink, LinkConfig::new(bw as f64 * 1e9, SimDuration::from_micros(1)));
            let mut net = b.build();
            net.run_to_idle();

            // Expected order: by send time, ties by timer insertion order.
            let mut order: Vec<(u64, u64)> = sends
                .iter()
                .enumerate()
                .map(|(i, &(delay, _))| (delay, i as u64))
                .collect();
            order.sort();
            let expected: Vec<u64> = order.into_iter().map(|(_, i)| i).collect();
            prop_assert_eq!(&net.node::<Recorder>(sink).seen, &expected);
        }

        /// Byte accounting is exact: the link's sent-byte counter equals
        /// the sum of wire sizes.
        #[test]
        fn link_byte_accounting_is_exact(
            sends in proptest::collection::vec((0u64..1_000, 8usize..3000), 1..30),
        ) {
            let mut b = NetworkBuilder::new(1);
            let sink = b.add_node(Recorder { seen: vec![] });
            let src = b.add_node(Emitter { peer: sink, sends: sends.clone() });
            b.connect(src, sink, LinkConfig::new(1e9, SimDuration::ZERO));
            let mut net = b.build();
            net.run_to_idle();
            let total: u64 = sends.iter().map(|&(_, w)| w.max(8) as u64).sum();
            prop_assert_eq!(net.link_stats(src, sink).bytes_sent, total);
            prop_assert_eq!(net.link_stats(src, sink).frames_delivered, sends.len() as u64);
        }
    }
}

/// Convenient glob import of the types almost every user needs.
pub mod prelude {
    pub use crate::faults::FaultModel;
    pub use crate::frame::{Frame, NodeId};
    pub use crate::link::{LinkConfig, LinkStats};
    pub use crate::network::{
        Context, FrameTraceEntry, Network, NetworkBuilder, Node, SendError, StopReason, TraceFate,
    };
    pub use crate::time::{SimDuration, SimTime};
}
