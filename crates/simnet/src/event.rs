//! The event queue driving the simulation.

use crate::frame::{Frame, NodeId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A frame arrives at `to`, having been sent by `from`.
    Deliver {
        from: NodeId,
        to: NodeId,
        frame: Frame,
    },
    /// A timer set by `node` fires with an opaque `token`.
    Timer { node: NodeId, token: u64 },
}

#[derive(Debug)]
pub(crate) struct ScheduledEvent {
    pub(crate) at: SimTime,
    /// Tie-breaker preserving FIFO order among same-instant events.
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we need earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Earliest-first queue of scheduled events with stable FIFO tie-breaking.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    pub(crate) fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, kind });
    }

    pub(crate) fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId::from_index(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), timer(0, 3));
        q.push(SimTime::from_nanos(10), timer(0, 1));
        q.push(SimTime::from_nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(SimTime::from_nanos(5), timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(
            SimTime::ZERO,
            EventKind::Deliver {
                from: NodeId::from_index(0),
                to: NodeId::from_index(1),
                frame: Frame::new(Bytes::new()),
            },
        );
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
