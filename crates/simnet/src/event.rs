//! The event queue driving the simulation: a timer wheel (calendar queue)
//! with an overflow heap for far-future timers.
//!
//! The queue is the hottest structure in the simulator — every frame
//! delivery and every protocol timer passes through it — so it is built
//! around the actual event-time distribution: almost all events land within
//! a few microseconds of *now* (link serialization + propagation), with a
//! thin tail of retransmit/fetch timers ~100 µs out. A `BinaryHeap` pays
//! `O(log n)` pointer-chasing per operation for that workload; the wheel
//! pays `O(1)` per push and an amortized near-`O(1)` bitmap scan per pop.
//!
//! Layout: time is quantized into `2^TICK_SHIFT`-ns ticks; the wheel keeps
//! [`WHEEL_SLOTS`] consecutive ticks as unsorted per-tick buckets guarded by
//! an occupancy bitmap. With `TICK_SHIFT = 8` and 4096 slots the window
//! spans ~1.05 ms of simulated time — wide enough for serialization,
//! propagation, and the paper's 100 µs retransmission timeout. Events
//! beyond the window wait in an overflow `BinaryHeap` and migrate into the
//! wheel as the window slides (the window only ever extends when `base_tick`
//! advances, and every advance drains the newly covered overflow prefix, so
//! a wheel event can never be ordered after a pending overflow event).
//!
//! FIFO tie-break: each push is stamped with a monotonically increasing
//! `seq`, exactly as the old heap did. A bucket is sorted by `(at, seq)`
//! when its tick becomes *current*, and same-tick pushes that arrive while
//! the current bucket drains are placed by binary search on `(at, seq)` —
//! their fresh `seq` is larger than every stamp already in the bucket, so
//! the insert degenerates to "after all equal-or-earlier events", which is
//! precisely the heap's pop order. Pop order is therefore byte-identical to
//! the old `BinaryHeap` implementation.
//!
//! Steady-state allocation: buckets and the drain buffer keep their
//! capacity across reuse (the slot array is a free-list of recycled event
//! storage), so once warmed up, push/pop allocate nothing.

use crate::frame::{Frame, NodeId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// A frame arrives at `to`, having been sent by `from`.
    Deliver {
        from: NodeId,
        to: NodeId,
        frame: Frame,
    },
    /// A timer set by `node` fires with an opaque `token`.
    Timer { node: NodeId, token: u64 },
    /// Scheduled fault: `node` crashes and stops processing events.
    NodeDown { node: NodeId },
    /// Scheduled fault: `node` restarts and resumes processing events.
    NodeUp { node: NodeId },
}

#[derive(Debug)]
pub(crate) struct ScheduledEvent {
    pub(crate) at: SimTime,
    /// Tie-breaker preserving FIFO order among same-instant events.
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we need earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Wheel tick granularity: `2^TICK_SHIFT` ns (256 ns). Fine enough that a
/// bucket holds only a handful of same-burst events; coarse enough that the
/// window covers the protocol's timer horizon.
const TICK_SHIFT: u32 = 8;
/// Slots in the wheel window (power of two for mask arithmetic).
const WHEEL_SLOTS: usize = 1 << 12;
const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;
/// Words in the occupancy bitmap.
const WORDS: usize = WHEEL_SLOTS / 64;

/// Earliest-first queue of scheduled events with stable FIFO tie-breaking.
#[derive(Debug)]
pub(crate) struct EventQueue {
    /// Events of the tick currently being drained, sorted by `(at, seq)`.
    current: VecDeque<ScheduledEvent>,
    /// Tick the `current` buffer was loaded from.
    current_tick: u64,
    /// Per-tick unsorted buckets for ticks in `[base_tick, base_tick + N)`.
    slots: Box<[Vec<ScheduledEvent>]>,
    /// One bit per slot: does the bucket hold any events?
    occupancy: [u64; WORDS],
    /// Events currently stored in wheel buckets.
    wheel_len: usize,
    /// Every tick before this one has been fully drained.
    base_tick: u64,
    /// Far-future events, beyond the wheel window.
    overflow: BinaryHeap<ScheduledEvent>,
    len: usize,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            current: VecDeque::new(),
            current_tick: 0,
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; WORDS],
            wheel_len: 0,
            base_tick: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }

    fn tick_of(at: SimTime) -> u64 {
        at.as_nanos() >> TICK_SHIFT
    }

    /// Enqueues an event and returns the FIFO `seq` stamp it was assigned.
    pub(crate) fn push(&mut self, at: SimTime, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let ev = ScheduledEvent { at, seq, kind };
        let tick = Self::tick_of(at);
        if !self.current.is_empty() && tick <= self.current_tick {
            // The event's tick is being drained right now: place it by
            // `(at, seq)` among the not-yet-popped events. Its stamp is the
            // largest so far, so it sorts after every same-instant event —
            // the heap's FIFO tie-break, preserved exactly.
            let pos = self
                .current
                .partition_point(|e| (e.at, e.seq) < (at, seq));
            self.current.insert(pos, ev);
            return seq;
        }
        // `at` is never before the last popped instant in simulation use;
        // the `max` clamps defensive out-of-order pushes into the earliest
        // still-open bucket (the bucket sort restores exact order).
        let tick = tick.max(self.base_tick);
        if tick - self.base_tick < WHEEL_SLOTS as u64 {
            self.bucket_push(tick, ev);
        } else {
            self.overflow.push(ev);
        }
        seq
    }

    /// Consumes one `seq` stamp without storing an event. The parallel
    /// replay uses this to reproduce the exact stamp a sequential `push`
    /// would have assigned for events that were already executed in a lane.
    pub(crate) fn bump_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn bucket_push(&mut self, tick: u64, ev: ScheduledEvent) {
        let slot = (tick & SLOT_MASK) as usize;
        self.occupancy[slot / 64] |= 1 << (slot % 64);
        self.slots[slot].push(ev);
        self.wheel_len += 1;
    }

    /// Moves every overflow event now covered by `[base_tick, base_tick+N)`
    /// into its wheel bucket. Called on every window advance, which keeps
    /// the invariant that overflow events are strictly later than anything
    /// in the wheel.
    fn migrate_overflow(&mut self) {
        while let Some(top) = self.overflow.peek() {
            let tick = Self::tick_of(top.at);
            if tick - self.base_tick >= WHEEL_SLOTS as u64 {
                break;
            }
            let ev = self.overflow.pop().expect("peeked");
            self.bucket_push(tick, ev);
        }
    }

    /// Earliest occupied tick in the window; caller guarantees the wheel is
    /// non-empty. A masked bitmap scan starting at `base_tick`'s slot.
    fn next_occupied_tick(&self) -> u64 {
        debug_assert!(self.wheel_len > 0);
        let start = (self.base_tick & SLOT_MASK) as usize;
        let mut word_ix = start / 64;
        let mut word = self.occupancy[word_ix] & (!0u64 << (start % 64));
        let mut scanned = 0usize;
        loop {
            if word != 0 {
                let slot = word_ix * 64 + word.trailing_zeros() as usize;
                let dist = (slot + WHEEL_SLOTS - start) & SLOT_MASK as usize;
                return self.base_tick + dist as u64;
            }
            word_ix = (word_ix + 1) % WORDS;
            word = self.occupancy[word_ix];
            scanned += 64;
            debug_assert!(scanned <= WHEEL_SLOTS, "occupancy bitmap corrupt");
        }
    }

    /// Loads bucket `tick` into the sorted drain buffer.
    fn load_bucket(&mut self, tick: u64) {
        debug_assert!(self.current.is_empty());
        let slot = (tick & SLOT_MASK) as usize;
        self.occupancy[slot / 64] &= !(1 << (slot % 64));
        let bucket = &mut self.slots[slot];
        self.wheel_len -= bucket.len();
        self.current.extend(bucket.drain(..));
        self.current
            .make_contiguous()
            .sort_unstable_by_key(|e| (e.at, e.seq));
        self.current_tick = tick;
    }

    /// Ensures the sorted drain buffer holds the earliest pending bucket.
    /// A no-op when the buffer already has events or the queue is empty.
    ///
    /// Loading a bucket early (without popping) is semantically transparent:
    /// a same-tick push that arrives while the buffer is loaded is placed by
    /// `(at, seq)` binary search, which is exactly where the bucket sort
    /// would have put it.
    fn fill_current(&mut self) {
        if !self.current.is_empty() || self.len == 0 {
            return;
        }
        if self.wheel_len == 0 {
            // Only far-future events left: jump the window to the earliest.
            let first = self.overflow.peek().expect("len > 0");
            self.base_tick = Self::tick_of(first.at);
            self.migrate_overflow();
        }
        let tick = self.next_occupied_tick();
        if tick > self.base_tick {
            self.base_tick = tick;
            self.migrate_overflow();
        }
        self.load_bucket(tick);
    }

    pub(crate) fn pop(&mut self) -> Option<ScheduledEvent> {
        self.fill_current();
        let ev = self.current.pop_front()?;
        self.len -= 1;
        Some(ev)
    }

    /// Peeks at the next event without removing it. Used by the windowed
    /// executor to decide where the current safe window ends.
    pub(crate) fn peek(&mut self) -> Option<&ScheduledEvent> {
        self.fill_current();
        self.current.front()
    }

    /// Pops the next event only if it is a [`EventKind::Deliver`] addressed
    /// to `to` at exactly instant `at` — the burst-extension probe used by
    /// [`Network::run`](crate::network::Network::run) to drain same-instant
    /// deliveries to one node as a single dispatch.
    ///
    /// Safety of the burst rests on two facts: (a) only *consecutive* events
    /// with the same `(at)` and destination are taken, so global `(at, seq)`
    /// FIFO order is untouched; (b) no node code runs between the probe and
    /// the pop, so no push can land between burst members.
    pub(crate) fn pop_deliver_if(&mut self, at: SimTime, to: NodeId) -> Option<ScheduledEvent> {
        self.fill_current();
        match self.current.front() {
            Some(ev) if ev.at == at => match ev.kind {
                EventKind::Deliver { to: t, .. } if t == to => {
                    self.len -= 1;
                    self.current.pop_front()
                }
                _ => None,
            },
            _ => None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId::from_index(node),
            token,
        }
    }

    fn drain_tokens(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), timer(0, 3));
        q.push(SimTime::from_nanos(10), timer(0, 1));
        q.push(SimTime::from_nanos(20), timer(0, 2));
        assert_eq!(drain_tokens(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(SimTime::from_nanos(5), timer(0, token));
        }
        assert_eq!(drain_tokens(&mut q), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ten_thousand_same_instant_events_drain_fifo() {
        // Determinism regression for the wheel swap: a single bucket far
        // larger than any burst the simulator produces must still preserve
        // the exact push order.
        let mut q = EventQueue::new();
        let at = SimTime::from_nanos(123_456_789);
        for token in 0..10_000 {
            q.push(at, timer(0, token));
        }
        assert_eq!(q.len(), 10_000);
        assert_eq!(drain_tokens(&mut q), (0..10_000).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(
            SimTime::ZERO,
            EventKind::Deliver {
                from: NodeId::from_index(0),
                to: NodeId::from_index(1),
                frame: Frame::new(Bytes::new()),
            },
        );
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_route_through_overflow_in_order() {
        let mut q = EventQueue::new();
        let window_ns = (WHEEL_SLOTS as u64) << TICK_SHIFT;
        // Far beyond the window (overflow), inside the window (wheel), and
        // a same-tick pair, pushed out of order.
        q.push(SimTime::from_nanos(10 * window_ns), timer(0, 4));
        q.push(SimTime::from_nanos(3), timer(0, 1));
        q.push(SimTime::from_nanos(10 * window_ns + 1), timer(0, 5));
        q.push(SimTime::from_nanos(window_ns / 2), timer(0, 2));
        q.push(SimTime::from_nanos(window_ns / 2), timer(0, 3));
        // A second cluster even further out, crossing another window.
        q.push(SimTime::from_nanos(25 * window_ns), timer(0, 6));
        assert_eq!(drain_tokens(&mut q), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn pushes_while_draining_current_bucket_keep_order() {
        let mut q = EventQueue::new();
        let at = SimTime::from_nanos(1_000);
        q.push(at, timer(0, 0));
        q.push(at, timer(0, 1));
        let first = q.pop().expect("event");
        assert!(matches!(first.kind, EventKind::Timer { token: 0, .. }));
        // Same instant as the bucket being drained: must pop after token 1
        // (FIFO among same-instant events), before anything later.
        q.push(at, timer(0, 2));
        q.push(at + crate::time::SimDuration::from_nanos(50), timer(0, 3));
        assert_eq!(drain_tokens(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn matches_reference_heap_on_mixed_workload() {
        // Model check: the wheel's pop sequence must be identical to a
        // plain sorted-by-(at, seq) reference on a workload shaped like the
        // simulator's (bursts now, timers ~100 µs out, rare far timers),
        // including interleaved pushes and pops.
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (at, seq)
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let mut pending = 0usize;
        let mut seq = 0u64;
        let mut now = 0u64;
        // Deterministic pseudo-random stream (no external RNG needed).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5_000 {
            let r = rand();
            if r % 100 < 60 || pending == 0 {
                let delta = match r % 20 {
                    0..=13 => r % 3_000,            // near-future burst
                    14..=18 => 100_000 + r % 5_000, // retransmit horizon
                    _ => 2_000_000 + r % 500_000,   // far beyond the window
                };
                let at = now + delta;
                q.push(SimTime::from_nanos(at), timer(0, seq));
                reference.push((at, seq));
                pending += 1;
                seq += 1;
            } else {
                let ev = q.pop().expect("pending > 0");
                pending -= 1;
                now = ev.at.as_nanos();
                popped.push((ev.at.as_nanos(), ev.seq));
            }
        }
        while let Some(ev) = q.pop() {
            popped.push((ev.at.as_nanos(), ev.seq));
        }
        reference.sort_unstable();
        // Interleaved pops must each have been the minimum of what was
        // pending; the full pop sequence sorted equals the reference, and
        // the sequence itself must be non-decreasing in (at, seq).
        assert!(popped.windows(2).all(|w| w[0] < w[1]));
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, reference);
        assert_eq!(popped, sorted, "pop order is globally sorted");
    }
}
