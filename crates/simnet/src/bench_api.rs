//! Benchmark-only facade over the internal [`EventQueue`].
//!
//! The queue is deliberately `pub(crate)` — simulation users schedule work
//! through [`crate::network::Context`], never by touching the scheduler
//! directly. Criterion benches live in a separate crate, though, and need
//! to drive push/pop in isolation to measure the timer wheel against its
//! event-time distribution. This thin wrapper exposes exactly that: timer
//! pushes at absolute nanosecond instants and pops observed as
//! `(at_nanos, seq)` pairs. It adds no behavior of its own, so benching
//! the wrapper is benching the queue.
//!
//! [`EventQueue`]: crate::event

use crate::event::{EventKind, EventQueue};
use crate::frame::{Frame, NodeId};
use crate::time::SimTime;
use bytes::Bytes;

/// An event queue handle for benchmarks: schedules opaque timer events.
#[derive(Debug, Default)]
pub struct BenchEventQueue(EventQueue);

impl BenchEventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BenchEventQueue(EventQueue::new())
    }

    /// Schedules a timer event at the absolute instant `at_nanos`.
    pub fn push_timer(&mut self, at_nanos: u64, token: u64) {
        self.0.push(
            SimTime::from_nanos(at_nanos),
            EventKind::Timer {
                node: NodeId::from_index(0),
                token,
            },
        );
    }

    /// Pops the earliest event, returning its `(at_nanos, seq)` stamp.
    pub fn pop(&mut self) -> Option<(u64, u64)> {
        self.0.pop().map(|e| (e.at.as_nanos(), e.seq))
    }

    /// Schedules an empty-payload frame delivery to node `to` at `at_nanos`
    /// (the burst-drain bench needs real `Deliver` events, not timers).
    pub fn push_deliver(&mut self, at_nanos: u64, to: usize) {
        self.0.push(
            SimTime::from_nanos(at_nanos),
            EventKind::Deliver {
                from: NodeId::from_index(0),
                to: NodeId::from_index(to),
                frame: Frame::new(Bytes::new()),
            },
        );
    }

    /// Pops the next event only if it is a delivery to node `to` at exactly
    /// `at_nanos` — the probe [`crate::network::Network::run`] uses to
    /// extend a same-instant burst. Returns whether a delivery was drained.
    pub fn pop_deliver_if(&mut self, at_nanos: u64, to: usize) -> bool {
        self.0
            .pop_deliver_if(SimTime::from_nanos(at_nanos), NodeId::from_index(to))
            .is_some()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deliver_facade_drains_bursts() {
        let mut q = BenchEventQueue::new();
        q.push_deliver(100, 3);
        q.push_deliver(100, 3);
        q.push_deliver(100, 4); // different node: not part of the burst
        q.push_deliver(200, 3); // later instant: not part of the burst
        let (at, _) = q.pop().expect("head");
        assert_eq!(at, 100);
        assert!(q.pop_deliver_if(100, 3));
        assert!(!q.pop_deliver_if(100, 3), "node 4's frame ends the burst");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn facade_preserves_queue_order() {
        let mut q = BenchEventQueue::new();
        q.push_timer(300, 0);
        q.push_timer(100, 1);
        q.push_timer(100, 2);
        assert_eq!(q.len(), 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(at, _)| at).collect();
        assert_eq!(order, vec![100, 100, 300]);
        assert!(q.is_empty());
    }
}
