//! Fault injection: packet loss, duplication, and reordering.
//!
//! ASK's reliability mechanism (§3.3 of the paper) exists because datacenter
//! networks drop, duplicate, and reorder packets. The [`FaultModel`] lets
//! tests and benchmarks dial those behaviours in deterministically.

use crate::time::SimDuration;
use rand::Rng;

/// Probabilistic fault model applied per frame on a directed link.
///
/// # Examples
///
/// ```
/// use ask_simnet::faults::FaultModel;
///
/// let lossy = FaultModel::reliable().with_loss(0.01);
/// assert_eq!(lossy.loss_probability(), 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct FaultModel {
    loss: f64,
    duplication: f64,
    /// Maximum extra delay added to a frame to force reordering; zero
    /// disables reordering.
    reorder_jitter: SimDuration,
    /// Probability that a frame receives reorder jitter.
    reorder: f64,
    /// Probability that one payload byte is flipped in transit.
    corruption: f64,
}

impl FaultModel {
    /// A perfectly reliable link: no loss, duplication, or reordering.
    pub fn reliable() -> Self {
        FaultModel {
            loss: 0.0,
            duplication: 0.0,
            reorder_jitter: SimDuration::ZERO,
            reorder: 0.0,
            corruption: 0.0,
        }
    }

    /// Sets the independent per-frame payload-corruption probability (one
    /// random byte is XOR-flipped). End-to-end integrity then depends on
    /// the protocol's checksum.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_corruption(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corruption = p;
        self
    }

    /// The per-frame corruption probability.
    pub fn corruption_probability(&self) -> f64 {
        self.corruption
    }

    /// Sets the independent per-frame loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss = p;
        self
    }

    /// Sets the independent per-frame duplication probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.duplication = p;
        self
    }

    /// With probability `p`, delays a frame by a uniform random amount in
    /// `[0, jitter]`, which lets later frames overtake it.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_reordering(mut self, p: f64, jitter: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.reorder = p;
        self.reorder_jitter = jitter;
        self
    }

    /// The per-frame loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss
    }

    /// The per-frame duplication probability.
    pub fn duplication_probability(&self) -> f64 {
        self.duplication
    }

    /// True if no fault can ever fire.
    pub fn is_reliable(&self) -> bool {
        self.loss == 0.0 && self.duplication == 0.0 && self.reorder == 0.0 && self.corruption == 0.0
    }

    /// Draws the fate of one frame.
    pub(crate) fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> FrameFate {
        if self.loss > 0.0 && rng.gen_bool(self.loss) {
            return FrameFate::Dropped;
        }
        let duplicated = self.duplication > 0.0 && rng.gen_bool(self.duplication);
        let delay = if self.reorder > 0.0 && rng.gen_bool(self.reorder) {
            SimDuration::from_nanos(rng.gen_range(0..=self.reorder_jitter.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        let corrupted = self.corruption > 0.0 && rng.gen_bool(self.corruption);
        FrameFate::Delivered {
            duplicated,
            delay,
            corrupted,
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::reliable()
    }
}

/// Outcome drawn for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameFate {
    Dropped,
    Delivered {
        duplicated: bool,
        delay: SimDuration,
        corrupted: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reliable_never_faults() {
        let m = FaultModel::reliable();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(
                m.draw(&mut rng),
                FrameFate::Delivered {
                    duplicated: false,
                    delay: SimDuration::ZERO,
                    corrupted: false,
                }
            );
        }
        assert!(m.is_reliable());
    }

    #[test]
    fn loss_rate_is_roughly_respected() {
        let m = FaultModel::reliable().with_loss(0.25);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let dropped = (0..n)
            .filter(|_| m.draw(&mut rng) == FrameFate::Dropped)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn duplication_flags_fire() {
        let m = FaultModel::reliable().with_duplication(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        match m.draw(&mut rng) {
            FrameFate::Delivered { duplicated, .. } => assert!(duplicated),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corruption_flag_fires() {
        let m = FaultModel::reliable().with_corruption(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        match m.draw(&mut rng) {
            FrameFate::Delivered { corrupted, .. } => assert!(corrupted),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!m.is_reliable());
        assert_eq!(m.corruption_probability(), 1.0);
    }

    #[test]
    fn reordering_adds_bounded_delay() {
        let jitter = SimDuration::from_micros(10);
        let m = FaultModel::reliable().with_reordering(1.0, jitter);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            match m.draw(&mut rng) {
                FrameFate::Delivered { delay, .. } => assert!(delay <= jitter),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        let _ = FaultModel::reliable().with_loss(1.5);
    }
}
