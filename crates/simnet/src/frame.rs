//! Frames exchanged between simulated nodes.

use bytes::Bytes;
use core::fmt;

/// Identifier of a node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Returns the raw index of the node.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Creates a node id from a raw index.
    ///
    /// Intended for tests and deterministic topology construction; sending to
    /// an id that was not returned by [`crate::network::NetworkBuilder`] is an
    /// error at send time.
    pub const fn from_index(ix: usize) -> Self {
        NodeId(ix)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A frame travelling over a simulated link.
///
/// `payload` carries the serialized protocol bytes; `wire_bytes` is the size
/// used for serialization-delay and goodput accounting and includes physical
/// framing overhead that is never materialized as payload bytes (preamble,
/// inter-packet gap, CRC, ...). `wire_bytes` must be at least
/// `payload.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    payload: Bytes,
    wire_bytes: usize,
    ecn_marked: bool,
}

impl Frame {
    /// Creates a frame whose wire size equals its payload size.
    pub fn new(payload: Bytes) -> Self {
        let wire_bytes = payload.len();
        Frame {
            payload,
            wire_bytes,
            ecn_marked: false,
        }
    }

    /// Creates a frame with explicit on-the-wire size.
    ///
    /// # Panics
    ///
    /// Panics if `wire_bytes < payload.len()`.
    pub fn with_wire_bytes(payload: Bytes, wire_bytes: usize) -> Self {
        assert!(
            wire_bytes >= payload.len(),
            "wire size {} smaller than payload {}",
            wire_bytes,
            payload.len()
        );
        Frame {
            payload,
            wire_bytes,
            ecn_marked: false,
        }
    }

    /// True if a congested link marked this frame (ECN CE codepoint).
    pub fn ecn_marked(&self) -> bool {
        self.ecn_marked
    }

    /// Sets the ECN congestion-experienced mark (links do this when a
    /// frame's queueing delay exceeds the configured threshold; protocol
    /// code propagates it when re-encapsulating).
    pub fn set_ecn_marked(&mut self, marked: bool) {
        self.ecn_marked = marked;
    }

    /// The protocol payload bytes.
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Consumes the frame and returns the payload.
    pub fn into_payload(self) -> Bytes {
        self.payload
    }

    /// The frame size on the wire, in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.wire_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_defaults_wire_to_payload_len() {
        let f = Frame::new(Bytes::from_static(b"hello"));
        assert_eq!(f.wire_bytes(), 5);
        assert_eq!(f.payload().as_ref(), b"hello");
    }

    #[test]
    fn frame_with_overhead() {
        let f = Frame::with_wire_bytes(Bytes::from_static(b"hi"), 80);
        assert_eq!(f.wire_bytes(), 80);
        assert_eq!(f.into_payload().as_ref(), b"hi");
    }

    #[test]
    #[should_panic(expected = "wire size")]
    fn frame_rejects_undersized_wire() {
        let _ = Frame::with_wire_bytes(Bytes::from_static(b"hello"), 3);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(NodeId::from_index(3).index(), 3);
    }
}
