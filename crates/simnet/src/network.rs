//! The simulated network: nodes, links, and the event loop.
//!
//! The loop runs in one of two modes:
//!
//! - **Sequential**: events pop one at a time in exact `(at, seq)` order —
//!   the reference semantics every other mode must reproduce byte for byte.
//! - **Windowed parallel** (bounded-lag, YAWNS-style): when the network has
//!   more than one lane configured (`ASK_SIM_LANES` / [`Network::set_lanes`])
//!   and every link has non-zero propagation delay, the loop repeatedly
//!   carves the queue into safe windows of width `L` = the minimum link
//!   propagation (the *lookahead*), partitions each window's events into
//!   per-node lanes, executes the lanes concurrently, and then replays the
//!   staged effects sequentially in canonical `(at, seq)` order. Any send
//!   issued at `t ∈ [W, W+L)` arrives no earlier than `t + L ≥ W + L`, so
//!   in-window execution can never affect in-window events — and the replay
//!   step re-creates the exact push order (and therefore every `seq` stamp,
//!   fault-RNG draw, trace record, and link-state transition) of the
//!   sequential loop. The observable simulation is byte-identical at any
//!   lane count.

use crate::event::{EventKind, EventQueue};
use crate::faults::FrameFate;
use crate::frame::{Frame, NodeId};
use crate::link::{LinkConfig, LinkState, LinkStats, ScheduleOutcome};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Behaviour attached to a simulated node.
///
/// A node reacts to incoming frames and to timers it has armed; it drives the
/// simulation forward exclusively through the [`Context`] it is handed. The
/// `Any` supertrait allows the harness to downcast a node back to its
/// concrete type after the run (see [`Network::node`]); the `Send`
/// supertrait lets the windowed executor hand a node's state to a lane
/// worker thread for the duration of a window.
pub trait Node: Any + Send {
    /// Called once before the first event is processed.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a frame addressed to this node arrives.
    fn on_frame(&mut self, from: NodeId, frame: Frame, ctx: &mut Context<'_>);

    /// Called with a burst of frames that all arrived at this node at the
    /// same simulated instant, in delivery (FIFO) order.
    ///
    /// The default implementation simply replays them one by one through
    /// [`Node::on_frame`]; nodes with a cheaper batch path (e.g. the ASK
    /// switch's channel-grouped ingest) override it. Implementations must
    /// consume every frame in `burst` and must process them in order —
    /// observable side effects (sends, timers, RNG draws) have to match the
    /// one-at-a-time equivalent exactly.
    fn on_frames(&mut self, burst: &mut Vec<(NodeId, Frame)>, ctx: &mut Context<'_>) {
        for (from, frame) in burst.drain(..) {
            self.on_frame(from, frame, ctx);
        }
    }

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_>) {}

    /// Called when the node comes back up after a scheduled outage
    /// ([`Network::schedule_node_down`] / [`Network::schedule_node_up`]).
    ///
    /// The implementation must discard whatever volatile state the crash
    /// wiped before processing any further events; the default keeps
    /// everything (a restart-transparent node).
    fn on_restart(&mut self, _ctx: &mut Context<'_>) {}
}

/// What ultimately happened to one frame offered to a link — the captured
/// form of [`FrameFate`](crate::faults::FrameFate) plus congestion drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFate {
    /// The link's queue was full; the frame never entered the fault model.
    TailDropped,
    /// The fault model dropped the frame.
    Dropped,
    /// The frame was delivered (possibly mangled along the way).
    Delivered {
        /// A trailing duplicate copy was also delivered.
        duplicated: bool,
        /// One payload bit was flipped in the delivered copy.
        corrupted: bool,
        /// Extra reorder jitter applied on top of the link latency, in ns.
        delay_ns: u64,
    },
}

/// One captured frame transmission (see [`Network::enable_frame_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTraceEntry {
    /// Simulated time of the send.
    pub at: SimTime,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// On-wire size of the frame.
    pub wire_bytes: usize,
    /// What happened to it.
    pub fate: TraceFate,
}

/// Bounded ring of the most recent frame transmissions.
#[derive(Debug)]
struct FrameTrace {
    capacity: usize,
    entries: VecDeque<FrameTraceEntry>,
    total: u64,
}

impl FrameTrace {
    fn record(&mut self, entry: FrameTraceEntry) {
        self.total += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }
}

/// Sentinel in a [`NodeLinks`] map: no directed link to that destination.
const LINK_NONE: u32 = u32::MAX;

/// Dense outgoing-link table for one node: `map[dst - base]` is the index of
/// the `src -> dst` link in the flat link array, or [`LINK_NONE`]. Offsetting
/// by the smallest connected destination keeps the table tight for the
/// common topologies (hosts linked only to a switch, switches linked to a
/// contiguous run of hosts).
#[derive(Debug, Default)]
struct NodeLinks {
    base: usize,
    map: Vec<u32>,
}

impl NodeLinks {
    fn get(&self, dst: usize) -> Option<usize> {
        match self.map.get(dst.wrapping_sub(self.base)) {
            Some(&ix) if ix != LINK_NONE => Some(ix as usize),
            _ => None,
        }
    }
}

/// Engine state shared by all nodes (everything except the nodes themselves,
/// so a node can be borrowed mutably while the engine is driven).
#[derive(Debug)]
struct Engine {
    /// All directed links, indexed by the per-node adjacency tables.
    links: Vec<LinkState>,
    /// Per-source dense adjacency, indexed by `NodeId::index()`. Built once
    /// at [`NetworkBuilder::build`]; two array reads replace the old
    /// `HashMap<(NodeId, NodeId)>` probe on every send. Shared with lane
    /// workers (read-only) so they can validate sends without touching the
    /// engine.
    adjacency: Arc<[NodeLinks]>,
    queue: EventQueue,
    now: SimTime,
    /// Fault-model draws come from this dedicated stream, so chaos settings
    /// can be re-seeded independently of node-visible randomness and a
    /// `(seed, grid-point)` pair pins down every loss/dup/jitter decision.
    /// Node-visible randomness lives in per-node streams (see
    /// [`Context::rng`]), so lanes never contend for this one.
    fault_rng: StdRng,
    events_processed: u64,
    trace: Option<FrameTrace>,
    /// Per-node outage flags: a down node receives neither frames nor
    /// timers (both are consumed and dropped at dispatch time, exactly as a
    /// crashed machine loses what was addressed to it).
    down: Vec<bool>,
}

impl Engine {
    /// Enqueues `frame` on the directed link `from -> to`, applying the fault
    /// model. Returns an error if the link does not exist.
    fn send(&mut self, from: NodeId, to: NodeId, mut frame: Frame) -> Result<(), SendError> {
        let now = self.now;
        let wire_bytes = frame.wire_bytes();
        let trace_fate = |trace: &mut Option<FrameTrace>, fate: TraceFate| {
            if let Some(t) = trace.as_mut() {
                t.record(FrameTraceEntry {
                    at: now,
                    from,
                    to,
                    wire_bytes,
                    fate,
                });
            }
        };
        let link_ix = self
            .adjacency
            .get(from.index())
            .and_then(|n| n.get(to.index()))
            .ok_or(SendError { from, to })?;
        let link = &mut self.links[link_ix];
        let (arrival, ecn) = match link.schedule(now, frame.wire_bytes()) {
            ScheduleOutcome::Enqueued { arrival, ecn } => (arrival, ecn),
            ScheduleOutcome::TailDropped => {
                trace_fate(&mut self.trace, TraceFate::TailDropped);
                return Ok(()); // congestion loss
            }
        };
        if ecn {
            frame.set_ecn_marked(true);
        }
        match link.config.faults().draw(&mut self.fault_rng) {
            FrameFate::Dropped => {
                link.stats.frames_dropped += 1;
                trace_fate(&mut self.trace, TraceFate::Dropped);
            }
            FrameFate::Delivered {
                duplicated,
                delay,
                corrupted,
            } => {
                link.stats.frames_delivered += 1;
                // Snapshot the trailing copy before any corruption: the
                // duplicate is the uncorrupted original. On the common
                // (non-duplicated) path the frame moves straight into the
                // delivery event with no clone at all.
                let dup = duplicated.then(|| {
                    link.stats.frames_duplicated += 1;
                    (frame.clone(), link.config.propagation())
                });
                trace_fate(
                    &mut self.trace,
                    TraceFate::Delivered {
                        duplicated,
                        corrupted,
                        delay_ns: delay.as_nanos(),
                    },
                );
                let delivered = if corrupted {
                    let mut bytes = frame.payload().to_vec();
                    if !bytes.is_empty() {
                        // Deterministic position/bit from the fault RNG.
                        use rand::Rng as _;
                        let ix = self.fault_rng.gen_range(0..bytes.len());
                        let bit = 1u8 << self.fault_rng.gen_range(0..8);
                        bytes[ix] ^= bit;
                    }
                    let mut f =
                        Frame::with_wire_bytes(bytes::Bytes::from(bytes), frame.wire_bytes());
                    f.set_ecn_marked(frame.ecn_marked());
                    f
                } else {
                    frame
                };
                self.queue.push(
                    arrival + delay,
                    EventKind::Deliver {
                        from,
                        to,
                        frame: delivered,
                    },
                );
                if let Some((copy, extra)) = dup {
                    // The copy trails the original by one propagation delay.
                    self.queue.push(
                        arrival + delay + extra,
                        EventKind::Deliver { from, to, frame: copy },
                    );
                }
            }
        }
        Ok(())
    }
}

/// Error returned when sending between nodes that are not linked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError {
    /// The sending node.
    pub from: NodeId,
    /// The intended receiver.
    pub to: NodeId,
}

impl core::fmt::Display for SendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "no link from {} to {}", self.from, self.to)
    }
}

impl std::error::Error for SendError {}

/// One side effect a node produced while executing inside a lane, staged
/// for the sequential replay step. Replaying the effects of every dispatch
/// in canonical `(at, seq)` order performs the exact pushes (and fault-RNG
/// draws) the sequential loop would have performed inline.
#[derive(Debug)]
enum Effect {
    /// `ctx.send(to, frame)` — replayed through [`Engine::send`].
    Send { to: NodeId, frame: Frame },
    /// A timer landing at or beyond the window cap: replayed as a real
    /// queue push.
    TimerOut { at: SimTime, token: u64 },
    /// A timer landing inside the window: the lane already executed it as
    /// staged record `rec`; replay only consumes the `seq` stamp the
    /// sequential push would have taken and schedules the child record.
    TimerIn { rec: usize },
}

/// Per-lane execution state a [`Context`] writes into while a node runs
/// inside a window (no engine access — everything is staged).
#[derive(Debug)]
struct LaneCtx {
    now: SimTime,
    /// Exclusive end of the safe window: timers below it are executed in
    /// the lane, timers at or beyond it are replayed as real pushes.
    cap: SimTime,
    adjacency: Arc<[NodeLinks]>,
    /// Effects of the dispatch currently executing, in action order.
    effects: Vec<Effect>,
    /// In-window timers staged by the current dispatch: `(at, token)` in
    /// creation order. Turned into lane records after the dispatch returns.
    staged: Vec<(SimTime, u64)>,
    /// Record index the next staged timer will occupy in the lane.
    next_rec_ix: usize,
}

#[derive(Debug)]
enum CtxInner<'a> {
    /// Sequential dispatch: effects apply to the engine immediately.
    Direct(&'a mut Engine),
    /// Lane dispatch inside a parallel window: effects are staged.
    Lane(&'a mut LaneCtx),
}

/// Handle through which a node interacts with the simulation.
#[derive(Debug)]
pub struct Context<'a> {
    inner: CtxInner<'a>,
    me: NodeId,
    rng: &'a mut StdRng,
}

impl Context<'_> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            CtxInner::Direct(e) => e.now,
            CtxInner::Lane(l) => l.now,
        }
    }

    /// The id of the node being called.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Sends `frame` to the directly connected node `to`.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] if no directed link `self -> to` exists.
    pub fn send(&mut self, to: NodeId, frame: Frame) -> Result<(), SendError> {
        match &mut self.inner {
            CtxInner::Direct(e) => e.send(self.me, to, frame),
            CtxInner::Lane(l) => {
                // The only node-visible outcome of `Engine::send` is the
                // missing-link error, which it returns before any state
                // change; everything else (tail drop, fault draws, pushes)
                // is invisible to the sender and replayed later.
                if l.adjacency
                    .get(self.me.index())
                    .and_then(|n| n.get(to.index()))
                    .is_none()
                {
                    return Err(SendError { from: self.me, to });
                }
                l.effects.push(Effect::Send { to, frame });
                Ok(())
            }
        }
    }

    /// Arms a one-shot timer that fires after `delay` with the given `token`.
    ///
    /// Timers cannot be cancelled; nodes are expected to ignore stale tokens.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        match &mut self.inner {
            CtxInner::Direct(e) => {
                let at = e.now + delay;
                e.queue.push(
                    at,
                    EventKind::Timer {
                        node: self.me,
                        token,
                    },
                );
            }
            CtxInner::Lane(l) => {
                let at = l.now + delay;
                if at < l.cap {
                    // Fires inside the current window: the lane will run it
                    // itself (timers only ever target the node that set
                    // them, so the target is by construction in this lane).
                    let rec = l.next_rec_ix + l.staged.len();
                    l.effects.push(Effect::TimerIn { rec });
                    l.staged.push((at, token));
                } else {
                    l.effects.push(Effect::TimerOut { at, token });
                }
            }
        }
    }

    /// Deterministic per-node random stream, split from both the fault RNG
    /// and every other node's stream so lane execution order can never
    /// perturb the draws a node sees.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// Builder for a [`Network`] ([C-BUILDER]).
///
/// # Examples
///
/// ```
/// use ask_simnet::prelude::*;
/// use bytes::Bytes;
///
/// struct Echo;
/// impl Node for Echo {
///     fn on_frame(&mut self, from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
///         ctx.send(from, frame).expect("linked");
///     }
/// }
///
/// let mut b = NetworkBuilder::new(1);
/// let a = b.add_node(Echo);
/// let c = b.add_node(Echo);
/// b.connect(a, c, LinkConfig::new(1e9, SimDuration::from_micros(1)));
/// let net = b.build();
/// assert_eq!(net.node_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Option<Box<dyn Node>>>,
    links: HashMap<(NodeId, NodeId), LinkState>,
    seed: u64,
    fault_seed: Option<u64>,
    lanes: Option<usize>,
}

/// A node plus the per-node state the executor moves with it when handing
/// the node to a lane worker.
#[derive(Debug)]
struct NodeSlot {
    node: Box<dyn Node>,
    /// This node's private random stream (see [`Context::rng`]).
    rng: StdRng,
    /// Wall-clock nanoseconds spent inside this node's handlers, when
    /// dispatch timing is enabled ([`Network::enable_dispatch_timing`]).
    dispatch_ns: u64,
}

/// SplitMix64 finalizer: seeds the per-node RNG streams from
/// `(seed, node index)` so every node gets an independent, reproducible
/// stream regardless of execution order.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl std::fmt::Debug for dyn Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<node>")
    }
}

impl NetworkBuilder {
    /// Creates a builder whose simulation RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        NetworkBuilder {
            nodes: Vec::new(),
            links: HashMap::new(),
            seed,
            fault_seed: None,
            lanes: None,
        }
    }

    /// Seeds the fault-model RNG independently of the simulation seed, so a
    /// chaos sweep can vary fault draws while node behaviour stays pinned.
    /// Defaults to the simulation seed.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.fault_seed = Some(seed);
    }

    /// Pins the number of execution lanes, overriding the `ASK_SIM_LANES`
    /// environment variable (which otherwise supplies the default; absent or
    /// invalid values mean 1 = sequential). The simulation result is
    /// byte-identical at any lane count; lanes only change wall-clock time.
    pub fn set_lanes(&mut self, lanes: usize) {
        self.lanes = Some(lanes.max(1));
    }

    /// Adds a node and returns its id.
    pub fn add_node<N: Node>(&mut self, node: N) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Some(Box::new(node)));
        id
    }

    /// Connects `a` and `b` with a duplex link (two directed links sharing
    /// `config`).
    ///
    /// # Panics
    ///
    /// Panics if either node id is unknown, `a == b`, or the pair is already
    /// connected.
    pub fn connect(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        self.connect_directed(a, b, config.clone());
        self.connect_directed(b, a, config);
    }

    /// Connects `a -> b` only, for asymmetric links.
    ///
    /// # Panics
    ///
    /// Panics if either node id is unknown, `a == b`, or the directed pair is
    /// already connected.
    pub fn connect_directed(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        assert!(a.index() < self.nodes.len(), "unknown node {a}");
        assert!(b.index() < self.nodes.len(), "unknown node {b}");
        assert_ne!(a, b, "self-links are not allowed");
        let prev = self.links.insert((a, b), LinkState::new(config));
        assert!(prev.is_none(), "{a} -> {b} already connected");
    }

    /// Finalizes the topology, compiling the builder's link map into the
    /// flat link array plus per-node adjacency tables the engine runs on.
    /// Link indices are assigned in `(src, dst)` order, independent of
    /// insertion order, so identically shaped topologies get identical
    /// tables.
    pub fn build(self) -> Network {
        let mut pairs: Vec<((usize, usize), LinkState)> = self
            .links
            .into_iter()
            .map(|((a, b), state)| ((a.index(), b.index()), state))
            .collect();
        pairs.sort_unstable_by_key(|(key, _)| *key);
        let mut adjacency: Vec<NodeLinks> =
            (0..self.nodes.len()).map(|_| NodeLinks::default()).collect();
        let mut links = Vec::with_capacity(pairs.len());
        for ((src, dst), state) in pairs {
            let ix = links.len() as u32;
            links.push(state);
            let entry = &mut adjacency[src];
            if entry.map.is_empty() {
                entry.base = dst;
            }
            let off = dst - entry.base; // dsts arrive sorted per src
            entry.map.resize(off + 1, LINK_NONE);
            entry.map[off] = ix;
        }
        let node_count = self.nodes.len();
        // The lookahead is the minimum propagation delay over every link:
        // a send issued at `t` arrives no earlier than `t + lookahead`, so
        // windows of that width are causally safe. Zero (a latency-free
        // link, or no links at all) disables the windowed executor.
        let lookahead = links
            .iter()
            .map(|l| l.config.propagation())
            .min()
            .unwrap_or(SimDuration::ZERO);
        let lanes = self.lanes.unwrap_or_else(|| {
            std::env::var("ASK_SIM_LANES")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1)
        });
        let seed = self.seed;
        let nodes = self
            .nodes
            .into_iter()
            .enumerate()
            .map(|(ix, node)| {
                node.map(|node| NodeSlot {
                    node,
                    rng: StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(ix as u64 + 1))),
                    dispatch_ns: 0,
                })
            })
            .collect();
        Network {
            nodes,
            engine: Engine {
                links,
                adjacency: adjacency.into(),
                queue: EventQueue::new(),
                now: SimTime::ZERO,
                fault_rng: StdRng::seed_from_u64(self.fault_seed.unwrap_or(seed)),
                events_processed: 0,
                trace: None,
                down: vec![false; node_count],
            },
            started: false,
            burst_buf: Vec::new(),
            lanes,
            lookahead,
            timing: false,
            run_wall_ns: 0,
        }
    }
}

/// A simulated network ready to run.
pub struct Network {
    nodes: Vec<Option<NodeSlot>>,
    engine: Engine,
    started: bool,
    /// Reusable delivery buffer for same-instant bursts; kept across
    /// [`Network::run`] calls so steady-state dispatch allocates nothing.
    burst_buf: Vec<(NodeId, Frame)>,
    /// Execution lanes for the windowed parallel mode; 1 = sequential.
    lanes: usize,
    /// Minimum link propagation delay — the safe-window width. Zero
    /// disables the windowed executor.
    lookahead: SimDuration,
    /// Measure per-node handler wall time (see
    /// [`Network::enable_dispatch_timing`]).
    timing: bool,
    /// Wall-clock nanoseconds spent inside [`Network::run`] /
    /// [`Network::run_chunk`] so far.
    run_wall_ns: u64,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("now", &self.engine.now)
            .field("pending_events", &self.engine.queue.len())
            .finish()
    }
}

/// Why [`Network::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained completely.
    Idle,
    /// The time horizon passed; unprocessed events remain queued.
    Deadline,
    /// The event budget was exhausted (runaway-protection).
    EventBudget,
}

impl Network {
    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed
    }

    /// Starts capturing per-frame fate records into a ring holding the most
    /// recent `capacity` entries (replacing any previous capture). With a
    /// seeded fault RNG this turns a failing run into a readable packet
    /// timeline.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_frame_trace(&mut self, capacity: usize) {
        assert!(capacity > 0, "trace capacity must be positive");
        self.engine.trace = Some(FrameTrace {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            total: 0,
        });
    }

    /// The captured frame-fate ring, oldest first (empty when tracing is
    /// off).
    pub fn frame_trace(&self) -> impl Iterator<Item = &FrameTraceEntry> {
        self.engine.trace.iter().flat_map(|t| t.entries.iter())
    }

    /// Total frames offered to links while tracing was on (may exceed the
    /// ring capacity).
    pub fn frames_traced(&self) -> u64 {
        self.engine.trace.as_ref().map_or(0, |t| t.total)
    }

    /// Counters of the directed link `a -> b`.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    pub fn link_stats(&self, a: NodeId, b: NodeId) -> LinkStats {
        let ix = self
            .engine
            .adjacency
            .get(a.index())
            .and_then(|n| n.get(b.index()))
            .unwrap_or_else(|| panic!("no link from {a} to {b}"));
        self.engine.links[ix].stats
    }

    /// Borrows a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown, the node is of a different type, or the
    /// node is currently being dispatched (re-entrant access).
    pub fn node<N: Node>(&self, id: NodeId) -> &N {
        let node = self.nodes[id.index()]
            .as_ref()
            .expect("node is being dispatched")
            .node
            .as_ref();
        (node as &dyn Any)
            .downcast_ref()
            .expect("node type mismatch")
    }

    /// Mutably borrows a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::node`].
    pub fn node_mut<N: Node>(&mut self, id: NodeId) -> &mut N {
        let node = self.nodes[id.index()]
            .as_mut()
            .expect("node is being dispatched")
            .node
            .as_mut();
        (node as &mut dyn Any)
            .downcast_mut()
            .expect("node type mismatch")
    }

    /// Calls `f` with a node and a fresh [`Context`], letting harness code
    /// inject work (e.g. submit an aggregation task) mid-simulation.
    pub fn with_node<N: Node, T>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut N, &mut Context<'_>) -> T,
    ) -> T {
        let mut slot = self.nodes[id.index()]
            .take()
            .expect("node is being dispatched");
        let mut ctx = Context {
            inner: CtxInner::Direct(&mut self.engine),
            me: id,
            rng: &mut slot.rng,
        };
        let concrete = (slot.node.as_mut() as &mut dyn Any)
            .downcast_mut()
            .expect("node type mismatch");
        let out = f(concrete, &mut ctx);
        self.nodes[id.index()] = Some(slot);
        out
    }

    /// Schedules `node` to crash at absolute simulated time `at`: from that
    /// instant until a matching [`Network::schedule_node_up`], every frame
    /// and timer addressed to it is silently dropped.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn schedule_node_down(&mut self, node: NodeId, at: SimTime) {
        assert!(node.index() < self.nodes.len(), "unknown node {node}");
        self.engine.queue.push(at, EventKind::NodeDown { node });
    }

    /// Schedules `node` to restart at absolute simulated time `at`. The
    /// node's [`Node::on_restart`] hook runs before it processes any
    /// further events, so it can discard crash-lost state first.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn schedule_node_up(&mut self, node: NodeId, at: SimTime) {
        assert!(node.index() < self.nodes.len(), "unknown node {node}");
        self.engine.queue.push(at, EventKind::NodeUp { node });
    }

    /// Whether `node` is currently inside a scheduled outage.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.engine.down[node.index()]
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for ix in 0..self.nodes.len() {
            let id = NodeId::from_index(ix);
            let mut slot = self.nodes[ix].take().expect("node present at start");
            let mut ctx = Context {
                inner: CtxInner::Direct(&mut self.engine),
                me: id,
                rng: &mut slot.rng,
            };
            slot.node.on_start(&mut ctx);
            self.nodes[ix] = Some(slot);
        }
    }

    /// Dispatches a node's [`Node::on_restart`] hook with a direct context
    /// (used by both executors when a `NodeUp` event fires).
    fn dispatch_restart(&mut self, id: NodeId) {
        let mut slot = self.nodes[id.index()].take().expect("node present");
        let mut ctx = Context {
            inner: CtxInner::Direct(&mut self.engine),
            me: id,
            rng: &mut slot.rng,
        };
        slot.node.on_restart(&mut ctx);
        self.nodes[id.index()] = Some(slot);
    }

    /// Runs until the queue drains, `until` passes, or `max_events` fire —
    /// whichever comes first. Pass `None` for no horizon / no budget.
    ///
    /// Consecutive deliveries to one node at one instant are drained as a
    /// single burst and handed to [`Node::on_frames`] in FIFO order — one
    /// dispatch instead of N — with each frame still counted individually
    /// against `max_events` and [`Network::events_processed`]. Because only
    /// *adjacent* same-instant events join a burst and no node code runs
    /// while it is being collected, the observable event order is identical
    /// to one-at-a-time delivery.
    pub fn run(&mut self, until: Option<SimTime>, max_events: Option<u64>) -> StopReason {
        let wall = Instant::now();
        // An exact event budget requires popping one event at a time (the
        // budget can cut a burst, or stop between two same-window events),
        // so budgeted runs always take the sequential path — this keeps
        // callers that rely on exact cut points (e.g. crash-at-event-N
        // scenarios) byte-identical at any lane count. Unbudgeted runs use
        // the windowed executor when lanes are configured.
        let reason = if max_events.is_none() && self.parallel_ok() {
            self.run_windowed(until, None)
        } else {
            self.run_sequential(until, max_events)
        };
        self.run_wall_ns += wall.elapsed().as_nanos() as u64;
        reason
    }

    /// Runs until the queue drains or roughly `max_events` fire — like
    /// `run(None, Some(max_events))`, except the budget is only checked at
    /// safe-window boundaries, so the stop point may overshoot by up to one
    /// window. Use this for chunked driving loops that only *read* state
    /// between chunks; use [`Network::run`] when the exact cut point is
    /// observable (e.g. to inject a crash after precisely N events).
    pub fn run_chunk(&mut self, max_events: u64) -> StopReason {
        let wall = Instant::now();
        let reason = if self.parallel_ok() {
            self.run_windowed(None, Some(max_events))
        } else {
            self.run_sequential(None, Some(max_events))
        };
        self.run_wall_ns += wall.elapsed().as_nanos() as u64;
        reason
    }

    /// Whether the windowed parallel executor is usable: more than one lane
    /// configured, positive lookahead, and more than one node to spread.
    fn parallel_ok(&self) -> bool {
        self.lanes > 1 && self.lookahead > SimDuration::ZERO && self.nodes.len() > 1
    }

    fn run_sequential(&mut self, until: Option<SimTime>, max_events: Option<u64>) -> StopReason {
        self.start_if_needed();
        let timing = self.timing;
        let budget_start = self.engine.events_processed;
        let mut burst = std::mem::take(&mut self.burst_buf);
        let reason = loop {
            if let Some(budget) = max_events {
                if self.engine.events_processed - budget_start >= budget {
                    break StopReason::EventBudget;
                }
            }
            let Some(event) = self.engine.queue.pop() else {
                break StopReason::Idle;
            };
            if let Some(deadline) = until {
                if event.at > deadline {
                    // Re-queue and stop: the event stays pending.
                    self.engine.queue.push(event.at, event.kind);
                    self.engine.now = deadline;
                    break StopReason::Deadline;
                }
            }
            debug_assert!(event.at >= self.engine.now, "time went backwards");
            let at = event.at;
            self.engine.now = at;
            self.engine.events_processed += 1;
            match event.kind {
                EventKind::Deliver { from, to, frame } => {
                    if self.engine.down[to.index()] {
                        // The destination is down: the frame vanishes at
                        // delivery (a crashed NIC receives nothing). Any
                        // same-instant burst mates are popped and dropped by
                        // the following loop iterations one by one, so event
                        // accounting matches the up-node path exactly.
                        continue;
                    }
                    burst.clear();
                    burst.push((from, frame));
                    // Extend the burst with adjacent same-instant deliveries
                    // to the same node. Same `at` means the deadline check
                    // above already covers them; the budget is re-checked
                    // per frame so `EventBudget` fires at the same count as
                    // the one-at-a-time loop.
                    while max_events
                        .is_none_or(|b| self.engine.events_processed - budget_start < b)
                    {
                        let Some(next) = self.engine.queue.pop_deliver_if(at, to) else {
                            break;
                        };
                        let EventKind::Deliver { from, frame, .. } = next.kind else {
                            unreachable!("pop_deliver_if only returns deliveries");
                        };
                        burst.push((from, frame));
                        self.engine.events_processed += 1;
                    }
                    let mut slot = self.nodes[to.index()].take().expect("node present");
                    let t0 = timing.then(Instant::now);
                    {
                        let mut ctx = Context {
                            inner: CtxInner::Direct(&mut self.engine),
                            me: to,
                            rng: &mut slot.rng,
                        };
                        slot.node.on_frames(&mut burst, &mut ctx);
                    }
                    if let Some(t0) = t0 {
                        slot.dispatch_ns += t0.elapsed().as_nanos() as u64;
                    }
                    burst.clear();
                    self.nodes[to.index()] = Some(slot);
                }
                EventKind::Timer { node: id, token } => {
                    if self.engine.down[id.index()] {
                        continue; // a crashed node's timers die with it
                    }
                    let mut slot = self.nodes[id.index()].take().expect("node present");
                    let t0 = timing.then(Instant::now);
                    {
                        let mut ctx = Context {
                            inner: CtxInner::Direct(&mut self.engine),
                            me: id,
                            rng: &mut slot.rng,
                        };
                        slot.node.on_timer(token, &mut ctx);
                    }
                    if let Some(t0) = t0 {
                        slot.dispatch_ns += t0.elapsed().as_nanos() as u64;
                    }
                    self.nodes[id.index()] = Some(slot);
                }
                EventKind::NodeDown { node } => {
                    self.engine.down[node.index()] = true;
                }
                EventKind::NodeUp { node } => {
                    self.engine.down[node.index()] = false;
                    self.dispatch_restart(node);
                }
            }
        };
        self.burst_buf = burst;
        reason
    }

    /// Runs until the event queue is empty.
    pub fn run_to_idle(&mut self) {
        let reason = self.run(None, None);
        debug_assert_eq!(reason, StopReason::Idle);
        debug_assert!(self.engine.queue.is_empty(), "idle with pending events");
    }

    // ----- windowed parallel executor ------------------------------------

    /// The bounded-lag parallel loop: spawns `lanes - 1` persistent worker
    /// threads for the duration of the call, then repeatedly carves safe
    /// windows off the queue, fans each window's per-node work out to the
    /// lanes, and replays the staged effects in canonical order.
    fn run_windowed(&mut self, until: Option<SimTime>, max_events: Option<u64>) -> StopReason {
        self.start_if_needed();
        let workers = self.lanes.min(self.nodes.len()) - 1;
        std::thread::scope(|s| {
            let (res_tx, res_rx) = mpsc::channel::<LaneJob>();
            let mut job_txs = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = mpsc::channel::<LaneJob>();
                let res = res_tx.clone();
                s.spawn(move || {
                    for mut job in rx {
                        execute_lane(&mut job);
                        if res.send(job).is_err() {
                            break;
                        }
                    }
                });
                job_txs.push(tx);
            }
            drop(res_tx);
            self.windowed_loop(until, max_events, &job_txs, &res_rx)
            // job_txs drop here: workers drain and exit, the scope joins.
        })
    }

    fn windowed_loop(
        &mut self,
        until: Option<SimTime>,
        max_events: Option<u64>,
        job_txs: &[mpsc::Sender<LaneJob>],
        res_rx: &mpsc::Receiver<LaneJob>,
    ) -> StopReason {
        let budget_start = self.engine.events_processed;
        loop {
            if let Some(budget) = max_events {
                if self.engine.events_processed - budget_start >= budget {
                    return StopReason::EventBudget;
                }
            }
            let (head_at, head_control) = match self.engine.queue.peek() {
                None => return StopReason::Idle,
                Some(ev) => (
                    ev.at,
                    matches!(
                        ev.kind,
                        EventKind::NodeDown { .. } | EventKind::NodeUp { .. }
                    ),
                ),
            };
            if let Some(deadline) = until {
                if head_at > deadline {
                    // Replicate the sequential deadline stop exactly: the
                    // head is popped and re-queued (consuming a fresh seq).
                    let ev = self.engine.queue.pop().expect("peeked");
                    self.engine.queue.push(ev.at, ev.kind);
                    self.engine.now = deadline;
                    return StopReason::Deadline;
                }
            }
            if head_control {
                // Outage boundaries run inline and sequentially, so the
                // `down` flags are constant within any window.
                let ev = self.engine.queue.pop().expect("peeked");
                self.engine.now = ev.at;
                self.engine.events_processed += 1;
                match ev.kind {
                    EventKind::NodeDown { node } => self.engine.down[node.index()] = true,
                    EventKind::NodeUp { node } => {
                        self.engine.down[node.index()] = false;
                        self.dispatch_restart(node);
                    }
                    _ => unreachable!("head_control matched"),
                }
                continue;
            }
            let mut cap = head_at + self.lookahead;
            if let Some(deadline) = until {
                let dcap = SimTime::from_nanos(deadline.as_nanos().saturating_add(1));
                cap = cap.min(dcap);
            }
            self.run_window(cap, job_txs, res_rx);
        }
    }

    /// Executes one safe window `[head, cap)`: collect → fan out → replay.
    fn run_window(
        &mut self,
        cap: SimTime,
        job_txs: &[mpsc::Sender<LaneJob>],
        res_rx: &mpsc::Receiver<LaneJob>,
    ) {
        let lanes_n = self.lanes.min(self.nodes.len()).max(1);

        // --- collect: pop every dispatchable event below the cap, group
        // adjacent same-instant same-destination deliveries into bursts
        // (the exact grouping the sequential loop's `pop_deliver_if` probe
        // produces), and partition records by destination lane.
        let mut lane_recs: Vec<Vec<WinRec>> = (0..lanes_n).map(|_| Vec::new()).collect();
        let mut dropped = 0u64;
        let mut max_at = self.engine.now;
        // `(at, node)` of the last collected delivery, if the very last
        // collected event was a delivery to an up node — the only case a
        // following delivery may join as a burst mate.
        let mut open_burst: Option<(SimTime, usize)> = None;
        // Staged in-window timers may only run ahead of the real queue up
        // to this bound. It starts at the window cap and shrinks to the
        // first control event's time when one cuts the window short: a
        // timer staged at or past an outage boundary must go back through
        // the real queue so the flipped `down` flag applies to it, exactly
        // as the sequential `(at, seq)` order would.
        let mut stage_cap = cap;
        loop {
            let stop = match self.engine.queue.peek() {
                None => true,
                Some(ev) => {
                    if matches!(
                        ev.kind,
                        EventKind::NodeDown { .. } | EventKind::NodeUp { .. }
                    ) {
                        stage_cap = stage_cap.min(ev.at);
                        true
                    } else {
                        ev.at >= cap
                    }
                }
            };
            if stop {
                break;
            }
            let ev = self.engine.queue.pop().expect("peeked");
            max_at = ev.at;
            match ev.kind {
                EventKind::Deliver { from, to, frame } => {
                    let ix = to.index();
                    if self.engine.down[ix] {
                        dropped += 1;
                        open_burst = None;
                        continue;
                    }
                    let lane = ix % lanes_n;
                    if open_burst == Some((ev.at, ix)) {
                        let rec = lane_recs[lane].last_mut().expect("open burst rec");
                        rec.frames.push((from, frame));
                        rec.events += 1;
                    } else {
                        lane_recs[lane].push(WinRec {
                            node: ix as u32,
                            at: ev.at,
                            seq: ev.seq,
                            timer_token: 0,
                            is_timer: false,
                            frames: vec![(from, frame)],
                            effects: Vec::new(),
                            events: 1,
                        });
                        open_burst = Some((ev.at, ix));
                    }
                }
                EventKind::Timer { node, token } => {
                    let ix = node.index();
                    open_burst = None;
                    if self.engine.down[ix] {
                        dropped += 1;
                        continue;
                    }
                    lane_recs[ix % lanes_n].push(WinRec {
                        node: ix as u32,
                        at: ev.at,
                        seq: ev.seq,
                        timer_token: token,
                        is_timer: true,
                        frames: Vec::new(),
                        effects: Vec::new(),
                        events: 1,
                    });
                }
                _ => unreachable!("control events stop collection"),
            }
        }

        // --- fan out: one job per non-empty lane, carrying the records,
        // the node slots they touch, and a staging context.
        let mut jobs: Vec<LaneJob> = Vec::new();
        for recs in lane_recs.into_iter().filter(|r| !r.is_empty()) {
            let mut pending = BinaryHeap::with_capacity(recs.len());
            let mut slots: Vec<(usize, NodeSlot)> = Vec::new();
            for (i, rec) in recs.iter().enumerate() {
                pending.push(Reverse((rec.at, 0u8, rec.seq, i)));
                let ix = rec.node as usize;
                if !slots.iter().any(|(s, _)| *s == ix) {
                    slots.push((ix, self.nodes[ix].take().expect("node present")));
                }
            }
            let initial_len = recs.len();
            jobs.push(LaneJob {
                jix: jobs.len(),
                recs,
                initial_len,
                pending,
                slots,
                ctx: LaneCtx {
                    now: SimTime::ZERO,
                    cap: stage_cap,
                    adjacency: Arc::clone(&self.engine.adjacency),
                    effects: Vec::new(),
                    staged: Vec::new(),
                    next_rec_ix: 0,
                },
                staged_counter: 0,
                timing: self.timing,
            });
        }

        // --- execute: ship every job but the first to a worker, run the
        // first on this thread, then wait for the rest. A single-lane
        // window skips the channels entirely.
        if jobs.len() >= 2 && !job_txs.is_empty() {
            let total = jobs.len();
            let mut parked: Vec<Option<LaneJob>> = jobs.into_iter().map(Some).collect();
            for j in 1..total {
                let job = parked[j].take().expect("unsent job");
                job_txs[(j - 1) % job_txs.len()]
                    .send(job)
                    .expect("lane worker alive");
            }
            let mut main_job = parked[0].take().expect("main job");
            execute_lane(&mut main_job);
            parked[0] = Some(main_job);
            for _ in 1..total {
                let job = res_rx.recv().expect("lane worker alive");
                let jix = job.jix;
                parked[jix] = Some(job);
            }
            jobs = parked.into_iter().map(|j| j.expect("job returned")).collect();
        } else {
            for job in jobs.iter_mut() {
                execute_lane(job);
            }
        }

        // --- replay: walk every record in global `(at, seq)` order and
        // perform its staged effects against the real engine. Initial
        // records carry the seq they were popped with; a staged in-window
        // timer enters the replay heap when its parent's `TimerIn` effect
        // replays, taking its seq from `bump_seq()` — exactly the stamp the
        // sequential loop's push would have consumed at that point.
        let mut pq: BinaryHeap<Reverse<(SimTime, u64, usize, usize)>> = BinaryHeap::new();
        for job in jobs.iter() {
            for (i, rec) in job.recs[..job.initial_len].iter().enumerate() {
                pq.push(Reverse((rec.at, rec.seq, job.jix, i)));
            }
        }
        while let Some(Reverse((at, _seq, jix, ix))) = pq.pop() {
            let rec = &mut jobs[jix].recs[ix];
            let node = NodeId::from_index(rec.node as usize);
            let events = rec.events;
            let effects = std::mem::take(&mut rec.effects);
            self.engine.now = at;
            self.engine.events_processed += events;
            for eff in effects {
                match eff {
                    Effect::Send { to, frame } => {
                        let _ = self.engine.send(node, to, frame);
                    }
                    Effect::TimerOut { at, token } => {
                        self.engine.queue.push(at, EventKind::Timer { node, token });
                    }
                    Effect::TimerIn { rec: child } => {
                        let seq = self.engine.queue.bump_seq();
                        let child_at = jobs[jix].recs[child].at;
                        pq.push(Reverse((child_at, seq, jix, child)));
                    }
                }
            }
        }
        for job in jobs.iter_mut() {
            for (ix, slot) in job.slots.drain(..) {
                self.nodes[ix] = Some(slot);
            }
        }
        // Down-node drops advance the clock and the event counter in the
        // sequential loop; fold them in after the replay.
        self.engine.now = self.engine.now.max(max_at);
        self.engine.events_processed += dropped;
    }

    /// Pins the number of execution lanes post-build (see
    /// [`NetworkBuilder::set_lanes`]).
    pub fn set_lanes(&mut self, lanes: usize) {
        self.lanes = lanes.max(1);
    }

    /// The configured lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Starts measuring wall-clock time spent inside each node's handlers
    /// (retrievable via [`Network::dispatch_ns`]). Off by default: the
    /// `Instant` reads around every dispatch are cheap but not free.
    pub fn enable_dispatch_timing(&mut self) {
        self.timing = true;
    }

    /// Wall-clock nanoseconds spent inside `node`'s handlers since
    /// [`Network::enable_dispatch_timing`] was called.
    pub fn dispatch_ns(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].as_ref().map_or(0, |s| s.dispatch_ns)
    }

    /// Total wall-clock nanoseconds spent inside [`Network::run`] /
    /// [`Network::run_chunk`] so far (dispatch plus queue/replay overhead).
    pub fn run_wall_ns(&self) -> u64 {
        self.run_wall_ns
    }
}

/// One dispatchable unit of a window: a delivery burst or a timer firing,
/// plus (after lane execution) the effects it produced.
#[derive(Debug)]
struct WinRec {
    /// Target node index.
    node: u32,
    at: SimTime,
    /// Real queue seq for initial records (replay key); staged records get
    /// their seq at replay time and leave this 0.
    seq: u64,
    timer_token: u64,
    is_timer: bool,
    /// Delivery payloads in FIFO order (empty for timers).
    frames: Vec<(NodeId, Frame)>,
    effects: Vec<Effect>,
    /// How many queue events this record accounts for (burst size, or 1).
    events: u64,
}

/// Everything one lane needs to execute its share of a window, fully owned
/// so it can move across the worker channel.
#[derive(Debug)]
struct LaneJob {
    /// Position in this window's job list (routes the job back after the
    /// worker round-trip).
    jix: usize,
    /// Initial records (prefix of `initial_len`) plus staged in-window
    /// timer records appended during execution.
    recs: Vec<WinRec>,
    initial_len: usize,
    /// Lane-local dispatch order: `(at, class, n, rec)` with class 0 =
    /// initial (n = real seq) and class 1 = staged (n = staging counter).
    /// Initial seqs all predate the window, staged stamps all postdate it,
    /// so this matches the sequential `(at, seq)` order restricted to the
    /// lane.
    pending: BinaryHeap<Reverse<(SimTime, u8, u64, usize)>>,
    /// The node slots this lane's records touch.
    slots: Vec<(usize, NodeSlot)>,
    ctx: LaneCtx,
    staged_counter: u64,
    timing: bool,
}

/// Runs one lane's records to completion, staging effects into the records.
fn execute_lane(job: &mut LaneJob) {
    let LaneJob {
        recs,
        pending,
        slots,
        ctx,
        staged_counter,
        timing,
        ..
    } = job;
    let mut burst: Vec<(NodeId, Frame)> = Vec::new();
    while let Some(Reverse((at, _class, _n, ix))) = pending.pop() {
        let (node_ix, is_timer, token) = {
            let rec = &mut recs[ix];
            std::mem::swap(&mut burst, &mut rec.frames);
            (rec.node as usize, rec.is_timer, rec.timer_token)
        };
        ctx.now = at;
        ctx.next_rec_ix = recs.len();
        debug_assert!(ctx.effects.is_empty() && ctx.staged.is_empty());
        let slot = &mut slots
            .iter_mut()
            .find(|(s, _)| *s == node_ix)
            .expect("slot in lane")
            .1;
        let t0 = timing.then(Instant::now);
        {
            let mut node_ctx = Context {
                inner: CtxInner::Lane(ctx),
                me: NodeId::from_index(node_ix),
                rng: &mut slot.rng,
            };
            if is_timer {
                slot.node.on_timer(token, &mut node_ctx);
            } else {
                slot.node.on_frames(&mut burst, &mut node_ctx);
            }
        }
        if let Some(t0) = t0 {
            slot.dispatch_ns += t0.elapsed().as_nanos() as u64;
        }
        burst.clear();
        recs[ix].effects = std::mem::take(&mut ctx.effects);
        for (t_at, t_token) in ctx.staged.drain(..) {
            let child_ix = recs.len();
            recs.push(WinRec {
                node: node_ix as u32,
                at: t_at,
                seq: 0,
                timer_token: t_token,
                is_timer: true,
                frames: Vec::new(),
                effects: Vec::new(),
                events: 1,
            });
            pending.push(Reverse((t_at, 1u8, *staged_counter, child_ix)));
            *staged_counter += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    /// Sends `count` frames to a peer on start; counts echoes.
    struct Pinger {
        peer: Option<NodeId>,
        count: usize,
        echoes: usize,
        last_rtt_ns: u64,
        sent_at: SimTime,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if let Some(peer) = self.peer {
                self.sent_at = ctx.now();
                for _ in 0..self.count {
                    ctx.send(peer, Frame::new(Bytes::from_static(b"ping")))
                        .expect("linked");
                }
            }
        }
        fn on_frame(&mut self, from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
            if self.peer.is_some() {
                self.echoes += 1;
                self.last_rtt_ns = (ctx.now() - self.sent_at).as_nanos();
            } else {
                ctx.send(from, frame).expect("linked");
            }
        }
    }

    fn pinger(peer: Option<NodeId>, count: usize) -> Pinger {
        Pinger {
            peer,
            count,
            echoes: 0,
            last_rtt_ns: 0,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut b = NetworkBuilder::new(0);
        let echo = b.add_node(pinger(None, 0));
        let ping = b.add_node(pinger(Some(echo), 1));
        // 8 Gbps => 1 ns/byte; 4-byte frame; 500 ns propagation each way.
        b.connect(
            ping,
            echo,
            LinkConfig::new(8e9, SimDuration::from_nanos(500)),
        );
        let mut net = b.build();
        net.run_to_idle();
        let p: &Pinger = net.node(ping);
        assert_eq!(p.echoes, 1);
        // 2 × (4 ns serialization + 500 ns propagation)
        assert_eq!(p.last_rtt_ns, 2 * (4 + 500));
    }

    #[test]
    fn serialization_is_fifo_under_burst() {
        let mut b = NetworkBuilder::new(0);
        let echo = b.add_node(pinger(None, 0));
        let ping = b.add_node(pinger(Some(echo), 100));
        b.connect(ping, echo, LinkConfig::new(8e9, SimDuration::from_nanos(0)));
        let mut net = b.build();
        net.run_to_idle();
        let p: &Pinger = net.node(ping);
        assert_eq!(p.echoes, 100);
        // The burst of 100 4-byte frames serializes back-to-back (400 ns),
        // then the last echo serializes back (4 ns).
        assert_eq!(p.last_rtt_ns, 100 * 4 + 4);
    }

    #[test]
    fn lossy_link_drops_frames() {
        let mut b = NetworkBuilder::new(3);
        let echo = b.add_node(pinger(None, 0));
        let ping = b.add_node(pinger(Some(echo), 10_000));
        let lossy = LinkConfig::new(8e9, SimDuration::ZERO)
            .with_faults(crate::faults::FaultModel::reliable().with_loss(0.5));
        b.connect_directed(ping, echo, lossy);
        b.connect_directed(echo, ping, LinkConfig::new(8e9, SimDuration::ZERO));
        let mut net = b.build();
        net.run_to_idle();
        let stats = net.link_stats(ping, echo);
        assert_eq!(stats.frames_sent, 10_000);
        assert!(stats.frames_dropped > 4_500 && stats.frames_dropped < 5_500);
        let p: &Pinger = net.node(ping);
        assert_eq!(p.echoes as u64, stats.frames_delivered);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let mut b = NetworkBuilder::new(3);
        let echo = b.add_node(pinger(None, 0));
        let ping = b.add_node(pinger(Some(echo), 1000));
        let dup = LinkConfig::new(8e9, SimDuration::from_nanos(10))
            .with_faults(crate::faults::FaultModel::reliable().with_duplication(1.0));
        b.connect_directed(ping, echo, dup);
        b.connect_directed(
            echo,
            ping,
            LinkConfig::new(8e9, SimDuration::from_nanos(10)),
        );
        let mut net = b.build();
        net.run_to_idle();
        let p: &Pinger = net.node(ping);
        assert_eq!(p.echoes, 2000);
    }

    #[test]
    fn deadline_stops_early_and_resumes() {
        let mut b = NetworkBuilder::new(0);
        let echo = b.add_node(pinger(None, 0));
        let ping = b.add_node(pinger(Some(echo), 1));
        b.connect(
            ping,
            echo,
            LinkConfig::new(8e9, SimDuration::from_millis(10)),
        );
        let mut net = b.build();
        let r = net.run(Some(SimTime::from_nanos(100)), None);
        assert_eq!(r, StopReason::Deadline);
        assert_eq!(net.node::<Pinger>(ping).echoes, 0);
        let r = net.run(None, None);
        assert_eq!(r, StopReason::Idle);
        assert_eq!(net.node::<Pinger>(ping).echoes, 1);
    }

    #[test]
    fn event_budget_stops() {
        let mut b = NetworkBuilder::new(0);
        let echo = b.add_node(pinger(None, 0));
        let ping = b.add_node(pinger(Some(echo), 100));
        b.connect(ping, echo, LinkConfig::new(8e9, SimDuration::ZERO));
        let mut net = b.build();
        let r = net.run(None, Some(5));
        assert_eq!(r, StopReason::EventBudget);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_micros(3), 3);
                ctx.set_timer(SimDuration::from_micros(1), 1);
                ctx.set_timer(SimDuration::from_micros(2), 2);
            }
            fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {}
            fn on_timer(&mut self, token: u64, _: &mut Context<'_>) {
                self.fired.push(token);
            }
        }
        let mut b = NetworkBuilder::new(0);
        let n = b.add_node(TimerNode { fired: vec![] });
        let mut net = b.build();
        net.run_to_idle();
        assert_eq!(net.node::<TimerNode>(n).fired, vec![1, 2, 3]);
    }

    #[test]
    fn send_to_unlinked_node_errors() {
        struct Lonely {
            result: Option<Result<(), SendError>>,
        }
        impl Node for Lonely {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                self.result = Some(ctx.send(NodeId::from_index(1), Frame::new(Bytes::new())));
            }
            fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {}
        }
        let mut b = NetworkBuilder::new(0);
        let a = b.add_node(Lonely { result: None });
        let _other = b.add_node(Lonely { result: None });
        let mut net = b.build();
        net.run_to_idle();
        let got = net.node::<Lonely>(a).result.expect("ran");
        assert!(got.is_err());
        assert!(!got.unwrap_err().to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn duplicate_link_rejected() {
        let mut b = NetworkBuilder::new(0);
        let a = b.add_node(pinger(None, 0));
        let c = b.add_node(pinger(None, 0));
        b.connect(a, c, LinkConfig::new(1e9, SimDuration::ZERO));
        b.connect(a, c, LinkConfig::new(1e9, SimDuration::ZERO));
    }

    #[test]
    fn adjacency_handles_gaps_and_insertion_order() {
        // Destinations with a hole (0->1 and 0->4, nothing to 2 or 3),
        // inserted in scrambled order: the dense tables must resolve every
        // real link and reject the gap.
        struct Fanout {
            targets: Vec<NodeId>,
            gap_result: Option<Result<(), SendError>>,
        }
        impl Node for Fanout {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                if self.targets.is_empty() {
                    return; // pure sink
                }
                for &t in &self.targets {
                    ctx.send(t, Frame::new(Bytes::from_static(b"x")))
                        .expect("linked");
                }
                self.gap_result = Some(ctx.send(NodeId::from_index(2), Frame::new(Bytes::new())));
            }
            fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {}
        }
        let mut b = NetworkBuilder::new(0);
        // Ids are assigned sequentially: hub=0, sinks=1..=4.
        let hub = b.add_node(Fanout {
            targets: vec![NodeId::from_index(4), NodeId::from_index(1)],
            gap_result: None,
        });
        let sinks: Vec<NodeId> = (0..4)
            .map(|_| {
                b.add_node(Fanout {
                    targets: vec![],
                    gap_result: None,
                })
            })
            .collect();
        // Connect 0->4 before 0->1 to scramble insertion order.
        b.connect_directed(hub, sinks[3], LinkConfig::new(8e9, SimDuration::ZERO));
        b.connect_directed(hub, sinks[0], LinkConfig::new(8e9, SimDuration::ZERO));
        let mut net = b.build();
        net.run_to_idle();
        assert!(net.node::<Fanout>(hub).gap_result.expect("ran").is_err());
        assert_eq!(net.link_stats(hub, sinks[0]).frames_sent, 1);
        assert_eq!(net.link_stats(hub, sinks[3]).frames_sent, 1);
    }

    #[test]
    fn fault_seed_controls_drops_independently_of_sim_seed() {
        let run = |fault_seed: Option<u64>| {
            let mut b = NetworkBuilder::new(3);
            let echo = b.add_node(pinger(None, 0));
            let ping = b.add_node(pinger(Some(echo), 2_000));
            if let Some(s) = fault_seed {
                b.set_fault_seed(s);
            }
            let lossy = LinkConfig::new(8e9, SimDuration::ZERO)
                .with_faults(crate::faults::FaultModel::reliable().with_loss(0.5));
            b.connect_directed(ping, echo, lossy);
            b.connect_directed(echo, ping, LinkConfig::new(8e9, SimDuration::ZERO));
            let mut net = b.build();
            net.run_to_idle();
            net.link_stats(ping, echo).frames_dropped
        };
        // Defaulted fault seed equals the sim seed: byte-compatible with the
        // pre-fault-rng behaviour and with an explicit matching seed.
        assert_eq!(run(None), run(Some(3)));
        // A different fault seed draws a different loss pattern.
        assert_ne!(run(Some(3)), run(Some(4)));
        // Same inputs, same outcome: the stream is fully deterministic.
        assert_eq!(run(Some(4)), run(Some(4)));
    }

    #[test]
    fn frame_trace_captures_fates_in_bounded_ring() {
        let mut b = NetworkBuilder::new(3);
        let echo = b.add_node(pinger(None, 0));
        let ping = b.add_node(pinger(Some(echo), 100));
        let faulty = LinkConfig::new(8e9, SimDuration::ZERO)
            .with_faults(crate::faults::FaultModel::reliable().with_loss(0.3));
        b.connect_directed(ping, echo, faulty);
        b.connect_directed(echo, ping, LinkConfig::new(8e9, SimDuration::ZERO));
        let mut net = b.build();
        net.enable_frame_trace(64);
        net.run_to_idle();
        let dropped = net.link_stats(ping, echo).frames_dropped;
        assert!(dropped > 0, "0.3 loss over 100 frames");
        // 100 sends + echoes of the survivors; ring keeps only the last 64.
        assert_eq!(net.frames_traced(), 100 + (100 - dropped));
        assert_eq!(net.frame_trace().count(), 64);
        assert!(net
            .frame_trace()
            .all(|e| matches!(e.fate, TraceFate::Dropped | TraceFate::Delivered { .. })));
    }

    #[test]
    fn burst_delivery_matches_sequential_trace_and_event_count() {
        // A star of senders whose frames land on the hub at the same instant
        // (equal links, simultaneous sends) so `run` coalesces them into
        // bursts. A hub overriding `on_frames` must leave every observable —
        // frame trace (send times, fates, fault-RNG draws), event count,
        // echo count — identical to one using the default one-at-a-time
        // path.
        struct SeqHub; // default on_frames
        impl Node for SeqHub {
            fn on_frame(&mut self, from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
                ctx.send(from, frame).expect("linked");
            }
        }
        struct BatchHub {
            bursts: Vec<usize>,
        }
        impl Node for BatchHub {
            fn on_frame(&mut self, from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
                ctx.send(from, frame).expect("linked");
            }
            fn on_frames(&mut self, burst: &mut Vec<(NodeId, Frame)>, ctx: &mut Context<'_>) {
                self.bursts.push(burst.len());
                for (from, frame) in burst.drain(..) {
                    self.on_frame(from, frame, ctx);
                }
            }
        }

        fn run_star<H: Node>(hub_node: H) -> (Vec<FrameTraceEntry>, u64, usize, Network) {
            let mut b = NetworkBuilder::new(7);
            let hub = b.add_node(hub_node);
            let pingers: Vec<NodeId> = (0..4).map(|_| b.add_node(pinger(Some(hub), 25))).collect();
            // Faults on the reply path make the trace sensitive to the order
            // of the hub's sends: any reordering shifts the fault-RNG stream.
            let faulty = LinkConfig::new(8e9, SimDuration::from_nanos(100)).with_faults(
                crate::faults::FaultModel::reliable()
                    .with_loss(0.1)
                    .with_duplication(0.05),
            );
            for &p in &pingers {
                b.connect_directed(p, hub, LinkConfig::new(8e9, SimDuration::from_nanos(100)));
                b.connect_directed(hub, p, faulty.clone());
            }
            let mut net = b.build();
            net.enable_frame_trace(4096);
            net.run_to_idle();
            let trace: Vec<FrameTraceEntry> = net.frame_trace().copied().collect();
            let events = net.events_processed();
            let echoes = pingers
                .iter()
                .map(|&p| net.node::<Pinger>(p).echoes)
                .sum::<usize>();
            (trace, events, echoes, net)
        }

        let (seq_trace, seq_events, seq_echoes, _) = run_star(SeqHub);
        let (bat_trace, bat_events, bat_echoes, bat_net) = run_star(BatchHub { bursts: vec![] });
        assert_eq!(seq_trace, bat_trace, "frame traces must be identical");
        assert_eq!(seq_events, bat_events, "event accounting must be identical");
        assert_eq!(seq_echoes, bat_echoes);
        let hub: &BatchHub = bat_net.node(NodeId::from_index(0));
        assert!(
            hub.bursts.iter().any(|&n| n > 1),
            "the topology must actually exercise multi-frame bursts, got {:?}",
            &hub.bursts[..hub.bursts.len().min(10)]
        );
    }

    #[test]
    fn scheduled_outage_drops_frames_and_timers_then_restarts() {
        // An echo node goes down mid-run: frames and timers addressed to it
        // during the outage vanish, its restart hook fires exactly once, and
        // frames sent after the restart are served normally.
        struct CrashyEcho {
            restarts: usize,
            timers: usize,
        }
        impl Node for CrashyEcho {
            fn on_frame(&mut self, from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
                ctx.send(from, frame).expect("linked");
            }
            fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_>) {
                self.timers += 1;
            }
            fn on_restart(&mut self, _ctx: &mut Context<'_>) {
                self.restarts += 1;
            }
        }
        let mut b = NetworkBuilder::new(0);
        let echo = b.add_node(CrashyEcho {
            restarts: 0,
            timers: 0,
        });
        let ping = b.add_node(pinger(Some(echo), 0));
        b.connect(ping, echo, LinkConfig::new(8e9, SimDuration::from_nanos(100)));
        let mut net = b.build();
        // A timer the echo arms before the crash, firing during the outage.
        net.with_node::<CrashyEcho, _>(echo, |_n, ctx| {
            ctx.set_timer(SimDuration::from_micros(5), 1);
        });
        net.schedule_node_down(echo, SimTime::from_nanos(1_000));
        net.schedule_node_up(echo, SimTime::from_nanos(10_000));
        // Sent while up: echoed. Sent during the outage: dropped.
        net.with_node::<Pinger, _>(ping, |_p, ctx| {
            ctx.send(echo, Frame::new(Bytes::from_static(b"pre")))
                .expect("linked");
        });
        net.run(Some(SimTime::from_nanos(2_000)), None);
        assert!(net.node_is_down(echo));
        net.with_node::<Pinger, _>(ping, |_p, ctx| {
            ctx.send(echo, Frame::new(Bytes::from_static(b"mid")))
                .expect("linked");
        });
        net.run_to_idle();
        assert!(!net.node_is_down(echo));
        net.with_node::<Pinger, _>(ping, |_p, ctx| {
            ctx.send(echo, Frame::new(Bytes::from_static(b"post")))
                .expect("linked");
        });
        net.run_to_idle();
        let e: &CrashyEcho = net.node(echo);
        assert_eq!(e.restarts, 1, "restart hook fires once");
        assert_eq!(e.timers, 0, "outage swallowed the pending timer");
        // pre + post echoed, mid dropped.
        assert_eq!(net.node::<Pinger>(ping).echoes, 2);
    }

    #[test]
    fn with_node_injects_work_mid_run() {
        let mut b = NetworkBuilder::new(0);
        let echo = b.add_node(pinger(None, 0));
        let ping = b.add_node(pinger(Some(echo), 0));
        b.connect(ping, echo, LinkConfig::new(8e9, SimDuration::ZERO));
        let mut net = b.build();
        net.run_to_idle();
        net.with_node::<Pinger, _>(ping, |p, ctx| {
            p.sent_at = ctx.now();
            ctx.send(echo, Frame::new(Bytes::from_static(b"late")))
                .expect("linked");
        });
        net.run_to_idle();
        assert_eq!(net.node::<Pinger>(ping).echoes, 1);
    }

    /// Echoes each frame back after a 200 ns delay — well inside the 1 µs
    /// lookahead window, so the windowed executor must stage and execute
    /// the timer within the same window it was armed in.
    struct TimerEcho {
        pending: VecDeque<(NodeId, Frame)>,
    }
    impl Node for TimerEcho {
        fn on_frame(&mut self, from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
            self.pending.push_back((from, frame));
            ctx.set_timer(SimDuration::from_nanos(200), 0);
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
            if let Some((from, frame)) = self.pending.pop_front() {
                ctx.send(from, frame).expect("linked");
            }
        }
    }

    /// Full observable state of one run, for cross-lane comparison.
    fn run_timer_star(lanes: usize) -> (Vec<FrameTraceEntry>, u64, usize, u64) {
        let mut b = NetworkBuilder::new(7);
        b.set_lanes(lanes);
        let hub = b.add_node(TimerEcho {
            pending: VecDeque::new(),
        });
        let pingers: Vec<NodeId> = (0..4).map(|_| b.add_node(pinger(Some(hub), 25))).collect();
        // Faults on the reply path make the trace sensitive to the global
        // order of the hub's sends: any cross-lane reordering shifts the
        // fault-RNG stream and shows up as a trace diff.
        let faulty = LinkConfig::new(8e9, SimDuration::from_micros(1)).with_faults(
            crate::faults::FaultModel::reliable()
                .with_loss(0.1)
                .with_duplication(0.05),
        );
        for &p in &pingers {
            b.connect_directed(p, hub, LinkConfig::new(8e9, SimDuration::from_micros(1)));
            b.connect_directed(hub, p, faulty.clone());
        }
        let mut net = b.build();
        net.enable_frame_trace(8192);
        net.run_to_idle();
        let trace: Vec<FrameTraceEntry> = net.frame_trace().copied().collect();
        let echoes = pingers
            .iter()
            .map(|&p| net.node::<Pinger>(p).echoes)
            .sum::<usize>();
        (trace, net.events_processed(), echoes, net.now().as_nanos())
    }

    #[test]
    fn windowed_lanes_match_sequential_with_in_window_timers() {
        let seq = run_timer_star(1);
        assert!(seq.2 > 0, "echoes must flow");
        for lanes in [2, 4, 7] {
            let par = run_timer_star(lanes);
            assert_eq!(seq, par, "lanes={lanes} diverged from sequential");
        }
    }

    /// Broadcasts `count` frames to every receiver back-to-back on start.
    struct Broadcaster {
        receivers: Vec<NodeId>,
        count: usize,
    }
    impl Node for Broadcaster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                for &r in &self.receivers {
                    ctx.send(r, Frame::new(Bytes::from_static(b"data")))
                        .expect("linked");
                }
            }
        }
        fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {}
    }

    /// Records the exact arrival order, then echoes to a faulty sink so the
    /// global replay order is pinned by the fault-RNG stream too.
    struct OrderRecorder {
        sink: NodeId,
        log: Vec<(u64, usize)>,
    }
    impl Node for OrderRecorder {
        fn on_frame(&mut self, from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
            self.log.push((ctx.now().as_nanos(), from.index()));
            ctx.send(self.sink, frame).expect("linked");
        }
    }

    #[test]
    fn same_instant_cross_lane_deliveries_stay_fifo() {
        // Four broadcasters fan the same frame sequence out to two
        // receivers in different lanes. Every broadcast pair lands at the
        // same instant on both receivers, so the windowed executor must
        // interleave the two lanes' records in exact global seq order when
        // replaying — any lane-major replay shows up as a reordered log or
        // a shifted fault stream.
        let run = |lanes: usize| {
            let mut b = NetworkBuilder::new(11);
            b.set_lanes(lanes);
            let sink = b.add_node(Broadcaster {
                receivers: vec![],
                count: 0,
            });
            let r1 = b.add_node(OrderRecorder { sink, log: vec![] });
            let r2 = b.add_node(OrderRecorder { sink, log: vec![] });
            let senders: Vec<NodeId> = (0..4)
                .map(|_| {
                    b.add_node(Broadcaster {
                        receivers: vec![r1, r2],
                        count: 10,
                    })
                })
                .collect();
            let clean = LinkConfig::new(8e9, SimDuration::from_micros(1));
            let faulty = clean
                .clone()
                .with_faults(crate::faults::FaultModel::reliable().with_loss(0.2));
            for &s in &senders {
                b.connect_directed(s, r1, clean.clone());
                b.connect_directed(s, r2, clean.clone());
            }
            b.connect_directed(r1, sink, faulty.clone());
            b.connect_directed(r2, sink, faulty);
            let mut net = b.build();
            net.enable_frame_trace(8192);
            net.run_to_idle();
            let trace: Vec<FrameTraceEntry> = net.frame_trace().copied().collect();
            let log1 = net.node::<OrderRecorder>(r1).log.clone();
            let log2 = net.node::<OrderRecorder>(r2).log.clone();
            (trace, log1, log2, net.events_processed())
        };
        let seq = run(1);
        assert!(!seq.1.is_empty() && !seq.2.is_empty());
        for lanes in [2, 4] {
            assert_eq!(seq, run(lanes), "lanes={lanes} reordered deliveries");
        }
    }

    #[test]
    fn run_chunk_reaches_same_final_state_as_sequential() {
        // Drive the same faulty timer-star to idle through tiny chunks at 4
        // lanes: the coarse budget may overshoot window boundaries, but the
        // final observable state must be byte-identical to the lanes=1
        // straight run.
        let seq = run_timer_star(1);
        let mut b = NetworkBuilder::new(7);
        b.set_lanes(4);
        let hub = b.add_node(TimerEcho {
            pending: VecDeque::new(),
        });
        let pingers: Vec<NodeId> = (0..4).map(|_| b.add_node(pinger(Some(hub), 25))).collect();
        let faulty = LinkConfig::new(8e9, SimDuration::from_micros(1)).with_faults(
            crate::faults::FaultModel::reliable()
                .with_loss(0.1)
                .with_duplication(0.05),
        );
        for &p in &pingers {
            b.connect_directed(p, hub, LinkConfig::new(8e9, SimDuration::from_micros(1)));
            b.connect_directed(hub, p, faulty.clone());
        }
        let mut net = b.build();
        net.enable_frame_trace(8192);
        let mut budget_stops = 0u32;
        loop {
            match net.run_chunk(7) {
                StopReason::Idle => break,
                StopReason::EventBudget => budget_stops += 1,
                StopReason::Deadline => unreachable!("no deadline set"),
            }
            assert!(budget_stops < 100_000, "runaway chunk loop");
        }
        let trace: Vec<FrameTraceEntry> = net.frame_trace().copied().collect();
        let echoes = pingers
            .iter()
            .map(|&p| net.node::<Pinger>(p).echoes)
            .sum::<usize>();
        let par = (trace, net.events_processed(), echoes, net.now().as_nanos());
        assert_eq!(seq, par);
        assert!(budget_stops > 0, "chunking must actually engage");
    }

    #[test]
    fn scheduled_outage_is_lane_invariant() {
        // A crash-restart of the hub mid-run: control events split windows
        // and run inline, so the surviving traffic must stay byte-identical
        // at any lane count.
        let run = |lanes: usize| {
            let mut b = NetworkBuilder::new(5);
            b.set_lanes(lanes);
            let hub = b.add_node(TimerEcho {
                pending: VecDeque::new(),
            });
            let pingers: Vec<NodeId> =
                (0..4).map(|_| b.add_node(pinger(Some(hub), 25))).collect();
            let faulty = LinkConfig::new(8e9, SimDuration::from_micros(1)).with_faults(
                crate::faults::FaultModel::reliable().with_loss(0.1),
            );
            for &p in &pingers {
                b.connect_directed(p, hub, LinkConfig::new(8e9, SimDuration::from_micros(1)));
                b.connect_directed(hub, p, faulty.clone());
            }
            let mut net = b.build();
            net.schedule_node_down(hub, SimTime::from_nanos(2_500));
            net.schedule_node_up(hub, SimTime::from_nanos(4_300));
            net.enable_frame_trace(8192);
            net.run_to_idle();
            let trace: Vec<FrameTraceEntry> = net.frame_trace().copied().collect();
            let echoes = pingers
                .iter()
                .map(|&p| net.node::<Pinger>(p).echoes)
                .sum::<usize>();
            (trace, net.events_processed(), echoes, net.now().as_nanos())
        };
        let seq = run(1);
        for lanes in [2, 4] {
            assert_eq!(seq, run(lanes), "lanes={lanes} diverged across outage");
        }
    }
}
