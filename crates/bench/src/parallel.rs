//! Multi-core figure runner: fans independent benchmark jobs across all
//! available cores with scoped threads (no extra dependencies).
//!
//! Every figure module's `run(Scale) -> String` is self-contained — each
//! builds its own simulated network from its own seeds — so the jobs are
//! embarrassingly parallel. Workers pull jobs from a shared atomic index
//! (work stealing), which keeps the cores busy even though the figures have
//! very different runtimes. Output is reassembled in submission order, so
//! the concatenated report is byte-identical to a sequential run.
//!
//! On a single-core machine (`available_parallelism() == 1`) this degrades
//! to the sequential schedule with one worker thread; only the wall clock
//! changes with the core count, never the results.

use crate::Scale;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One named, independent unit of benchmark work.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Short identifier used in progress output and BENCH_baseline.json.
    pub name: &'static str,
    /// The figure entry point.
    pub run: fn(Scale) -> String,
}

/// Output and timing of one completed [`Job`].
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's name.
    pub name: &'static str,
    /// The figure's rendered report section.
    pub output: String,
    /// Wall-clock time the job took on its worker.
    pub elapsed: Duration,
}

/// The full set of figure/table jobs behind [`crate::run_all`], in report
/// order.
pub fn figure_jobs() -> Vec<Job> {
    vec![
        Job { name: "fig3", run: crate::fig3::run },
        Job { name: "fig7", run: crate::fig7::run },
        Job { name: "table1", run: crate::table1::run },
        Job { name: "fig8", run: crate::fig8::run },
        Job { name: "fig9", run: crate::fig9::run },
        Job { name: "fig10", run: crate::fig10::run },
        Job { name: "fig12", run: crate::fig12::run },
        Job { name: "fig13", run: crate::fig13::run },
    ]
}

/// Number of worker threads for `jobs` pending jobs: `ASK_BENCH_WORKERS`
/// if set (so CI and baseline refreshes can pin an exact worker count for
/// apples-to-apples wall times), otherwise one per available core — but
/// never more workers than jobs, and never zero.
pub fn worker_count(jobs: usize) -> usize {
    let cores = std::env::var("ASK_BENCH_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    cores.min(jobs.max(1))
}

/// Runs every job across [`worker_count`] scoped threads and returns the
/// results in submission order.
pub fn run_jobs(jobs: &[Job], scale: Scale) -> Vec<JobResult> {
    let workers = worker_count(jobs.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, String, Duration)>();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(ix) else { break };
                let start = Instant::now();
                let output = (job.run)(scale);
                // The receiver outlives the scope; a send only fails if the
                // main thread already panicked, in which case we just stop.
                if tx.send((ix, output, start.elapsed())).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<JobResult>> = jobs.iter().map(|_| None).collect();
    for (ix, output, elapsed) in rx {
        slots[ix] = Some(JobResult {
            name: jobs[ix].name,
            output,
            elapsed,
        });
    }
    slots
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_capped_by_jobs() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(64) >= 1);
    }

    #[test]
    fn env_override_pins_worker_count() {
        // The override is still capped by the job count; the sibling tests'
        // assertions hold under any positive override, so this is safe to
        // run concurrently with them.
        std::env::set_var("ASK_BENCH_WORKERS", "2");
        assert_eq!(worker_count(8), 2);
        assert_eq!(worker_count(1), 1);
        std::env::remove_var("ASK_BENCH_WORKERS");
        assert!(worker_count(8) >= 1);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        fn slow(_: Scale) -> String {
            std::thread::sleep(Duration::from_millis(20));
            "slow".into()
        }
        fn fast(_: Scale) -> String {
            "fast".into()
        }
        let jobs = [
            Job { name: "a", run: slow },
            Job { name: "b", run: fast },
            Job { name: "c", run: fast },
        ];
        let results = run_jobs(&jobs, Scale::Quick);
        let names: Vec<_> = results.iter().map(|r| r.name).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(results[0].output, "slow");
        assert_eq!(results[2].output, "fast");
    }
}
