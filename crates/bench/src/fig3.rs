//! Figure 3: aggregated key-value tuples per second (AKV/s) on a single
//! machine — vanilla Spark vs the strawman single-key INA vs full ASK.
//!
//! Paper shape: the strawman reaches the 100 Gbps line rate with 16 cores
//! (up to 5× Spark at equal cores; 3.4× Spark's all-core peak), and full
//! multi-key ASK reaches up to 155× Spark.

use crate::output::Table;
use crate::runners::{run_ask, AskRun, Scale};
use ask::prelude::*;
use ask_baselines::prelude::*;
use ask_workloads::text::uniform_stream;

/// Measures aggregated-tuples-per-second on the real stack for a given
/// packet layout (1 slot = the strawman, 32 slots = full ASK) with
/// `channels` data channels (≈ CPU cores doing packet IO).
fn measured_akv(slots: usize, channels: usize, tuples: u64) -> f64 {
    let mut cfg = AskConfig::paper_default();
    cfg.layout = PacketLayout::short_only(slots);
    cfg.data_channels = channels;
    cfg.region_aggregators = cfg.aggregators_per_aa / channels.max(1);
    let run = AskRun {
        tasks: channels,
        ..AskRun::paper(cfg)
    };
    let report = run_ask(&run, vec![uniform_stream(3, 4_096, tuples)]);
    let elapsed = report.sender_elapsed_s[0].max(1e-12);
    (report.switch.tuples_aggregated + report.switch.tuples_forwarded) as f64 / elapsed
}

/// Regenerates Figure 3.
pub fn run(scale: Scale) -> String {
    let cost = HostCostModel::testbed();
    let mut t = Table::new(
        "Figure 3 — single-machine aggregation throughput (AKV/s, millions)",
        &[
            "cores",
            "Spark",
            "Strawman INA",
            "ASK (multi-key)",
            "INA/Spark",
            "ASK/Spark",
        ],
    );
    let mut max_strawman_gain: f64 = 0.0;
    let mut max_ask_gain: f64 = 0.0;
    for cores in [1usize, 2, 4, 8, 16, 32, 56] {
        let spark = akv::spark_akv_per_sec(cores);
        let straw = akv::strawman_akv_per_sec(cores, &cost);
        let ask = akv::ask_akv_per_sec(cores, &cost);
        max_strawman_gain = max_strawman_gain.max(straw / spark);
        max_ask_gain = max_ask_gain.max(ask / spark);
        t.row(&[
            cores.to_string(),
            format!("{:.1}", spark / 1e6),
            format!("{:.1}", straw / 1e6),
            format!("{:.1}", ask / 1e6),
            format!("{:.1}x", straw / spark),
            format!("{:.1}x", ask / spark),
        ]);
    }
    t.note(&format!(
        "max strawman gain {max_strawman_gain:.1}x (paper: strawman ~5x at 16 cores, 3.4x vs Spark's peak)"
    ));
    t.note(&format!(
        "max ASK gain {max_ask_gain:.1}x (paper: up to 155x, Figure 3(c))"
    ));
    t.note("Spark peaks near its all-core limit; INA saturates the NIC with few cores");

    // Cross-check the models against the *measured* stack: the strawman is
    // ASK with a 1-tuple layout, full ASK uses 32-tuple packets.
    let tuples = scale.count(30_000, 300_000);
    let mut m = Table::new(
        "Figure 3 cross-check — AKV/s measured on the real stack (M/s)",
        &[
            "cores (channels)",
            "strawman (1 tuple/pkt)",
            "ASK (32 tuples/pkt)",
            "ratio",
        ],
    );
    for channels in [1usize, 2, 4] {
        let straw = measured_akv(1, channels, tuples / 8);
        let full = measured_akv(32, channels, tuples);
        m.row(&[
            channels.to_string(),
            format!("{:.1}", straw / 1e6),
            format!("{:.1}", full / 1e6),
            format!("{:.0}x", full / straw),
        ]);
    }
    m.note("vectorization multiplies per-core AKV/s by the tuples-per-packet factor");
    format!("{}\n{}", t.render(), m.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let out = run(Scale::Quick);
        assert!(out.contains("Figure 3"));
        // ASK's headline gain lands in the paper's order of magnitude.
        let cost = HostCostModel::testbed();
        let best = (1..=56)
            .map(|c| akv::ask_akv_per_sec(c, &cost) / akv::spark_akv_per_sec(c))
            .fold(0.0f64, f64::max);
        assert!(best > 100.0 && best < 400.0, "ASK max gain {best}");
    }
}
