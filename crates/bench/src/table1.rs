//! Table 1: traffic reduction on the four production-trace stand-ins —
//! fraction of key-value tuples aggregated by the switch, and fraction of
//! data packets fully absorbed (switch-ACKed).
//!
//! Paper values: tuples 92.18 / 85.73 / 94.32 / 91.49 %, packets 72.01 /
//! 84.35 / 90.36 / 88.59 % for yelp / NG / BAC / LMDB.

use crate::output::{pct, Table};
use crate::runners::{run_ask, AskRun, Scale};
use ask::prelude::*;
use ask_workloads::text::TextCorpus;

/// Paper reference values per dataset (tuple %, packet %).
pub const PAPER: [(&str, f64, f64); 4] = [
    ("yelp", 0.9218, 0.7201),
    ("NG", 0.8573, 0.8435),
    ("BAC", 0.9432, 0.9036),
    ("LMDB", 0.9149, 0.8859),
];

/// Regenerates Table 1.
pub fn run(scale: Scale) -> String {
    let tuples = scale.count(150_000, 2_000_000);
    let mut t = Table::new(
        "Table 1 — traffic reduction per dataset",
        &[
            "dataset",
            "tuples aggregated",
            "packets switch-ACKed",
            "paper tuples",
            "paper packets",
        ],
    );
    for (corpus, (name, p_tuples, p_packets)) in TextCorpus::paper_datasets().into_iter().zip(PAPER)
    {
        assert_eq!(corpus.name, name);
        let mut cfg = AskConfig::paper_default();
        // Keep the switch-memory-to-distinct-keys pressure at the paper's
        // operating point for the scaled tuple volume (the paper runs the
        // full traces against a full 32×32768-aggregator pipeline).
        // Capped at 16 Ki per copy — the most a Tofino3-class stage can
        // hold with 4 arrays × 2 shadow copies of 64-bit aggregators.
        cfg.aggregators_per_aa = (tuples as usize / 96).next_power_of_two().min(16 * 1024);
        cfg.region_aggregators = cfg.aggregators_per_aa;
        let run_cfg = AskRun::paper(cfg);
        let streams = vec![corpus.stream(1, tuples / 2), corpus.stream(2, tuples / 2)];
        let report = run_ask(&run_cfg, streams);
        t.row(&[
            name.to_string(),
            pct(report.switch.tuple_aggregation_ratio()),
            pct(report.switch.packet_absorption_ratio()),
            pct(p_tuples),
            pct(p_packets),
        ]);
    }
    t.note(
        "synthetic corpora calibrated to each trace's vocabulary size and Zipf skew (DESIGN.md)",
    );
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ask_workloads::text::TextCorpus;

    #[test]
    fn aggregation_ratios_land_in_paper_band() {
        // One dataset at reduced volume: the switch absorbs the bulk of the
        // tuples (paper band is 85–95%).
        let corpus = TextCorpus::blog_authorship();
        let run_cfg = AskRun::paper(AskConfig::paper_default());
        let report = run_ask(&run_cfg, vec![corpus.stream(1, 40_000)]);
        let ratio = report.switch.tuple_aggregation_ratio();
        assert!(ratio > 0.75, "BAC absorption {ratio}");
    }
}
