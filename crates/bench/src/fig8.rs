//! Figure 8: effectiveness of multi-key vectorization.
//!
//! (a) Goodput between two servers vs key-value tuples per packet, against
//!     the ideal `8x / (8x + 78) × 100 Gbps` curve — PPS-bound below ~32
//!     tuples/packet, wire-bound above.
//! (b) Distribution of non-blank tuples per packet when packetizing the
//!     real-trace stand-ins (paper: uniform ≈ full, yelp worst at ≈ 16.91
//!     of 32 slots).

use crate::output::{gbps, Table};
use crate::runners::{run_ask, AskRun, Scale};
use ask::prelude::*;
use ask_wire::constants::ideal_goodput_fraction;
use ask_workloads::text::{uniform_stream, TextCorpus};

/// Regenerates Figure 8(a): goodput vs tuples per packet.
pub fn run_goodput(scale: Scale) -> String {
    let mut t = Table::new(
        "Figure 8(a) — goodput vs tuples per packet (2 servers, 100 Gbps)",
        &["tuples/pkt", "goodput Gbps", "ideal Gbps"],
    );
    for x in [1usize, 2, 4, 8, 16, 24, 32, 48, 64] {
        let mut cfg = AskConfig::paper_default();
        cfg.layout = PacketLayout::short_only(x);
        cfg.data_channels = 4;
        // Keep the switch out of the equation: a large keyspace with a
        // small region means most tuples forward, but goodput is measured
        // at the sender and unaffected by absorption.
        cfg.region_aggregators = cfg.aggregators_per_aa;
        let run_cfg = AskRun {
            tasks: 4,
            ..AskRun::paper(cfg)
        };
        let tuples = scale.count(60_000, 600_000) * (x as u64).min(8);
        let stream = uniform_stream(11, tuples / 4, tuples);
        let report = run_ask(&run_cfg, vec![stream]);
        let ideal = ideal_goodput_fraction(x) * 100e9;
        t.row(&[
            x.to_string(),
            gbps(report.sender_goodput_bps[0]),
            gbps(ideal),
        ]);
    }
    t.note("paper: linear PPS-bound growth to 32 tuples/pkt, then matches the ideal curve");
    t.render()
}

/// Regenerates Figure 8(b): non-blank tuples per packet per dataset.
pub fn run_occupancy(scale: Scale) -> String {
    let tuples = scale.count(200_000, 2_000_000);
    let layout = PacketLayout::paper_default();
    let packetizer = Packetizer::new(layout, 64);
    let mut t = Table::new(
        "Figure 8(b) — non-blank tuples per packet (24 logical slots)",
        &["dataset", "mean", "p10", "p50", "p90"],
    );
    let mut add = |name: &str, stream: Vec<KvTuple>| {
        let out = packetizer.packetize(stream);
        let mut occ = out.occupancies();
        occ.sort_unstable();
        let q = |p: f64| occ[((occ.len() - 1) as f64 * p) as usize];
        t.row(&[
            name.to_string(),
            format!("{:.2}", out.mean_occupancy()),
            q(0.1).to_string(),
            q(0.5).to_string(),
            q(0.9).to_string(),
        ]);
    };
    add("Uniform", uniform_stream(3, tuples / 8, tuples));
    for corpus in TextCorpus::paper_datasets() {
        add(corpus.name, corpus.stream(5, tuples));
    }
    t.note("paper: uniform packs nearly all slots; yelp is worst at mean 16.91 of 32 slots");
    t.note("our layout has 24 logical slots (16 short + 8 medium groups of m = 2)");
    t.render()
}

/// Regenerates both panels.
pub fn run(scale: Scale) -> String {
    format!("{}\n{}", run_goodput(scale), run_occupancy(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_grows_with_tuples_per_packet() {
        let measure = |x: usize| {
            let mut cfg = AskConfig::paper_default();
            cfg.layout = PacketLayout::short_only(x);
            cfg.data_channels = 4;
            let run_cfg = AskRun {
                tasks: 4,
                ..AskRun::paper(cfg)
            };
            let stream = uniform_stream(11, 5_000, 40_000);
            run_ask(&run_cfg, vec![stream]).sender_goodput_bps[0]
        };
        let g1 = measure(1);
        let g16 = measure(16);
        assert!(g16 > 5.0 * g1, "g1={g1} g16={g16}");
    }

    #[test]
    fn pool_hit_rate_exceeds_90_percent_on_fig8_shape() {
        // The fig8(a) x=16 grid point, scaled down: after warm-up the
        // decode/packetize paths must be fed almost entirely from recycled
        // packet memory — the tentpole's "near-zero allocations per
        // simulated packet" claim, asserted end to end.
        let mut cfg = AskConfig::paper_default();
        cfg.layout = PacketLayout::short_only(16);
        cfg.data_channels = 4;
        cfg.region_aggregators = cfg.aggregators_per_aa;
        let run_cfg = AskRun {
            tasks: 4,
            ..AskRun::paper(cfg)
        };
        let stream = uniform_stream(11, 10_000, 80_000);
        let report = run_ask(&run_cfg, vec![stream]);
        // Steady-state pools: every data packet is decoded once on the
        // switch and once on the receiver, and each decode's take is paired
        // with a recycle (verdict emission / residual merge), so after the
        // first packet per pool the free list feeds essentially every take.
        // Senders count too: packetization is lazy (PendingStream) and the
        // pool is pre-warmed from the stream-size hints before the first
        // send, so even the first window's takes come from the free list —
        // there is no cold start left on the sender path.
        let hits = report.switch_pool_hits
            + report.receiver.pool_hits
            + report.senders.iter().map(|s| s.pool_hits).sum::<u64>();
        let misses = report.switch_pool_misses
            + report.receiver.pool_misses
            + report.senders.iter().map(|s| s.pool_misses).sum::<u64>();
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        assert!(
            rate > 0.90,
            "pool hit rate {rate:.4} ({hits} hits / {misses} misses)"
        );
        // Sender-only view: every packetize take must hit the pre-warmed
        // free list.
        let s_hits: u64 = report.senders.iter().map(|s| s.pool_hits).sum();
        let s_misses: u64 = report.senders.iter().map(|s| s.pool_misses).sum();
        assert!(s_hits > 0, "senders should draw from their pools");
        assert_eq!(s_misses, 0, "sender pools are pre-warmed ({s_hits} hits)");
    }

    #[test]
    fn view_path_absorbs_without_any_switch_pool_traffic() {
        if std::env::var("ASK_SWITCH_SCALAR").map(|v| v != "0").unwrap_or(false) {
            // The scalar escape hatch is forced; this invariant is
            // view-path-only by construction.
            return;
        }
        // Fig8(a) shape, small: every data frame carries short keys and
        // matches the switch layout, so the zero-materialization view path
        // handles 100% of the traffic. The switch packet pool must see
        // *zero* takes — absorb verdicts read slots straight off the wire
        // bytes and partial absorbs re-frame the inbound buffer — and the
        // pure-absorb counter must show frames dying in the switch without
        // a single slot vector materialized.
        let mut cfg = AskConfig::paper_default();
        cfg.layout = PacketLayout::short_only(16);
        cfg.data_channels = 4;
        cfg.region_aggregators = cfg.aggregators_per_aa;
        let run_cfg = AskRun {
            tasks: 4,
            ..AskRun::paper(cfg)
        };
        let stream = uniform_stream(11, 10_000, 80_000);
        let report = run_ask(&run_cfg, vec![stream]);
        assert!(
            report.switch.tuples_aggregated > 0,
            "the switch must actually absorb traffic"
        );
        assert!(
            report.switch_pure_absorb > 0,
            "fully-absorbed frames must be counted as pure absorbs"
        );
        assert_eq!(
            report.switch_pool_hits + report.switch_pool_misses,
            0,
            "view-path switch must never touch the packet pool \
             ({} hits / {} misses)",
            report.switch_pool_hits,
            report.switch_pool_misses,
        );
    }

    #[test]
    fn host_view_path_receives_without_receiver_pool_traffic() {
        if std::env::var("ASK_HOST_SCALAR").map(|v| v != "0").unwrap_or(false) {
            // The scalar escape hatch is forced; this invariant is
            // view-path-only by construction.
            return;
        }
        // The host-side mirror of the switch pure-absorb invariant: with
        // all-short keys on the default layout, every frame the receiver
        // sees (forwarded data, fins, the final fetch reply) is consumed
        // straight from wire bytes — first-delivery data merges via
        // borrowed slot views into the open-addressed task table, fetch
        // replies via borrowed entry views — so its packet pool must see
        // zero takes and the pure-view counter must be hot.
        let mut cfg = AskConfig::paper_default();
        cfg.layout = PacketLayout::short_only(16);
        cfg.data_channels = 4;
        cfg.region_aggregators = cfg.aggregators_per_aa;
        let run_cfg = AskRun {
            tasks: 4,
            ..AskRun::paper(cfg)
        };
        let stream = uniform_stream(11, 10_000, 80_000);
        let report = run_ask(&run_cfg, vec![stream]);
        assert!(
            report.receiver.host_pure_view > 0,
            "view-consumed frames must be counted"
        );
        assert_eq!(
            report.receiver.host_view_fallbacks, 0,
            "short-key traffic on the native layout needs no materializing fallback"
        );
        assert_eq!(
            report.receiver.pool_hits + report.receiver.pool_misses,
            0,
            "view-path receiver must never touch the packet pool \
             ({} hits / {} misses)",
            report.receiver.pool_hits,
            report.receiver.pool_misses,
        );
    }

    #[test]
    fn sender_pool_is_warm_from_the_first_window() {
        // A stream barely larger than one send window: there is no steady
        // state to amortize into, so a >90% sender hit rate here can only
        // come from the stream-size pre-warm (the PR 4 cold spot).
        let mut cfg = AskConfig::paper_default();
        cfg.layout = PacketLayout::short_only(16);
        cfg.data_channels = 1;
        cfg.region_aggregators = cfg.aggregators_per_aa;
        let run_cfg = AskRun {
            tasks: 1,
            ..AskRun::paper(cfg)
        };
        let stream = uniform_stream(7, 500, 2_000);
        let report = run_ask(&run_cfg, vec![stream]);
        let hits: u64 = report.senders.iter().map(|s| s.pool_hits).sum();
        let misses: u64 = report.senders.iter().map(|s| s.pool_misses).sum();
        assert!(hits > 0, "the stream must actually packetize");
        let rate = hits as f64 / (hits + misses) as f64;
        assert!(
            rate > 0.90,
            "first-window sender hit rate {rate:.4} ({hits} hits / {misses} misses)"
        );
    }

    #[test]
    fn uniform_occupancy_beats_skewed() {
        let layout = PacketLayout::paper_default();
        let p = Packetizer::new(layout, 64);
        let uni = p
            .packetize(uniform_stream(3, 10_000, 80_000))
            .mean_occupancy();
        let yelp = p
            .packetize(TextCorpus::yelp().stream(5, 80_000))
            .mean_occupancy();
        assert!(uni > yelp, "uniform {uni} vs yelp {yelp}");
        assert!(yelp > 4.0, "yelp still packs several tuples per packet");
    }
}
