//! Figure 13: bandwidth overhead and scalability (§5.7).
//!
//! (a) One sender → one receiver: aggregate throughput split into goodput
//!     and header overhead, ASK (1/2/4 data channels) vs NoAggr (MTU
//!     packets). Paper: NoAggr 91.75 Gbps goodput with 2 cores; ASK
//!     73.96 Gbps with 4 — ASK trades small packets for switch offload.
//! (b) N senders → one receiver: per-sender throughput. ASK stays flat
//!     (the switch absorbs most traffic); NoAggr decays as 1/N because the
//!     receiver's link is the shared bottleneck (11.88 Gbps at 8 senders).

use crate::output::{gbps, Table};
use crate::runners::{run_ask, AskRun, Scale};
use ask::prelude::*;
use ask_simnet::link::LinkConfig;
use ask_simnet::time::SimDuration;
use ask_workloads::text::uniform_stream;

fn link() -> LinkConfig {
    LinkConfig::new(100e9, SimDuration::from_micros(1))
}

fn ask_report(
    channels: usize,
    senders: usize,
    tuples_per_sender: u64,
) -> crate::runners::AskReport {
    let mut cfg = AskConfig::paper_default();
    // §5.7 streams full 32-tuple packets (256 B payload, one pipeline).
    cfg.layout = PacketLayout::short_only(32);
    cfg.data_channels = channels;
    cfg.region_aggregators = cfg.aggregators_per_aa / channels.max(1);
    let run_cfg = AskRun {
        tasks: channels,
        ..AskRun::paper(cfg)
    };
    // A fixed 2 Ki keyspace: big enough to pack all 32 slots, small enough
    // that the switch absorbs essentially all traffic. That matters beyond
    // bandwidth: the rare forwarded packet is ACKed by the receiver with
    // higher latency, and when it is the oldest in-flight packet it stalls
    // the whole sliding window — so per-sender flatness (§5.7.2) requires
    // near-total absorption, exactly as in the paper's microbenchmark.
    let streams: Vec<Vec<KvTuple>> = (0..senders)
        .map(|s| uniform_stream(13 + s as u64, 2048, tuples_per_sender))
        .collect();
    run_ask(&run_cfg, streams)
}

/// Regenerates Figure 13(a): goodput and overhead vs data channels.
pub fn run_overhead(scale: Scale) -> String {
    let tuples = scale.count(150_000, 1_500_000);
    let mut t = Table::new(
        "Figure 13(a) — single-pair throughput: goodput + overhead (Gbps)",
        &["system", "goodput", "wire", "overhead"],
    );
    for channels in [1usize, 2, 4] {
        let r = ask_report(channels, 1, tuples);
        let good = r.sender_goodput_bps[0];
        let wire = r.sender_wire_bps[0];
        t.row(&[
            format!("ASK {channels} dCh"),
            gbps(good),
            gbps(wire),
            gbps(wire - good),
        ]);
    }
    let no = ask_baselines::noaggr::run_noaggr(
        1,
        scale.count(40_000_000, 400_000_000),
        link(),
        SimDuration::from_nanos(110),
    );
    t.row(&[
        "NoAggr (MTU)".to_string(),
        gbps(no.per_sender_goodput_bps),
        gbps(no.receiver_wire_bps),
        gbps(no.receiver_wire_bps - no.per_sender_goodput_bps),
    ]);
    t.note(
        "paper: NoAggr 91.75 Gbps goodput vs ASK 73.96 Gbps — ASK pays header overhead for offload",
    );
    t.render()
}

/// Regenerates Figure 13(b): per-sender throughput vs sender count.
pub fn run_scalability(scale: Scale) -> String {
    let tuples = scale.count(60_000, 600_000);
    let mut t = Table::new(
        "Figure 13(b) — per-sender wire throughput vs senders (Gbps)",
        &["senders", "ASK", "NoAggr"],
    );
    for n in [1usize, 2, 4, 8] {
        let ask = ask_report(4, n, tuples);
        let mean_ask = ask.sender_wire_bps.iter().sum::<f64>() / n as f64;
        let no = ask_baselines::noaggr::run_noaggr(
            n,
            scale.count(10_000_000, 100_000_000),
            link(),
            SimDuration::from_nanos(110),
        );
        t.row(&[
            n.to_string(),
            gbps(mean_ask),
            gbps(no.per_sender_goodput_bps),
        ]);
    }
    t.note("paper: ASK stays ≈ 92.6 Gbps per sender; NoAggr decays to 11.88 Gbps at 8 senders");
    t.render()
}

/// Regenerates both panels.
pub fn run(scale: Scale) -> String {
    format!("{}\n{}", run_overhead(scale), run_scalability(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ask_per_sender_throughput_stays_flat() {
        let one = ask_report(4, 1, 30_000);
        let four = ask_report(4, 4, 30_000);
        let t1 = one.sender_wire_bps[0];
        let t4 = four.sender_wire_bps.iter().sum::<f64>() / 4.0;
        assert!(
            t4 > t1 * 0.6,
            "ASK scalability: 1 sender {t1}, 4 senders {t4}"
        );
        assert!(
            four.absorption() > 0.8,
            "flatness comes from switch absorption: {}",
            four.absorption()
        );
    }

    #[test]
    fn noaggr_per_sender_collapses() {
        let one =
            ask_baselines::noaggr::run_noaggr(1, 10_000_000, link(), SimDuration::from_nanos(110));
        let eight =
            ask_baselines::noaggr::run_noaggr(8, 10_000_000, link(), SimDuration::from_nanos(110));
        assert!(one.per_sender_goodput_bps / eight.per_sender_goodput_bps > 6.0);
    }
}
