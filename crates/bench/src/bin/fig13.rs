//! Regenerates the paper's fig13 on demand.
fn main() {
    let scale = ask_bench::Scale::from_env();
    print!("{}", ask_bench::fig13::run(scale));
}
