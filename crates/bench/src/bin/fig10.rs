//! Regenerates the paper's fig10 on demand.
fn main() {
    let scale = ask_bench::Scale::from_env();
    print!("{}", ask_bench::fig10::run(scale));
}
