//! Regenerates the paper's fig7 on demand.
fn main() {
    let scale = ask_bench::Scale::from_env();
    print!("{}", ask_bench::fig7::run(scale));
}
