//! Ablation: the fine-grained retransmission timeout (§3.3).
//!
//! "ASK chooses a fine-grained timeout (100us v.s. Linux default 200ms)" —
//! because out-of-order ACKs from the two ACK sources (switch and receiver)
//! rule out duplicate-ACK-triggered retransmission, the timeout is the
//! *only* loss-recovery signal, and a coarse one stalls the whole sliding
//! window for its duration. This sweep measures JCT under 1% loss for
//! timeouts from the paper's 100 µs up to the Linux default.

use ask::prelude::*;
use ask_bench::output::Table;
use ask_bench::runners::{run_ask, AskRun, Scale};
use ask_simnet::faults::FaultModel;
use ask_simnet::link::LinkConfig;
use ask_simnet::time::SimDuration;
use ask_workloads::text::uniform_stream;

fn main() {
    let scale = Scale::from_env();
    let tuples = scale.count(40_000, 300_000);
    let mut t = Table::new(
        "Ablation — retransmission timeout under 1% loss (§3.3)",
        &["timeout", "JCT", "retransmissions", "slowdown vs 100µs"],
    );
    let mut base = None;
    for (label, us) in [
        ("100µs (paper)", 100u64),
        ("1ms", 1_000),
        ("10ms", 10_000),
        ("200ms (Linux)", 200_000),
    ] {
        let mut cfg = AskConfig::paper_default();
        cfg.retransmit_timeout = SimDuration::from_micros(us);
        let run_cfg = AskRun {
            link: LinkConfig::new(100e9, SimDuration::from_micros(1))
                .with_faults(FaultModel::reliable().with_loss(0.01)),
            ..AskRun::paper(cfg)
        };
        let report = run_ask(&run_cfg, vec![uniform_stream(3, 2_000, tuples)]);
        let jct = report.jct_s;
        let baseline = *base.get_or_insert(jct);
        t.row(
            &[
                label.to_string(),
                format!("{:.2}ms", jct * 1e3),
                report
                    .senders
                    .iter()
                    .map(|s| s.retransmissions)
                    .sum::<u64>()
                    .to_string(),
            ]
            .into_iter()
            .chain(std::iter::once(format!("{:.1}x", jct / baseline)))
            .collect::<Vec<_>>(),
        );
    }
    t.note(
        "with only timeout-driven recovery, every lost packet stalls the window for one timeout",
    );
    t.note("the paper's 100µs choice keeps loss recovery at RTT scale");
    print!("{}", t.render());
}
