//! Regenerates the paper's fig9 on demand.
fn main() {
    let scale = ask_bench::Scale::from_env();
    print!("{}", ask_bench::fig9::run(scale));
}
