//! A scenario driver: run one ASK aggregation over a synthetic workload
//! with the knobs exposed as flags, and print the full measurement report.
//!
//! ```sh
//! cargo run --release -p ask-bench --bin simulate -- \
//!     --senders 4 --tuples 200000 --workload zipf --skew 1.1 \
//!     --distinct 20000 --loss 0.01 --channels 4 --op sum
//! ```

use ask::prelude::*;
use ask_bench::baseline::{baseline_path, Baseline};
use ask_bench::output::{gbps, pct};
use ask_bench::runners::{run_ask, AskRun};
use ask_bench::Scale;
use ask_simnet::faults::FaultModel;
use ask_simnet::link::LinkConfig;
use ask_simnet::time::SimDuration;
use ask_workloads::text::{uniform_stream, TextCorpus};
use ask_workloads::zipf::{zipf_stream, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug)]
struct Args {
    senders: usize,
    tuples: u64,
    distinct: u64,
    workload: String,
    skew: f64,
    loss: f64,
    channels: usize,
    op: AggregateOp,
    seed: u64,
    swap_threshold: u64,
    timing: bool,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            senders: 2,
            tuples: 100_000,
            distinct: 10_000,
            workload: "uniform".into(),
            skew: 1.0,
            loss: 0.0,
            channels: 4,
            op: AggregateOp::Sum,
            seed: 1,
            swap_threshold: 4096,
            timing: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = || it.next().ok_or_else(|| format!("missing value for {flag}"));
            match flag.as_str() {
                "--senders" => args.senders = value()?.parse().map_err(|e| format!("{e}"))?,
                "--tuples" => args.tuples = value()?.parse().map_err(|e| format!("{e}"))?,
                "--distinct" => args.distinct = value()?.parse().map_err(|e| format!("{e}"))?,
                "--workload" => args.workload = value()?,
                "--skew" => args.skew = value()?.parse().map_err(|e| format!("{e}"))?,
                "--loss" => args.loss = value()?.parse().map_err(|e| format!("{e}"))?,
                "--channels" => args.channels = value()?.parse().map_err(|e| format!("{e}"))?,
                "--seed" => args.seed = value()?.parse().map_err(|e| format!("{e}"))?,
                "--swap-threshold" => {
                    args.swap_threshold = value()?.parse().map_err(|e| format!("{e}"))?
                }
                "--timing" => args.timing = true,
                "--op" => {
                    args.op = match value()?.as_str() {
                        "sum" => AggregateOp::Sum,
                        "max" => AggregateOp::Max,
                        "min" => AggregateOp::Min,
                        other => return Err(format!("unknown op {other}")),
                    }
                }
                "--help" | "-h" => {
                    println!(
                        "usage: simulate [--senders N] [--tuples N] [--distinct N]\n\
                         \t[--workload uniform|zipf|yelp|NG|BAC|LMDB] [--skew S]\n\
                         \t[--loss P] [--channels N] [--op sum|max|min] [--seed N]\n\
                         \t[--swap-threshold N] [--timing]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }

    fn stream(&self, sender: usize) -> Vec<KvTuple> {
        let seed = self.seed ^ ((sender as u64) << 24);
        match self.workload.as_str() {
            "uniform" => uniform_stream(seed, self.distinct, self.tuples),
            "zipf" => {
                let mut rng = StdRng::seed_from_u64(seed);
                zipf_stream(
                    &mut rng,
                    self.distinct as usize,
                    self.tuples,
                    self.skew,
                    StreamOrder::Shuffled,
                )
                .into_iter()
                .map(|r| KvTuple::new(Key::from_u64(r), 1))
                .collect()
            }
            name => {
                let corpus = TextCorpus::paper_datasets()
                    .into_iter()
                    .find(|c| c.name.eq_ignore_ascii_case(name))
                    .unwrap_or_else(|| {
                        eprintln!("unknown workload {name}");
                        std::process::exit(2);
                    });
                corpus.stream(seed, self.tuples)
            }
        }
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };

    let mut cfg = AskConfig::paper_default();
    cfg.data_channels = args.channels;
    cfg.region_aggregators = cfg.aggregators_per_aa / args.channels.max(1);
    cfg.swap_threshold = args.swap_threshold;
    let run = AskRun {
        tasks: args.channels,
        link: LinkConfig::new(100e9, SimDuration::from_micros(1))
            .with_faults(FaultModel::reliable().with_loss(args.loss)),
        seed: args.seed,
        config: cfg,
    };
    let streams: Vec<Vec<KvTuple>> = (0..args.senders).map(|s| args.stream(s)).collect();
    let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
    println!(
        "ASK simulation: {} senders × {} tuples ({} workload, op {:?}, loss {}%)",
        args.senders,
        args.tuples,
        args.workload,
        args.op,
        args.loss * 100.0
    );
    if args.timing {
        ask_bench::runners::enable_phase_timing();
    }
    let wall_start = std::time::Instant::now();
    let report = run_ask(&run, streams);
    let wall = wall_start.elapsed();

    println!("\nresults:");
    println!("  job completion time     {:.3} ms", report.jct_s * 1e3);
    println!(
        "  switch absorption       {} of {} eligible tuples",
        pct(report.absorption()),
        report.switch.tuples_aggregated + report.switch.tuples_forwarded
    );
    println!(
        "  packets switch-ACKed    {}",
        pct(report.switch.packet_absorption_ratio())
    );
    println!("  shadow swaps            {}", report.switch.swaps);
    println!(
        "  duplicates deduped      {} switch / {} host",
        report.switch.duplicates_detected, report.receiver.duplicates_dropped
    );
    let retx: u64 = report.senders.iter().map(|s| s.retransmissions).sum();
    println!("  retransmissions         {retx}");
    for (i, bps) in report.sender_goodput_bps.iter().enumerate() {
        println!(
            "  sender {i} goodput        {} Gbps over {:.3} ms",
            gbps(*bps),
            report.sender_elapsed_s[i] * 1e3
        );
    }
    println!(
        "  receiver residual       {} tuples merged on host",
        report.receiver.tuples_host_aggregated
    );
    println!("  total tuples in         {total}");

    // Batching & memory-reuse footer (observational counters; not part of
    // any golden-pinned figure body).
    let mut host_hits = report.receiver.pool_hits;
    let mut host_misses = report.receiver.pool_misses;
    let mut host_bursts = report.receiver.burst_len;
    for s in &report.senders {
        host_hits += s.pool_hits;
        host_misses += s.pool_misses;
        for (a, b) in host_bursts.iter_mut().zip(s.burst_len.iter()) {
            *a += b;
        }
    }
    let rate = |h: u64, m: u64| {
        if h + m == 0 {
            "-".to_string()
        } else {
            pct(h as f64 / (h + m) as f64)
        }
    };
    println!(
        "  packet pool             switch {}/{} ({}), hosts {}/{} ({}) hits/misses (rate)",
        report.switch_pool_hits,
        report.switch_pool_misses,
        rate(report.switch_pool_hits, report.switch_pool_misses),
        host_hits,
        host_misses,
        rate(host_hits, host_misses),
    );
    let hist = |h: &[u64]| {
        h.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!(
        "  ingest bursts (log2)    switch [{}], hosts [{}]",
        hist(&report.switch.burst_len),
        hist(&host_bursts),
    );

    if args.timing {
        // Excluded section: wall times vary run to run, so they are printed
        // for attribution only and never enter golden/baseline comparisons.
        println!("\n{}", ask_bench::runners::render_phase_totals());
    }

    let mut baseline = Baseline::new(Scale::from_env(), 1);
    baseline.record("simulate_wall", wall);
    baseline.record(
        "simulate_jct",
        std::time::Duration::from_secs_f64(report.jct_s),
    );
    let path = baseline_path();
    match baseline.write_to(&path) {
        Ok(()) => eprintln!("wrote timings to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
