//! Regenerates every table and figure of the paper's evaluation, fanning
//! the independent figures across all cores, and records per-figure wall
//! times in `BENCH_baseline.json` (path overridable via
//! `ASK_BENCH_BASELINE`).

use ask_bench::baseline::{baseline_path, Baseline};
use ask_bench::parallel::worker_count;

fn main() {
    let timing = std::env::args().skip(1).any(|a| a == "--timing");
    if timing {
        ask_bench::runners::enable_phase_timing();
    }
    let scale = ask_bench::Scale::from_env();
    let (report, timings) = ask_bench::run_all_parallel(scale);
    print!("{report}");
    if timing {
        // Excluded section: wall times vary run to run, so they are printed
        // for attribution only and never enter golden/baseline comparisons.
        println!("\n{}", ask_bench::runners::render_phase_totals());
    }

    let mut baseline = Baseline::new(scale, worker_count(timings.len()));
    for t in &timings {
        baseline.record(t.name, t.elapsed);
    }
    let path = baseline_path();
    match baseline.write_to(&path) {
        Ok(()) => eprintln!("wrote per-figure timings to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
