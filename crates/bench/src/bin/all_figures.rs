//! Regenerates every table and figure of the paper's evaluation.
fn main() {
    let scale = ask_bench::Scale::from_env();
    print!("{}", ask_bench::run_all(scale));
}
