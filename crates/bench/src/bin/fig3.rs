//! Regenerates the paper's fig3 on demand.
fn main() {
    let scale = ask_bench::Scale::from_env();
    print!("{}", ask_bench::fig3::run(scale));
}
