//! Prints the ASK switch program's pipeline resource map — the reproduction
//! of the paper's §3.3 memory arithmetic ("256 + 256 × 32 bits ... a
//! top-of-rack switch can spare 264 KB SRAM to sufficiently support 64
//! servers").

use ask::prelude::*;
use ask::switch::AggregatorEngine;

fn main() {
    let config = AskConfig::paper_default();
    let engine = AggregatorEngine::new(config.clone());
    println!(
        "ASK switch program, paper-default configuration\n\
         layout: {} short slots + {} medium groups × {} segments = {} AAs\n\
         {} aggregators per AA per shadow copy, window W = {}, \
         {} channels, {} tasks\n",
        config.layout.short_slots(),
        config.layout.medium_groups(),
        config.layout.medium_segments(),
        config.layout.aggregator_arrays(),
        config.aggregators_per_aa,
        config.window,
        config.max_channels,
        config.max_tasks,
    );
    println!("{}", engine.resource_report());

    // The paper's per-channel reliability state arithmetic.
    let per_channel_bits = config.window + config.window * 64;
    println!(
        "reliability state per data channel: {} b seen + {} b PktState = {} B",
        config.window,
        config.window * 64,
        per_channel_bits / 8
    );
    println!(
        "{} channels need {} KB of the pipeline's {} KB total SRAM",
        config.max_channels,
        config.max_channels * per_channel_bits / 8 / 1024,
        engine
            .resource_report()
            .stages
            .first()
            .map(|s| s.sram_total)
            .unwrap_or(0)
            * 16
            / 1024,
    );
}
