//! Regenerates the paper's fig8 on demand.
fn main() {
    let scale = ask_bench::Scale::from_env();
    print!("{}", ask_bench::fig8::run(scale));
}
