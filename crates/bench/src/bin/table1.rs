//! Regenerates the paper's table1 on demand.
fn main() {
    let scale = ask_bench::Scale::from_env();
    print!("{}", ask_bench::table1::run(scale));
}
