//! Regenerates the paper's fig12 on demand.
fn main() {
    let scale = ask_bench::Scale::from_env();
    print!("{}", ask_bench::fig12::run(scale));
}
