//! Ablation: the medium-key group width `m` (§3.2.3).
//!
//! "The choice of m should adapt to the key size distribution: a small m
//! would cause more long keys without INA, but a large m would possibly
//! cause packet payload and AAs to be wasted." This sweep quantifies that
//! trade-off on the yelp stand-in: for each `m`, the fraction of tuples
//! that bypass the switch (long keys), the packet occupancy, the nominal
//! goodput efficiency, and the measured switch absorption.

use ask::prelude::*;
use ask_bench::output::{pct, Table};
use ask_bench::runners::{run_ask, AskRun, Scale};
use ask_wire::key::KeyClass;
use ask_workloads::text::TextCorpus;

fn main() {
    let scale = Scale::from_env();
    let tuples = scale.count(80_000, 600_000);
    let corpus = TextCorpus::yelp();
    let stream = corpus.stream(5, tuples);

    let mut t = Table::new(
        "Ablation — medium-key group width m (yelp stand-in, k·m + short = 32 AAs)",
        &[
            "m",
            "layout",
            "long-key bypass",
            "mean occupancy",
            "switch absorption",
        ],
    );
    for (m, short, k) in [(2usize, 16usize, 8usize), (3, 14, 6), (4, 16, 4)] {
        let layout = PacketLayout::custom(short, k, m);
        assert!(layout.aggregator_arrays() <= 38);
        let long: usize = stream
            .iter()
            .filter(|x| x.key.class(m) == KeyClass::Long)
            .count();
        let packetizer = Packetizer::new(layout, 64);
        let occupancy = packetizer.packetize(stream.clone()).mean_occupancy();

        let mut cfg = AskConfig::paper_default();
        cfg.layout = layout;
        cfg.aggregators_per_aa = 8192;
        cfg.region_aggregators = 8192;
        let report = run_ask(&AskRun::paper(cfg), vec![stream.clone()]);
        t.row(&[
            m.to_string(),
            format!("{short}+{k}x{m}"),
            pct(long as f64 / stream.len() as f64),
            format!("{occupancy:.2}/{}", layout.slot_count()),
            pct(report.absorption()),
        ]);
    }
    t.note("larger m shrinks the long-key bypass but spends more AAs per medium key");
    t.note("the paper picks m = 2, k = 8 as suitable for its datasets");
    print!("{}", t.render());
}
