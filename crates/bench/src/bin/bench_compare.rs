//! Compares a fresh `BENCH_baseline.json` against the committed one and
//! fails when any section regressed beyond the tolerance.
//!
//! ```text
//! cargo run -p ask-bench --bin bench_compare -- \
//!     committed_baseline.json fresh_baseline.json [--tolerance 0.25] [--update]
//! ```
//!
//! Sections below the noise floor (see `baseline::NOISE_FLOOR_S`) never
//! fail the comparison, and sections marked `"excluded": true` in the
//! committed file (fig12's microsecond analytical model, `micro_*`
//! criterion sections) are informational only.
//!
//! `--update` rewrites the committed file from the fresh run after printing
//! the comparison: fresh timings replace committed ones, while committed
//! sections the fresh run does not produce (the `micro_*` entries) are
//! carried over unchanged, and exclusion flags from the old committed file
//! are preserved. With `--update` the exit code is always success — the
//! point is to move the baseline, not to gate on it.

use ask_bench::baseline::{compare_sections, parse_sections, Section};
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.25f64;
    let mut update = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().and_then(|s| s.parse().ok()) {
                Some(t) => tolerance = t,
                None => return usage("--tolerance needs a number"),
            },
            "--update" => update = true,
            _ => files.push(a.clone()),
        }
    }
    let [committed_path, fresh_path] = files.as_slice() else {
        return usage("expected exactly two baseline files");
    };

    let (_committed_text, committed) = match load(committed_path) {
        Ok(s) => s,
        Err(e) => return usage(&e),
    };
    let (fresh_text, fresh) = match load(fresh_path) {
        Ok(s) => s,
        Err(e) => return usage(&e),
    };

    println!(
        "bench_compare: {committed_path} vs {fresh_path} (tolerance ±{:.0}%)",
        tolerance * 100.0
    );
    let report = compare_sections(&committed, &fresh, tolerance);
    for line in &report.lines {
        println!("  {line}");
    }

    if update {
        let merged = merge_update(&fresh_text, &committed, &fresh);
        if let Err(e) = std::fs::write(committed_path, merged) {
            eprintln!("error: cannot write {committed_path}: {e}");
            return ExitCode::from(2);
        }
        println!("updated {committed_path} from {fresh_path}");
        return ExitCode::SUCCESS;
    }

    if report.ok() {
        println!("result: PASS");
        ExitCode::SUCCESS
    } else {
        for r in &report.regressions {
            eprintln!("regression: {r}");
        }
        println!("result: FAIL ({} regression(s))", report.regressions.len());
        ExitCode::FAILURE
    }
}

/// Builds the new committed document from the fresh run: the fresh
/// header/sections verbatim (its `record` calls already mark the
/// known-noise sections excluded), plus any committed-only sections —
/// criterion-measured `micro_*` entries survive a figure-harness refresh.
fn merge_update(fresh_text: &str, committed: &[Section], fresh: &[Section]) -> String {
    let carried: Vec<&Section> = committed
        .iter()
        .filter(|c| !fresh.iter().any(|f| f.name == c.name))
        .collect();
    if carried.is_empty() {
        return fresh_text.to_string();
    }
    // Splice the carried sections in front of the closing "  ]" of the
    // sections array; the format is fixed by Baseline::render.
    let Some(end) = fresh_text.rfind("\n  ]") else {
        return fresh_text.to_string();
    };
    let mut out = fresh_text[..end].to_string();
    for s in &carried {
        let excluded = if s.excluded {
            ", \"excluded\": true"
        } else {
            ""
        };
        // Nine decimals: carried sections are criterion-measured `micro_*`
        // entries whose values are nanoseconds; `{:.6}` would zero them.
        let _ = write!(
            out,
            ",\n    {{\"name\": \"{}\", \"seconds\": {:.9}{}}}",
            s.name, s.seconds, excluded
        );
    }
    out.push_str(&fresh_text[end..]);
    out
}

fn load(path: &str) -> Result<(String, Vec<Section>), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let sections =
        parse_sections(&text).ok_or_else(|| format!("{path} has no baseline sections"))?;
    Ok((text, sections))
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench_compare <committed.json> <fresh.json> [--tolerance 0.25] [--update]"
    );
    ExitCode::from(2)
}
