//! Compares a fresh `BENCH_baseline.json` against the committed one and
//! fails when any section regressed beyond the tolerance.
//!
//! ```text
//! cargo run -p ask-bench --bin bench_compare -- \
//!     committed_baseline.json fresh_baseline.json [--tolerance 0.25]
//! ```
//!
//! Sections below the noise floor (see `baseline::NOISE_FLOOR_S`) never
//! fail the comparison: at microsecond scale the timer measures scheduler
//! luck, not code.

use ask_bench::baseline::{compare_sections, parse_sections};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().and_then(|s| s.parse().ok()) {
                Some(t) => tolerance = t,
                None => return usage("--tolerance needs a number"),
            },
            _ => files.push(a.clone()),
        }
    }
    let [committed_path, fresh_path] = files.as_slice() else {
        return usage("expected exactly two baseline files");
    };

    let committed = match load(committed_path) {
        Ok(s) => s,
        Err(e) => return usage(&e),
    };
    let fresh = match load(fresh_path) {
        Ok(s) => s,
        Err(e) => return usage(&e),
    };

    println!(
        "bench_compare: {committed_path} vs {fresh_path} (tolerance ±{:.0}%)",
        tolerance * 100.0
    );
    let report = compare_sections(&committed, &fresh, tolerance);
    for line in &report.lines {
        println!("  {line}");
    }
    if report.ok() {
        println!("result: PASS");
        ExitCode::SUCCESS
    } else {
        for r in &report.regressions {
            eprintln!("regression: {r}");
        }
        println!("result: FAIL ({} regression(s))", report.regressions.len());
        ExitCode::FAILURE
    }
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_sections(&text).ok_or_else(|| format!("{path} has no baseline sections"))
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_compare <committed.json> <fresh.json> [--tolerance 0.25]");
    ExitCode::from(2)
}
