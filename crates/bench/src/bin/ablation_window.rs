//! Ablation: the sliding-window size `W` (§3.3).
//!
//! The paper fixes W = 256 packets, sizing the switch's per-channel state
//! at 256 b of `seen` + 256 × 64 b of `PktState`. This sweep shows the
//! trade-off the choice balances: a small window cannot cover the
//! bandwidth-delay product (throughput collapses), while a large one only
//! costs switch SRAM.

use ask::prelude::*;
use ask_bench::output::{gbps, Table};
use ask_bench::runners::{run_ask, AskRun, Scale};
use ask_workloads::text::uniform_stream;

fn main() {
    let scale = Scale::from_env();
    let tuples = scale.count(100_000, 800_000);
    let mut t = Table::new(
        "Ablation — sliding-window size W (§3.3; paper uses 256)",
        &["W", "per-channel switch state", "sender goodput Gbps"],
    );
    for w in [4usize, 16, 64, 256, 1024] {
        let mut cfg = AskConfig::paper_default();
        cfg.layout = PacketLayout::short_only(32);
        cfg.window = w;
        // Large windows only fit the PktState stage with fewer tracked
        // channels — the SRAM trade-off this ablation is about.
        cfg.max_channels = (1280 * 1024 / (w * 8)).clamp(8, 256);
        let run_cfg = AskRun::paper(cfg);
        let report = run_ask(&run_cfg, vec![uniform_stream(3, 4_096, tuples)]);
        let state_bytes = (w + w * 64) / 8;
        t.row(&[
            w.to_string(),
            format!("{state_bytes} B"),
            gbps(report.sender_goodput_bps[0]),
        ]);
    }
    t.note(
        "throughput needs W ≥ bandwidth-delay product in packets; beyond that, W only costs SRAM",
    );
    t.note("paper: W = 256 costs 1056 B per data channel (256 b seen + 256 × 32 b PktState)");
    print!("{}", t.render());
}
