//! `BENCH_baseline.json` — a machine-readable record of how long each
//! benchmark section took, written next to the human-readable report so CI
//! and later sessions can diff harness wall-clock against a known baseline.
//!
//! The JSON is hand-rolled (the workspace deliberately carries no serde);
//! names are restricted to identifier-ish strings by construction, and the
//! escaper below covers anything else defensively.

use crate::Scale;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Default output file name, written into the current working directory
/// unless overridden with the `ASK_BENCH_BASELINE` environment variable.
pub const BASELINE_FILE: &str = "BENCH_baseline.json";

/// Where the baseline should be written: `$ASK_BENCH_BASELINE` if set,
/// otherwise [`BASELINE_FILE`] in the current directory.
pub fn baseline_path() -> PathBuf {
    std::env::var_os("ASK_BENCH_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(BASELINE_FILE))
}

/// Accumulates named timings and renders/writes the baseline JSON.
#[derive(Debug, Clone)]
pub struct Baseline {
    scale: Scale,
    workers: usize,
    entries: Vec<(String, f64)>,
}

impl Baseline {
    /// Creates an empty baseline for a run at `scale` using `workers`
    /// worker threads (1 for sequential drivers).
    pub fn new(scale: Scale, workers: usize) -> Self {
        Baseline {
            scale,
            workers,
            entries: Vec::new(),
        }
    }

    /// Records one section's wall-clock time.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        self.entries.push((name.to_string(), elapsed.as_secs_f64()));
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        let total: f64 = self.entries.iter().map(|(_, s)| s).sum();
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"scale\": \"{}\",",
            match self.scale {
                Scale::Quick => "quick",
                Scale::Full => "full",
            }
        );
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"total_s\": {:.6},", total);
        out.push_str("  \"sections\": [\n");
        for (i, (name, secs)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"seconds\": {:.6}}}{}",
                escape(name),
                secs,
                comma
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_json() {
        let mut b = Baseline::new(Scale::Quick, 4);
        b.record("fig3", Duration::from_millis(1500));
        b.record("fig7", Duration::from_millis(250));
        let s = b.render();
        assert!(s.contains("\"scale\": \"quick\""));
        assert!(s.contains("\"workers\": 4"));
        assert!(s.contains("{\"name\": \"fig3\", \"seconds\": 1.500000},"));
        assert!(s.contains("{\"name\": \"fig7\", \"seconds\": 0.250000}\n"));
        assert!(s.contains("\"total_s\": 1.750000"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn escapes_hostile_names() {
        let mut b = Baseline::new(Scale::Full, 1);
        b.record("a\"b\\c\nd", Duration::from_secs(1));
        let s = b.render();
        assert!(s.contains("a\\\"b\\\\c\\nd"));
    }
}
