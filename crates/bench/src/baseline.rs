//! `BENCH_baseline.json` — a machine-readable record of how long each
//! benchmark section took, written next to the human-readable report so CI
//! and later sessions can diff harness wall-clock against a known baseline.
//!
//! The JSON is hand-rolled (the workspace deliberately carries no serde);
//! names are restricted to identifier-ish strings by construction, and the
//! escaper below covers anything else defensively.

use crate::Scale;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Default output file name, written into the current working directory
/// unless overridden with the `ASK_BENCH_BASELINE` environment variable.
pub const BASELINE_FILE: &str = "BENCH_baseline.json";

/// Where the baseline should be written: `$ASK_BENCH_BASELINE` if set,
/// otherwise [`BASELINE_FILE`] in the current directory.
pub fn baseline_path() -> PathBuf {
    std::env::var_os("ASK_BENCH_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(BASELINE_FILE))
}

/// Sections excluded from regression comparison no matter how their timing
/// moves. `fig12` evaluates an analytical model in microseconds: its
/// "wall time" is pure timer jitter, and comparing it run-to-run produced
/// noise lines like `0.000016s -> 0.000031s (+94%)` that trained readers to
/// ignore the report. Micro-bench sections (`micro_*`) are recorded for
/// reference on the baseline machine but are re-measured by criterion, not
/// by the figure harness, so a fresh `all_figures` run legitimately lacks
/// them.
pub const EXCLUDED_SECTIONS: &[&str] = &["fig12"];

/// One named timing in a baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name (figure/table id or `micro_*` bench id).
    pub name: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Excluded from regression comparison (informational only).
    pub excluded: bool,
}

impl Section {
    /// Convenience constructor for a non-excluded section.
    pub fn new(name: &str, seconds: f64) -> Self {
        Section {
            name: name.to_string(),
            seconds,
            excluded: false,
        }
    }
}

/// Accumulates named timings and renders/writes the baseline JSON.
#[derive(Debug, Clone)]
pub struct Baseline {
    scale: Scale,
    workers: usize,
    entries: Vec<Section>,
}

impl Baseline {
    /// Creates an empty baseline for a run at `scale` using `workers`
    /// worker threads (1 for sequential drivers).
    pub fn new(scale: Scale, workers: usize) -> Self {
        Baseline {
            scale,
            workers,
            entries: Vec::new(),
        }
    }

    /// Records one section's wall-clock time. Sections named in
    /// [`EXCLUDED_SECTIONS`] are automatically marked excluded.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        self.entries.push(Section {
            name: name.to_string(),
            seconds: elapsed.as_secs_f64(),
            excluded: EXCLUDED_SECTIONS.contains(&name),
        });
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        let total: f64 = self.entries.iter().map(|s| s.seconds).sum();
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"scale\": \"{}\",",
            match self.scale {
                Scale::Quick => "quick",
                Scale::Full => "full",
            }
        );
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"total_s\": {:.6},", total);
        out.push_str("  \"sections\": [\n");
        for (i, s) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let excluded = if s.excluded {
                ", \"excluded\": true"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"seconds\": {:.6}{}}}{}",
                escape(&s.name),
                s.seconds,
                excluded,
                comma
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Sections faster than this are exempt from regression comparison: at
/// sub-half-second scale, run-to-run scheduler noise alone exceeds the
/// comparison tolerance (measured ~±30% for 0.1 s sections on an idle
/// machine). Sections that should *never* be compared regardless of their
/// magnitude belong in [`EXCLUDED_SECTIONS`] / [`Section::excluded`]
/// instead.
pub const NOISE_FLOOR_S: f64 = 0.5;

/// Extracts [`Section`]s from a baseline JSON document produced by
/// [`Baseline::render`]. Returns `None` when no section can be found
/// (wrong file, truncated write). A scanning parser is enough here: the
/// format is fixed by `render`, and the workspace carries no serde.
pub fn parse_sections(json: &str) -> Option<Vec<Section>> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(ix) = rest.find("\"name\"") {
        rest = &rest[ix + "\"name\"".len()..];
        let open = rest.find('"')?;
        let close = open + 1 + rest[open + 1..].find('"')?;
        let name = rest[open + 1..close].to_string();
        rest = &rest[close + 1..];
        let sx = rest.find("\"seconds\"")?;
        let after = &rest[sx + "\"seconds\"".len()..];
        let colon = after.find(':')?;
        let num: String = after[colon + 1..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        // The excluded flag, if present, sits between the number and the
        // section object's closing brace.
        let obj_end = after.find('}').unwrap_or(after.len());
        let excluded = after[..obj_end].contains("\"excluded\": true");
        out.push(Section {
            name,
            seconds: num.parse().ok()?,
            excluded,
        });
        rest = after;
    }
    (!out.is_empty()).then_some(out)
}

/// Outcome of comparing a fresh run against a committed baseline.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// One human-readable line per section.
    pub lines: Vec<String>,
    /// Sections slower than the tolerance allows, or missing entirely.
    pub regressions: Vec<String>,
}

impl CompareReport {
    /// True when no section regressed.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares fresh section timings against the committed baseline.
///
/// A section regresses when it is more than `tolerance` (relative, e.g.
/// `0.25` for +25%) slower than the committed time, or when it vanished
/// from the fresh run. Two carve-outs:
///
/// - Sections marked [`Section::excluded`] in the committed baseline are
///   informational only: they never regress, and a fresh run may omit them
///   entirely (micro-bench sections are produced by criterion, not the
///   figure harness).
/// - Sections whose committed time sits below [`NOISE_FLOOR_S`] are
///   reported but never fail — at that magnitude the timer measures
///   scheduler luck, not code.
///
/// Speedups beyond the tolerance are noted so a suspicious "improvement"
/// (a benchmark silently doing less work) is still visible in the log.
pub fn compare_sections(
    committed: &[Section],
    fresh: &[Section],
    tolerance: f64,
) -> CompareReport {
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for base in committed {
        let fresh_s = fresh.iter().find(|f| f.name == base.name).map(|f| f.seconds);
        if base.excluded {
            let seen = match fresh_s {
                Some(s) => format!("fresh {s:.3}s"),
                None => "absent from fresh run".to_string(),
            };
            lines.push(format!(
                "{}: committed {:.6}s {seen} excluded (informational)",
                base.name, base.seconds
            ));
            continue;
        }
        let Some(fresh_s) = fresh_s else {
            regressions.push(format!("section {} missing from fresh run", base.name));
            continue;
        };
        let delta = if base.seconds > 0.0 {
            (fresh_s - base.seconds) / base.seconds
        } else {
            0.0
        };
        let verdict = if base.seconds < NOISE_FLOOR_S {
            "noise-floor (exempt)"
        } else if delta > tolerance {
            regressions.push(format!(
                "section {} regressed: {:.3}s -> {fresh_s:.3}s ({:+.0}%)",
                base.name,
                base.seconds,
                delta * 100.0
            ));
            "REGRESSED"
        } else if delta < -tolerance {
            "faster (check benchmark still does the same work)"
        } else {
            "ok"
        };
        lines.push(format!(
            "{}: committed {:.3}s fresh {fresh_s:.3}s ({:+.1}%) {verdict}",
            base.name,
            base.seconds,
            delta * 100.0
        ));
    }
    for f in fresh {
        if !committed.iter().any(|b| b.name == f.name) {
            lines.push(format!("{}: new section ({:.3}s), no baseline", f.name, f.seconds));
        }
    }
    CompareReport { lines, regressions }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_json() {
        let mut b = Baseline::new(Scale::Quick, 4);
        b.record("fig3", Duration::from_millis(1500));
        b.record("fig7", Duration::from_millis(250));
        let s = b.render();
        assert!(s.contains("\"scale\": \"quick\""));
        assert!(s.contains("\"workers\": 4"));
        assert!(s.contains("{\"name\": \"fig3\", \"seconds\": 1.500000},"));
        assert!(s.contains("{\"name\": \"fig7\", \"seconds\": 0.250000}\n"));
        assert!(s.contains("\"total_s\": 1.750000"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn marks_known_noise_sections_excluded() {
        let mut b = Baseline::new(Scale::Quick, 1);
        b.record("fig12", Duration::from_micros(16));
        b.record("fig13", Duration::from_secs(1));
        let s = b.render();
        assert!(s.contains("{\"name\": \"fig12\", \"seconds\": 0.000016, \"excluded\": true},"));
        assert!(s.contains("{\"name\": \"fig13\", \"seconds\": 1.000000}\n"));
    }

    #[test]
    fn parse_round_trips_render() {
        let mut b = Baseline::new(Scale::Quick, 2);
        b.record("fig3", Duration::from_millis(1500));
        b.record("fig12", Duration::from_micros(16));
        let sections = parse_sections(&b.render()).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].name, "fig3");
        assert!((sections[0].seconds - 1.5).abs() < 1e-9);
        assert!(!sections[0].excluded);
        assert!((sections[1].seconds - 0.000016).abs() < 1e-9);
        assert!(sections[1].excluded, "fig12 round-trips its excluded flag");
        assert!(parse_sections("{}").is_none());
        assert!(parse_sections("not json at all").is_none());
    }

    #[test]
    fn compare_flags_regressions_but_not_noise_floor_sections() {
        let committed = vec![
            Section::new("fig3", 1.0),
            Section::new("fig10", 0.000016),
            Section::new("gone", 2.0),
        ];
        let fresh = vec![
            Section::new("fig3", 1.5),
            Section::new("fig10", 0.08),
            Section::new("brand_new", 0.5),
        ];
        let report = compare_sections(&committed, &fresh, 0.25);
        assert!(!report.ok());
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
        assert!(report.regressions[0].contains("fig3"));
        assert!(report.regressions[1].contains("gone"));
        // fig10 blew past +25% relatively but sits under the noise floor.
        assert!(report.lines.iter().any(|l| l.contains("noise-floor")));
        assert!(report.lines.iter().any(|l| l.contains("new section")));
    }

    #[test]
    fn excluded_sections_never_regress_and_may_be_missing() {
        let committed = vec![
            Section {
                name: "fig12".into(),
                seconds: 0.000016,
                excluded: true,
            },
            Section {
                name: "micro_event_queue_push_pop".into(),
                seconds: 0.00000003,
                excluded: true,
            },
        ];
        // fig12 present but wildly different; the micro section absent.
        let fresh = vec![Section::new("fig12", 1000.0)];
        let report = compare_sections(&committed, &fresh, 0.25);
        assert!(report.ok(), "{:?}", report.regressions);
        assert_eq!(
            report
                .lines
                .iter()
                .filter(|l| l.contains("excluded (informational)"))
                .count(),
            2
        );
        assert!(report.lines.iter().any(|l| l.contains("absent from fresh run")));
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let committed = vec![Section::new("fig8", 4.0)];
        let fresh = vec![Section::new("fig8", 4.8)];
        assert!(compare_sections(&committed, &fresh, 0.25).ok());
        let slower = vec![Section::new("fig8", 5.2)];
        assert!(!compare_sections(&committed, &slower, 0.25).ok());
    }

    #[test]
    fn escapes_hostile_names() {
        let mut b = Baseline::new(Scale::Full, 1);
        b.record("a\"b\\c\nd", Duration::from_secs(1));
        let s = b.render();
        assert!(s.contains("a\\\"b\\\\c\\nd"));
    }
}
