//! `BENCH_baseline.json` — a machine-readable record of how long each
//! benchmark section took, written next to the human-readable report so CI
//! and later sessions can diff harness wall-clock against a known baseline.
//!
//! The JSON is hand-rolled (the workspace deliberately carries no serde);
//! names are restricted to identifier-ish strings by construction, and the
//! escaper below covers anything else defensively.

use crate::Scale;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Default output file name, written into the current working directory
/// unless overridden with the `ASK_BENCH_BASELINE` environment variable.
pub const BASELINE_FILE: &str = "BENCH_baseline.json";

/// Where the baseline should be written: `$ASK_BENCH_BASELINE` if set,
/// otherwise [`BASELINE_FILE`] in the current directory.
pub fn baseline_path() -> PathBuf {
    std::env::var_os("ASK_BENCH_BASELINE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(BASELINE_FILE))
}

/// Accumulates named timings and renders/writes the baseline JSON.
#[derive(Debug, Clone)]
pub struct Baseline {
    scale: Scale,
    workers: usize,
    entries: Vec<(String, f64)>,
}

impl Baseline {
    /// Creates an empty baseline for a run at `scale` using `workers`
    /// worker threads (1 for sequential drivers).
    pub fn new(scale: Scale, workers: usize) -> Self {
        Baseline {
            scale,
            workers,
            entries: Vec::new(),
        }
    }

    /// Records one section's wall-clock time.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        self.entries.push((name.to_string(), elapsed.as_secs_f64()));
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        let total: f64 = self.entries.iter().map(|(_, s)| s).sum();
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"scale\": \"{}\",",
            match self.scale {
                Scale::Quick => "quick",
                Scale::Full => "full",
            }
        );
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"total_s\": {:.6},", total);
        out.push_str("  \"sections\": [\n");
        for (i, (name, secs)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"seconds\": {:.6}}}{}",
                escape(name),
                secs,
                comma
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Sections faster than this are exempt from regression comparison: at
/// sub-half-second scale, run-to-run scheduler noise alone exceeds the
/// comparison tolerance (measured ~±30% for 0.1 s sections on an idle
/// machine; fig12's analytical model finishes in microseconds).
pub const NOISE_FLOOR_S: f64 = 0.5;

/// Extracts `(name, seconds)` pairs from a baseline JSON document produced
/// by [`Baseline::render`]. Returns `None` when no section can be found
/// (wrong file, truncated write). A scanning parser is enough here: the
/// format is fixed by `render`, and the workspace carries no serde.
pub fn parse_sections(json: &str) -> Option<Vec<(String, f64)>> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(ix) = rest.find("\"name\"") {
        rest = &rest[ix + "\"name\"".len()..];
        let open = rest.find('"')?;
        let close = open + 1 + rest[open + 1..].find('"')?;
        let name = rest[open + 1..close].to_string();
        rest = &rest[close + 1..];
        let sx = rest.find("\"seconds\"")?;
        let after = &rest[sx + "\"seconds\"".len()..];
        let colon = after.find(':')?;
        let num: String = after[colon + 1..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        out.push((name, num.parse().ok()?));
        rest = after;
    }
    (!out.is_empty()).then_some(out)
}

/// Outcome of comparing a fresh run against a committed baseline.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// One human-readable line per section.
    pub lines: Vec<String>,
    /// Sections slower than the tolerance allows, or missing entirely.
    pub regressions: Vec<String>,
}

impl CompareReport {
    /// True when no section regressed.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares fresh section timings against the committed baseline.
///
/// A section regresses when it is more than `tolerance` (relative, e.g.
/// `0.25` for +25%) slower than the committed time, or when it vanished
/// from the fresh run. Sections whose committed time sits below
/// [`NOISE_FLOOR_S`] are reported but never fail — at that magnitude the
/// timer measures scheduler luck, not code. Speedups beyond the tolerance
/// are noted so a suspicious "improvement" (a benchmark silently doing
/// less work) is still visible in the log.
pub fn compare_sections(
    committed: &[(String, f64)],
    fresh: &[(String, f64)],
    tolerance: f64,
) -> CompareReport {
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for (name, base_s) in committed {
        let Some((_, fresh_s)) = fresh.iter().find(|(n, _)| n == name) else {
            regressions.push(format!("section {name} missing from fresh run"));
            continue;
        };
        let delta = if *base_s > 0.0 {
            (fresh_s - base_s) / base_s
        } else {
            0.0
        };
        let verdict = if *base_s < NOISE_FLOOR_S {
            "noise-floor (exempt)"
        } else if delta > tolerance {
            regressions.push(format!(
                "section {name} regressed: {base_s:.3}s -> {fresh_s:.3}s ({:+.0}%)",
                delta * 100.0
            ));
            "REGRESSED"
        } else if delta < -tolerance {
            "faster (check benchmark still does the same work)"
        } else {
            "ok"
        };
        lines.push(format!(
            "{name}: committed {base_s:.3}s fresh {fresh_s:.3}s ({:+.1}%) {verdict}",
            delta * 100.0
        ));
    }
    for (name, fresh_s) in fresh {
        if !committed.iter().any(|(n, _)| n == name) {
            lines.push(format!("{name}: new section ({fresh_s:.3}s), no baseline"));
        }
    }
    CompareReport { lines, regressions }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_json() {
        let mut b = Baseline::new(Scale::Quick, 4);
        b.record("fig3", Duration::from_millis(1500));
        b.record("fig7", Duration::from_millis(250));
        let s = b.render();
        assert!(s.contains("\"scale\": \"quick\""));
        assert!(s.contains("\"workers\": 4"));
        assert!(s.contains("{\"name\": \"fig3\", \"seconds\": 1.500000},"));
        assert!(s.contains("{\"name\": \"fig7\", \"seconds\": 0.250000}\n"));
        assert!(s.contains("\"total_s\": 1.750000"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn parse_round_trips_render() {
        let mut b = Baseline::new(Scale::Quick, 2);
        b.record("fig3", Duration::from_millis(1500));
        b.record("fig12", Duration::from_micros(16));
        let sections = parse_sections(&b.render()).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].0, "fig3");
        assert!((sections[0].1 - 1.5).abs() < 1e-9);
        assert!((sections[1].1 - 0.000016).abs() < 1e-9);
        assert!(parse_sections("{}").is_none());
        assert!(parse_sections("not json at all").is_none());
    }

    #[test]
    fn compare_flags_regressions_but_not_noise_floor_sections() {
        let committed = vec![
            ("fig3".to_string(), 1.0),
            ("fig12".to_string(), 0.000016),
            ("gone".to_string(), 2.0),
        ];
        let fresh = vec![
            ("fig3".to_string(), 1.5),
            ("fig12".to_string(), 0.08),
            ("brand_new".to_string(), 0.5),
        ];
        let report = compare_sections(&committed, &fresh, 0.25);
        assert!(!report.ok());
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
        assert!(report.regressions[0].contains("fig3"));
        assert!(report.regressions[1].contains("gone"));
        // fig12 blew past +25% relatively but sits under the noise floor.
        assert!(report.lines.iter().any(|l| l.contains("noise-floor")));
        assert!(report.lines.iter().any(|l| l.contains("new section")));
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let committed = vec![("fig8".to_string(), 4.0)];
        let fresh = vec![("fig8".to_string(), 4.8)];
        assert!(compare_sections(&committed, &fresh, 0.25).ok());
        let slower = vec![("fig8".to_string(), 5.2)];
        assert!(!compare_sections(&committed, &slower, 0.25).ok());
    }

    #[test]
    fn escapes_hostile_names() {
        let mut b = Baseline::new(Scale::Full, 1);
        b.record("a\"b\\c\nd", Duration::from_secs(1));
        let s = b.render();
        assert!(s.contains("a\\\"b\\\\c\\nd"));
    }
}
