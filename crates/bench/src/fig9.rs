//! Figure 9: effectiveness of hot-key agnostic prioritization.
//!
//! Drives the switch [`AggregatorEngine`] directly (no network) with Zipf,
//! reverse-Zipf, and uniform streams while sweeping the
//! aggregator-to-distinct-key ratio, with and without periodic shadow-copy
//! swapping.
//!
//! Paper shape: without prioritization, cold keys squat on aggregators and
//! the switch-aggregation ratio tracks the memory ratio (Zipf ≫ Zipf
//! reverse); with prioritization all orders improve dramatically — 95.85%
//! on-switch aggregation at a 1/16 ratio.

use crate::output::{pct, Table};
use crate::runners::Scale;
use ask::prelude::*;
use ask::switch::DataVerdict;
use ask_wire::packet::{ChannelId, DataPacket, FetchScope, SeqNo, TaskId};
use ask_workloads::zipf::{zipf_stream, StreamOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SLOTS: usize = 16;

/// Packetizes a rank stream once; the resulting payloads depend only on the
/// ranks and the fixed 16-slot layout, so every engine configuration can
/// replay the same stream instead of re-materializing keys per config.
fn packetize_ranks(ranks: &[u64]) -> Vec<Vec<Option<KvTuple>>> {
    let packetizer = Packetizer::new(PacketLayout::short_only(SLOTS), 64);
    packetizer
        .packetize(ranks.iter().map(|&r| KvTuple::new(Key::from_u64(r), 1)))
        .data_payloads
}

/// One measured configuration, replaying pre-packetized payloads.
fn measure(payloads: &[Vec<Option<KvTuple>>], total_aggregators: usize, prioritize: bool) -> f64 {
    let mut cfg = AskConfig::paper_default();
    cfg.layout = PacketLayout::short_only(SLOTS);
    cfg.aggregators_per_aa = (total_aggregators / SLOTS).max(1);
    cfg.region_aggregators = cfg.aggregators_per_aa;
    cfg.max_channels = 4;
    cfg.swap_threshold = 0; // swapping driven manually below
    let mut engine = AggregatorEngine::new(cfg.clone());
    let task = TaskId(1);
    engine.register_task(task, 0).expect("region fits");

    // The paper's swap threshold is "tunable" (§3.4); period it so the run
    // sees plenty of eviction rounds regardless of workload size.
    let total_packets = payloads.len() as u64;
    let swap_every = (total_packets / 128).clamp(16, 4096);
    let mut fetch_seq = 0u32;
    let mut seq = 0u64;
    for payload in payloads {
        // Pooled replay: each packet's slot vector is drawn from the
        // engine's pool and flows back after the verdict, so the whole
        // sweep recycles a handful of allocations.
        let mut slots = engine.pool_mut().take_slots(payload.len());
        slots.extend(payload.iter().cloned());
        let pkt = DataPacket {
            task,
            channel: ChannelId(0),
            seq: SeqNo(seq),
            slots,
        };
        seq += 1;
        match engine.process_data(pkt) {
            DataVerdict::FullyAggregated => {}
            DataVerdict::Forward(residual) => {
                engine.pool_mut().recycle_slots(residual.slots);
            }
            DataVerdict::Stale => unreachable!("dense in-order feed"),
        }
        if prioritize && seq.is_multiple_of(swap_every) {
            engine.swap(task);
            fetch_seq += 1;
            engine.fetch(task, FetchScope::Inactive, fetch_seq);
        }
    }
    engine
        .task_stats(task)
        .expect("task registered")
        .tuple_aggregation_ratio()
}

/// Regenerates Figure 9 (both panels).
pub fn run(scale: Scale) -> String {
    let distinct = scale.count(1 << 12, 1 << 16) as usize;
    let total = scale.count(1 << 18, 1 << 22);
    let mut rng = StdRng::seed_from_u64(9);
    let streams = [
        (
            "Uniform",
            packetize_ranks(&zipf_stream(&mut rng, distinct, total, 0.0, StreamOrder::Shuffled)),
        ),
        (
            "Zipf",
            packetize_ranks(&zipf_stream(&mut rng, distinct, total, 1.0, StreamOrder::HotFirst)),
        ),
        (
            "Zipf-rev",
            packetize_ranks(&zipf_stream(&mut rng, distinct, total, 1.0, StreamOrder::ColdFirst)),
        ),
    ];

    let mut t = Table::new(
        "Figure 9 — switch-aggregated tuple fraction vs aggregator/key ratio",
        &[
            "aggs/keys",
            "Uniform (no prio)",
            "Zipf (no prio)",
            "Zipf-rev (no prio)",
            "Uniform (prio)",
            "Zipf (prio)",
            "Zipf-rev (prio)",
        ],
    );
    for shift in [8usize, 6, 4, 2, 0] {
        let aggs = (distinct >> shift).max(SLOTS);
        let mut cells = vec![format!("1/{}", 1 << shift)];
        // The six configurations are independent simulations; run them on
        // scoped threads (each builds its own engine).
        let ratios: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = [false, true]
                .into_iter()
                .flat_map(|prio| {
                    streams
                        .iter()
                        .map(move |(_, payloads)| (prio, payloads))
                        .collect::<Vec<_>>()
                })
                .map(|(prio, payloads)| scope.spawn(move || measure(payloads, aggs, prio)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("measure")).collect()
        });
        cells.extend(ratios.into_iter().map(pct));
        t.row(&cells);
    }
    t.note("paper: prioritization reaches 95.85% on-switch aggregation at a 1/16 ratio");
    t.note(
        "without prioritization, Zipf (hot keys first) beats Zipf-reverse — FCFS keeps early keys",
    );
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams(distinct: usize, total: u64) -> [(StreamOrder, Vec<Vec<Option<KvTuple>>>); 2] {
        let mut rng = StdRng::seed_from_u64(1);
        [
            (
                StreamOrder::HotFirst,
                packetize_ranks(&zipf_stream(&mut rng, distinct, total, 1.0, StreamOrder::HotFirst)),
            ),
            (
                StreamOrder::ColdFirst,
                packetize_ranks(&zipf_stream(&mut rng, distinct, total, 1.0, StreamOrder::ColdFirst)),
            ),
        ]
    }

    #[test]
    fn prioritization_improves_skewed_aggregation() {
        let distinct = 1 << 10;
        let [(_, hot), (_, cold)] = streams(distinct, 1 << 15);
        let aggs = distinct / 16;
        for ranks in [&hot, &cold] {
            let without = measure(ranks, aggs, false);
            let with = measure(ranks, aggs, true);
            assert!(
                with > without,
                "prioritization must help: {with} vs {without}"
            );
        }
    }

    #[test]
    fn prioritized_skewed_ratio_far_exceeds_memory_ratio() {
        // Paper: 95.85% on-switch aggregation at a 1/16 aggregator-to-key
        // ratio. The achievable ceiling tracks the workload's skew (the
        // resident keys' share of the tuple mass); with a word-frequency-
        // strength Zipf (s = 1.3), 1/16 of the memory must absorb the
        // overwhelming majority of tuples.
        let distinct = 1 << 10;
        let mut rng = StdRng::seed_from_u64(2);
        let ranks = packetize_ranks(&zipf_stream(&mut rng, distinct, 1 << 15, 1.3, StreamOrder::Shuffled));
        let with = measure(&ranks, distinct / 16, true);
        let without = measure(&ranks, distinct / 16, false);
        assert!(with > 0.70, "got {with}");
        assert!(with > without, "prio {with} vs FCFS {without}");
    }

    #[test]
    fn hot_first_beats_cold_first_without_prioritization() {
        let distinct = 1 << 10;
        let [(_, hot), (_, cold)] = streams(distinct, 1 << 15);
        let aggs = distinct / 16;
        let hot_ratio = measure(&hot, aggs, false);
        let cold_ratio = measure(&cold, aggs, false);
        assert!(
            hot_ratio > cold_ratio,
            "FCFS favors early hot keys: {hot_ratio} vs {cold_ratio}"
        );
    }

    #[test]
    fn ample_memory_aggregates_everything() {
        let distinct = 1 << 8;
        let mut rng = StdRng::seed_from_u64(3);
        let ranks = packetize_ranks(&zipf_stream(&mut rng, distinct, 1 << 12, 0.0, StreamOrder::Shuffled));
        // 16x more aggregators than keys: hash collisions are rare.
        let ratio = measure(&ranks, distinct * 16, false);
        assert!(ratio > 0.95, "got {ratio}");
    }
}
