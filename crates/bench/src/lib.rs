//! # ask-bench — the benchmark harness regenerating the paper's evaluation
//!
//! One module per table/figure of the ASK paper's §5, each exposing
//! `run(Scale) -> String` that prints the reproduced rows/series with the
//! paper's reference values as footnotes:
//!
//! | module | regenerates | driven by |
//! |---|---|---|
//! | [`fig3`] | Fig. 3 AKV/s vs cores | calibrated throughput models |
//! | [`fig7`] | Fig. 7 JCT + CPU vs PreAggr | real stack (scaled) + model |
//! | [`table1`] | Table 1 traffic reduction | real stack on trace stand-ins |
//! | [`fig8`] | Fig. 8 goodput & occupancy | real stack + packetizer |
//! | [`fig9`] | Fig. 9 hot-key prioritization | switch engine, direct drive |
//! | [`fig10`] | Figs. 10 & 11 WordCount JCT/TCT | mini-Spark + measured absorption |
//! | [`fig12`] | Fig. 12 training throughput | training models |
//! | [`fig13`] | Fig. 13 overhead & scalability | real stack + NoAggr sim |
//!
//! Run everything with `cargo bench -p ask-bench` (the `figures` bench) or
//! a single figure with e.g. `cargo run -p ask-bench --release --bin fig9`.
//! Set `ASK_BENCH_SCALE=full` for larger workloads.

#![warn(missing_docs)]

pub mod baseline;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod output;
pub mod parallel;
pub mod runners;
pub mod table1;

pub use runners::Scale;

/// Runs every figure and table sequentially, returning the concatenated
/// report. See [`run_all_parallel`] for the multi-core variant.
pub fn run_all(scale: Scale) -> String {
    let sections = [
        fig3::run(scale),
        fig7::run(scale),
        table1::run(scale),
        fig8::run(scale),
        fig9::run(scale),
        fig10::run(scale),
        fig12::run(scale),
        fig13::run(scale),
    ];
    sections.join("\n")
}

/// Runs every figure and table fanned across all available cores, returning
/// the concatenated report (identical to [`run_all`]'s, figures are
/// deterministic and independent) plus per-figure timings.
pub fn run_all_parallel(scale: Scale) -> (String, Vec<parallel::JobResult>) {
    let jobs = parallel::figure_jobs();
    let results = parallel::run_jobs(&jobs, scale);
    let report = results
        .iter()
        .map(|r| r.output.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    (report, results)
}
