//! Figure 12: single-job distributed-training throughput (images/s) for
//! ResNet-50/101/152 and VGG-11/16/19 — ASK-BytePS vs ATP vs SwitchML,
//! plus a no-INA parameter-server reference.
//!
//! Paper shape: the three INA systems perform alike, with ASK and ATP
//! slightly ahead of SwitchML on some models because SwitchML's small
//! packets waste bandwidth.

use crate::output::Table;
use crate::runners::Scale;
use ask_baselines::prelude::*;
use ask_workloads::models::ModelSpec;

/// Regenerates Figure 12.
pub fn run(_scale: Scale) -> String {
    let cfg = TrainingConfig::paper_testbed();
    let mut t = Table::new(
        "Figure 12 — training throughput (images/s, 8 workers, 100 Gbps)",
        &["model", "ASK", "ATP", "SwitchML", "PS (no INA)"],
    );
    for model in ModelSpec::paper_models() {
        t.row(&[
            model.name.to_string(),
            format!(
                "{:.0}",
                images_per_sec(&model, TrainingSystem::AskBytePs, &cfg)
            ),
            format!("{:.0}", images_per_sec(&model, TrainingSystem::Atp, &cfg)),
            format!(
                "{:.0}",
                images_per_sec(&model, TrainingSystem::SwitchMl, &cfg)
            ),
            format!(
                "{:.0}",
                images_per_sec(&model, TrainingSystem::PsNoIna, &cfg)
            ),
        ]);
    }
    t.note("paper: ASK ≈ ATP ≥ SwitchML on all six models; the PS column shows the INA gain");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_models() {
        let out = run(Scale::Quick);
        for name in ["ResNet50", "ResNet152", "VGG19"] {
            assert!(out.contains(name), "missing {name}");
        }
    }
}
