//! Plain-text table formatting for figure/table reproductions.

use std::fmt::Write as _;

/// A fixed-width text table with a title and footnotes.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column header.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a footnote (rendered under the table, prefixed `-`).
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cols);
            for (i, cell) in cells.iter().enumerate() {
                parts.push(format!("{:>width$}", cell, width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        for note in &self.notes {
            let _ = writeln!(out, "- {note}");
        }
        out
    }
}

/// Formats a bits-per-second value as Gbps with two decimals.
pub fn gbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e9)
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats seconds with two decimals.
pub fn secs(s: f64) -> String {
    format!("{s:.2}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| longer |"));
        assert!(s.contains("- a note"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(gbps(91.75e9), "91.75");
        assert_eq!(pct(0.9585), "95.85%");
        assert_eq!(secs(6.0), "6.00s");
    }
}
