//! Figures 10 & 11: WordCount on the mini-Spark engine — job completion
//! time for ASK vs Spark / SparkSHM / SparkRDMA (Fig. 10) and the
//! mapper/reducer task-completion-time breakdown (Fig. 11).
//!
//! The switch absorption fed to the ASK cost model is *measured* on the
//! real stack with a scaled WordCount stream, then the cluster-scale JCT
//! comes from the calibrated cost engine (the paper's full volume — up to
//! 1.92 × 10¹⁰ tuples — is beyond event-level simulation).
//!
//! Paper shape: ASK cuts JCT by 67.3–75.1% against every baseline;
//! SHM/RDMA barely help; ASK mappers are ~10× faster while ASK reducers
//! are somewhat slower (they merge co-located data).

use crate::output::{secs, Table};
use crate::runners::{run_ask, AskRun, Scale};
use ask::prelude::*;
use ask_baselines::prelude::*;
use ask_workloads::wordcount::WordCountJob;

/// Measures switch absorption for a WordCount-like stream on the real stack.
pub fn measured_absorption(scale: Scale) -> f64 {
    let tuples = scale.count(120_000, 1_000_000);
    let distinct = scale.count(6_000, 40_000);
    let mut cfg = AskConfig::paper_default();
    // Match the switch-memory pressure of the full-scale job (2^18 distinct
    // keys per mapper against the full pipeline).
    cfg.aggregators_per_aa = (distinct as usize / 2).next_power_of_two().min(16 * 1024);
    cfg.region_aggregators = cfg.aggregators_per_aa;
    let run_cfg = AskRun::paper(cfg);
    let job = WordCountJob {
        machines: 1,
        mappers_per_machine: 2,
        distinct_keys_per_mapper: distinct,
        tuples_per_mapper: tuples / 2,
    };
    let streams = vec![job.mapper_stream(1, 0), job.mapper_stream(1, 1)];
    run_ask(&run_cfg, streams).absorption()
}

/// Regenerates Figure 10 (JCT) and Figure 11 (TCT breakdown).
pub fn run(scale: Scale) -> String {
    let absorption = measured_absorption(scale);
    let engine = MiniSpark::new(HostCostModel::testbed(), 32);

    let mut f10 = Table::new(
        "Figure 10 — WordCount JCT (3 machines × 32 mappers/reducers)",
        &[
            "tuples/mapper",
            "Spark",
            "SparkSHM",
            "SparkRDMA",
            "ASK",
            "reduction vs Spark",
        ],
    );
    let mut f11 = Table::new(
        "Figure 11 — task completion times at 5e7 tuples/mapper",
        &["system", "mapper TCT", "reducer TCT"],
    );
    for volume in [50_000_000u64, 100_000_000, 150_000_000, 200_000_000] {
        let job = WordCountJob::figure10(volume);
        let spark = engine.run(&job, Engine::SparkVanilla);
        let shm = engine.run(&job, Engine::SparkShm);
        let rdma = engine.run(&job, Engine::SparkRdma);
        let ask = engine.run(
            &job,
            Engine::Ask {
                switch_absorption: absorption,
            },
        );
        f10.row(&[
            format!("{:.0e}", volume as f64),
            secs(spark.jct),
            secs(shm.jct),
            secs(rdma.jct),
            secs(ask.jct),
            format!("{:.1}%", (1.0 - ask.jct / spark.jct) * 100.0),
        ]);
        if volume == 50_000_000 {
            for (name, r) in [
                ("Spark", &spark),
                ("SparkSHM", &shm),
                ("SparkRDMA", &rdma),
                ("ASK", &ask),
            ] {
                f11.row(&[name.to_string(), secs(r.mapper_tct), secs(r.reducer_tct)]);
            }
        }
    }
    f10.note(&format!(
        "switch absorption measured on the real stack: {:.1}% (paper band 85.7–94.3%)",
        absorption * 100.0
    ));
    f10.note("paper: ASK reduces JCT by 67.3–75.1%; SHM/RDMA gains are marginal");
    f11.note("paper: ASK mappers mean 1.67s vs 15.89–17.67s; ASK reducers somewhat slower");
    format!("{}\n{}", f10.render(), f11.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_absorption_is_high() {
        let a = measured_absorption(Scale::Quick);
        assert!(a > 0.7, "WordCount absorption {a}");
    }

    #[test]
    fn jct_reduction_band() {
        let engine = MiniSpark::new(HostCostModel::testbed(), 32);
        let job = WordCountJob::figure10(100_000_000);
        let spark = engine.run(&job, Engine::SparkVanilla).jct;
        let ask = engine
            .run(
                &job,
                Engine::Ask {
                    switch_absorption: 0.9,
                },
            )
            .jct;
        let red = 1.0 - ask / spark;
        assert!((0.5..0.9).contains(&red), "reduction {red}");
    }
}
