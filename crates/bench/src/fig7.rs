//! Figure 7: computation offload — ASK with 1/2/4 data channels vs the
//! host-only PreAggr baseline, JCT and CPU usage.
//!
//! The ASK side is *measured* on the real stack (scaled volume, then
//! linearly extrapolated to the paper's 51.2 GB / 6.4 G tuples — valid
//! because the pipeline is in steady state); PreAggr comes from the
//! calibrated host cost model.
//!
//! Paper shape: ASK ≈ 16 s (1 dCh) → ≈ 6 s (4 dCh) using 1.78–7.14% CPU;
//! PreAggr 111.2 s (8 threads) → 33.2 s (32 threads) burning up to all
//! cores.

use crate::output::{secs, Table};
use crate::runners::{run_ask, AskRun, Scale};
use ask::prelude::*;
use ask_baselines::prelude::*;
use ask_workloads::text::uniform_stream;

/// The paper's full workload: 6.4 G tuples (51.2 GB of 8-byte tuples).
const PAPER_TUPLES: u64 = 6_400_000_000;
const PAPER_DISTINCT: u64 = 32_000_000;
const CORES: usize = 56;

/// Regenerates Figure 7.
pub fn run(scale: Scale) -> String {
    let sim_tuples = scale.count(120_000, 2_000_000);
    let sim_distinct = scale.count(4_000, 64_000);
    let volume_scale = PAPER_TUPLES as f64 / sim_tuples as f64;

    let mut t = Table::new(
        "Figure 7 — JCT and CPU: ASK data channels vs host-only PreAggr",
        &["system", "JCT (paper-scale)", "sender CPU"],
    );

    for channels in [1usize, 2, 4] {
        let mut cfg = AskConfig::paper_default();
        // The paper's microbenchmarks pack 32 short tuples per packet
        // (§5.3); the uniform benchmark keys are all short.
        cfg.layout = PacketLayout::short_only(32);
        cfg.data_channels = channels;
        cfg.region_aggregators = cfg.aggregators_per_aa / channels.max(1);
        let run_cfg = AskRun {
            tasks: channels,
            ..AskRun::paper(cfg)
        };
        let stream = uniform_stream(7, sim_distinct, sim_tuples);
        let report = run_ask(&run_cfg, vec![stream]);
        let jct_scaled = report.jct_s * volume_scale;
        let cpu_util = report.sender_cpu_s[0] / report.jct_s / CORES as f64;
        t.row(&[
            format!("ASK {channels} dCh"),
            secs(jct_scaled),
            format!("{:.2}%", cpu_util * 100.0),
        ]);
    }

    let cost = HostCostModel::testbed();
    for threads in [8usize, 16, 32, 56] {
        let r = run_preaggr(&cost, PAPER_TUPLES, PAPER_DISTINCT, threads, CORES);
        t.row(&[
            format!("PreAggr {threads} thr"),
            secs(r.jct),
            format!("{:.2}%", r.sender_cpu_utilization * 100.0),
        ]);
    }
    t.note("paper: ASK 16s/1dCh → 6s/4dCh at 1.78–7.14% CPU; PreAggr 111.2s/8thr, 33.2s/32thr");
    t.note(&format!(
        "ASK measured at {sim_tuples} tuples and scaled ×{volume_scale:.0} to the paper volume"
    ));
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ask_beats_preaggr_with_less_cpu() {
        // Shape check at quick scale: 4-channel ASK JCT (paper-scale) is
        // far below PreAggr's 8-thread JCT.
        let mut cfg = AskConfig::paper_default();
        cfg.data_channels = 4;
        let run_cfg = AskRun {
            tasks: 4,
            ..AskRun::paper(cfg)
        };
        let sim_tuples = 60_000u64;
        let report = run_ask(&run_cfg, vec![uniform_stream(7, 2_000, sim_tuples)]);
        let scaled = report.jct_s * PAPER_TUPLES as f64 / sim_tuples as f64;
        let cost = HostCostModel::testbed();
        let pre = run_preaggr(&cost, PAPER_TUPLES, PAPER_DISTINCT, 8, CORES);
        assert!(
            scaled < pre.jct / 2.0,
            "ASK paper-scale JCT {scaled} vs PreAggr {}",
            pre.jct
        );
    }
}
