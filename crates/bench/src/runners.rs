//! Shared measurement runners: drive the real `ask` stack and extract the
//! metrics the figures report.

use ask::prelude::*;
use ask::service::PhaseTiming;
use ask_simnet::link::LinkConfig;
use ask_simnet::time::SimDuration;
use ask_wire::packet::TaskId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Process-wide switch for the `--timing` phase breakdown. When on, every
/// [`run_ask`] enables phase accounting on its service and folds the
/// result into [`phase_totals`]. Off by default: clock reads cost wall
/// time, and the breakdown is observational only.
static PHASE_TIMING: AtomicBool = AtomicBool::new(false);
static PHASE_TOTALS: Mutex<PhaseTiming> = Mutex::new(PhaseTiming {
    packetize_ns: 0,
    switch_ns: 0,
    host_ns: 0,
    drain_ns: 0,
    total_ns: 0,
});

/// Turns on per-phase wall-time accounting for every subsequent
/// [`run_ask`] in this process (the `--timing` flag).
pub fn enable_phase_timing() {
    PHASE_TIMING.store(true, Ordering::Relaxed);
}

/// Phase totals accumulated across all timed runs, in nanoseconds of host
/// wall time. All zeros unless [`enable_phase_timing`] was called first.
pub fn phase_totals() -> PhaseTiming {
    *PHASE_TOTALS.lock().unwrap()
}

/// Renders the accumulated phase breakdown as an *excluded* report section
/// (wall times vary run to run, so they must never enter golden or
/// baseline comparisons).
pub fn render_phase_totals() -> String {
    let t = phase_totals();
    let ms = |ns: u64| ns as f64 / 1e6;
    let pct = |ns: u64| {
        if t.total_ns == 0 {
            0.0
        } else {
            100.0 * ns as f64 / t.total_ns as f64
        }
    };
    let mut out = String::from("Phase wall-time breakdown (observational; excluded from baselines)\n");
    for (name, ns) in [
        ("packetize", t.packetize_ns),
        ("switch", t.switch_ns),
        ("host", t.host_ns),
        ("drain", t.drain_ns),
    ] {
        out.push_str(&format!("  {name:<10} {:>10.2} ms  {:>5.1}%\n", ms(ns), pct(ns)));
    }
    out.push_str(&format!("  {:<10} {:>10.2} ms\n", "total", ms(t.total_ns)));
    out
}

/// How large a workload the harness generates.
///
/// `Quick` keeps every figure's regeneration in seconds (CI-friendly);
/// `Full` uses larger volumes for tighter steady-state numbers. Both
/// produce the same *shapes*; EXPERIMENTS.md records Full-scale numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small volumes, seconds per figure.
    Quick,
    /// Larger volumes, minutes per figure.
    Full,
}

impl Scale {
    /// Reads `ASK_BENCH_SCALE=full` (any capitalization) from the
    /// environment, default Quick.
    pub fn from_env() -> Self {
        match std::env::var("ASK_BENCH_SCALE") {
            Ok(v) => Scale::parse(&v),
            Err(_) => Scale::Quick,
        }
    }

    /// Parses a scale name case-insensitively; anything but `full` is Quick.
    pub fn parse(s: &str) -> Self {
        if s.trim().eq_ignore_ascii_case("full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Scales a Quick-mode count up in Full mode.
    pub fn count(&self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Parameters of one measured ASK run.
#[derive(Debug, Clone)]
pub struct AskRun {
    /// ASK configuration (channels, layout, window, ...).
    pub config: AskConfig,
    /// Host↔switch links.
    pub link: LinkConfig,
    /// Parallel aggregation tasks to spread across data channels.
    pub tasks: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl AskRun {
    /// A run with paper-default config, clean 100 Gbps links, and one task
    /// per data channel.
    pub fn paper(config: AskConfig) -> Self {
        let tasks = config.data_channels;
        AskRun {
            config,
            link: LinkConfig::new(100e9, SimDuration::from_micros(1)),
            tasks,
            seed: 42,
        }
    }
}

/// Measurements extracted from one run.
#[derive(Debug, Clone)]
pub struct AskReport {
    /// Wall-clock from submission to the last task's completion.
    pub jct_s: f64,
    /// Per-sender sending-phase duration (submission to last FIN ack); the
    /// denominator for steady-state throughput, excluding task teardown.
    pub sender_elapsed_s: Vec<f64>,
    /// Per-sender goodput (payload bits/s over the sending phase).
    pub sender_goodput_bps: Vec<f64>,
    /// Per-sender wire throughput over the sending phase (bits/s, includes
    /// headers/retx/acks).
    pub sender_wire_bps: Vec<f64>,
    /// Merged switch counters across tasks.
    pub switch: SwitchTaskStats,
    /// Receiver daemon counters.
    pub receiver: HostStats,
    /// Per-sender daemon counters.
    pub senders: Vec<HostStats>,
    /// Receiver CPU busy time (s).
    pub receiver_cpu_s: f64,
    /// Per-sender CPU busy time (s).
    pub sender_cpu_s: Vec<f64>,
    /// Switch-side packet-pool takes served from the free list.
    pub switch_pool_hits: u64,
    /// Switch-side packet-pool takes that allocated.
    pub switch_pool_misses: u64,
    /// Data frames the switch fully absorbed without materializing a single
    /// slot — pure view-path absorbs that never touched the packet pool.
    pub switch_pure_absorb: u64,
}

impl AskReport {
    /// Fraction of eligible tuples aggregated on the switch (Table 1 row 1).
    pub fn absorption(&self) -> f64 {
        self.switch.tuple_aggregation_ratio()
    }
}

/// Runs `streams[i]` from sender `i` (hosts 1..) to the receiver (host 0),
/// split over `run.tasks` parallel tasks, and reports the measurements.
///
/// # Panics
///
/// Panics if `streams` is empty or the run stalls.
pub fn run_ask(run: &AskRun, streams: Vec<Vec<KvTuple>>) -> AskReport {
    assert!(!streams.is_empty(), "need at least one sender");
    let n_senders = streams.len();
    let mut service = AskServiceBuilder::new(n_senders + 1)
        .config(run.config.clone())
        .link(run.link.clone())
        .seed(run.seed)
        .build();
    let timed = PHASE_TIMING.load(Ordering::Relaxed);
    if timed {
        service.enable_phase_timing();
    }
    let hosts = service.hosts().to_vec();
    let receiver = hosts[0];

    // Split each sender's stream round-robin over the parallel tasks.
    let tasks: Vec<TaskId> = (0..run.tasks as u32).map(TaskId).collect();
    for &task in &tasks {
        service.submit_task(task, receiver, &hosts[1..]);
    }
    for (s, stream) in streams.into_iter().enumerate() {
        let mut chunks: Vec<Vec<KvTuple>> = vec![Vec::new(); run.tasks];
        for (i, t) in stream.into_iter().enumerate() {
            chunks[i % run.tasks].push(t);
        }
        for (ti, chunk) in chunks.into_iter().enumerate() {
            service.submit_stream(tasks[ti], hosts[1 + s], chunk);
        }
    }

    let mut done_at = 0.0f64;
    for &task in &tasks {
        let t = service
            .run_until_complete(task, receiver, u64::MAX)
            .unwrap_or_else(|e| panic!("{task} stalled: {e}"));
        done_at = done_at.max(t.as_secs_f64());
    }
    let jct_s = done_at.max(1e-12);

    let mut switch = SwitchTaskStats::default();
    for &task in &tasks {
        if let Some(s) = service.switch_stats(task) {
            switch.merge(&s);
        }
    }
    let mut sender_elapsed = Vec::new();
    let mut sender_goodput = Vec::new();
    let mut sender_wire = Vec::new();
    let mut sender_cpu = Vec::new();
    let mut senders_stats = Vec::new();
    for &h in &hosts[1..] {
        let done = tasks
            .iter()
            .filter_map(|&t| {
                service
                    .network_mut()
                    .node::<ask::prelude::AskDaemon>(h)
                    .send_complete_at(t)
            })
            .map(|t| t.as_secs_f64())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        sender_elapsed.push(done);
        let stats = service.host_stats(h);
        senders_stats.push(stats);
        sender_goodput.push(stats.goodput_bytes_sent as f64 * 8.0 / done);
        let uplink = service.uplink_stats(h);
        sender_wire.push(uplink.bytes_sent as f64 * 8.0 / done);
        sender_cpu.push(service.host_cpu_busy(h).as_secs_f64());
    }
    if timed {
        PHASE_TOTALS.lock().unwrap().absorb(&service.phase_timing());
    }
    let switch_pool = service.switch_ref().engine().pool();
    AskReport {
        jct_s,
        sender_elapsed_s: sender_elapsed,
        sender_goodput_bps: sender_goodput,
        sender_wire_bps: sender_wire,
        switch,
        switch_pool_hits: switch_pool.hits(),
        switch_pool_misses: switch_pool.misses(),
        switch_pure_absorb: service.switch_ref().pure_absorb_frames(),
        receiver: service.host_stats(receiver),
        senders: senders_stats,
        receiver_cpu_s: service.host_cpu_busy(receiver).as_secs_f64(),
        sender_cpu_s: sender_cpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ask_workloads::text::uniform_stream;

    #[test]
    fn runner_measures_a_small_run() {
        let mut cfg = AskConfig::tiny();
        cfg.data_channels = 2;
        let run = AskRun {
            tasks: 2,
            ..AskRun::paper(cfg)
        };
        let report = run_ask(&run, vec![uniform_stream(1, 64, 2000)]);
        assert!(report.jct_s > 0.0);
        assert_eq!(report.sender_goodput_bps.len(), 1);
        assert!(report.sender_goodput_bps[0] > 0.0);
        assert!(report.absorption() > 0.5, "small keyspace mostly absorbed");
        let total = report.switch.tuples_aggregated + report.switch.tuples_forwarded;
        assert_eq!(total, 2000);
    }

    #[test]
    fn scale_env_defaults_quick() {
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert_eq!(Scale::Quick.count(5, 50), 5);
        assert_eq!(Scale::Full.count(5, 50), 50);
    }

    #[test]
    fn scale_parse_is_case_insensitive() {
        assert_eq!(Scale::parse("full"), Scale::Full);
        assert_eq!(Scale::parse("FULL"), Scale::Full);
        assert_eq!(Scale::parse("Full"), Scale::Full);
        assert_eq!(Scale::parse(" fUlL "), Scale::Full);
        assert_eq!(Scale::parse("quick"), Scale::Quick);
        assert_eq!(Scale::parse(""), Scale::Quick);
        assert_eq!(Scale::parse("fullest"), Scale::Quick);
    }
}
