//! Criterion microbenchmarks of ASK's hot paths and design-choice
//! ablations: packetization, the switch pipeline pass (vectorized vs
//! single-key), the compact dedup window, the codec, and shadow-copy
//! swap/fetch.

use ask::prelude::*;
use ask::switch::AggregatorEngine;
use ask_wire::codec::{decode, encode};
use ask_wire::packet::{AskPacket, ChannelId, DataPacket, FetchScope, SeqNo, TaskId};
use ask_workloads::text::uniform_stream;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn engine_with(layout: PacketLayout) -> (AggregatorEngine, Packetizer) {
    let mut cfg = AskConfig::paper_default();
    cfg.layout = layout;
    let packetizer = Packetizer::new(cfg.layout, 64);
    let mut engine = AggregatorEngine::new(cfg);
    engine.register_task(TaskId(1), 0).expect("region");
    (engine, packetizer)
}

fn payloads(packetizer: &Packetizer, tuples: u64) -> Vec<Vec<Option<KvTuple>>> {
    packetizer
        .packetize(uniform_stream(5, tuples / 4, tuples))
        .data_payloads
}

/// One full switch pass per packet, paper layout (24 slots).
fn bench_switch_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("switch_pass");
    for (name, layout) in [
        ("vectorized_24slot", PacketLayout::paper_default()),
        ("single_key_ablation", PacketLayout::short_only(1)),
    ] {
        let (mut engine, packetizer) = engine_with(layout);
        let pkts: Vec<DataPacket> = payloads(&packetizer, 24_000)
            .into_iter()
            .enumerate()
            .map(|(i, slots)| DataPacket {
                task: TaskId(1),
                channel: ChannelId(0),
                seq: SeqNo(i as u64),
                slots,
            })
            .collect();
        let tuples: usize = pkts.iter().map(|p| p.occupied()).sum();
        group.throughput(Throughput::Elements(tuples as u64));
        let mut seq = pkts.len() as u64;
        group.bench_function(name, |b| {
            let mut ix = 0usize;
            b.iter(|| {
                // Rotate through pre-built packets with fresh seqs so the
                // dedup window always classifies First.
                let mut p = pkts[ix % pkts.len()].clone();
                p.seq = SeqNo(seq);
                seq += 1;
                ix += 1;
                engine.process_data(p)
            });
        });
    }
    group.finish();
}

/// Sender-side packetization of a uniform stream.
fn bench_packetizer(c: &mut Criterion) {
    let packetizer = Packetizer::new(PacketLayout::paper_default(), 64);
    let stream = uniform_stream(5, 10_000, 50_000);
    let mut group = c.benchmark_group("packetizer");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("uniform_50k", |b| {
        b.iter_batched(
            || stream.clone(),
            |s| packetizer.packetize(s),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The compact seen-window dedup gate.
fn bench_dedup_window(c: &mut Criterion) {
    let (mut engine, _) = engine_with(PacketLayout::paper_default());
    let mut seq = 0u64;
    c.bench_function("dedup_observe_bypass", |b| {
        b.iter(|| {
            seq += 1;
            engine.observe_bypass(ChannelId(0), SeqNo(seq))
        });
    });
}

/// Wire codec round-trip of a full data packet.
fn bench_codec(c: &mut Criterion) {
    let layout = PacketLayout::paper_default();
    let packetizer = Packetizer::new(layout, 64);
    let slots = payloads(&packetizer, 2_400).remove(0);
    let pkt = AskPacket::Data(DataPacket {
        task: TaskId(1),
        channel: ChannelId(0),
        seq: SeqNo(1),
        slots,
    });
    c.bench_function("codec_encode", |b| b.iter(|| encode(&pkt, &layout)));
    let bytes = encode(&pkt, &layout);
    c.bench_function("codec_decode", |b| {
        b.iter(|| decode(bytes.clone()).expect("valid"))
    });
    c.bench_function("codec_roundtrip", |b| {
        b.iter(|| decode(encode(&pkt, &layout)).expect("valid"))
    });
}

/// By-value data-packet ingest: the packet moves into the engine, which
/// blanks aggregated slots in place (no per-packet clone on the fast path).
fn bench_aggregator_ingest(c: &mut Criterion) {
    let (mut engine, packetizer) = engine_with(PacketLayout::paper_default());
    let pkts: Vec<DataPacket> = payloads(&packetizer, 24_000)
        .into_iter()
        .enumerate()
        .map(|(i, slots)| DataPacket {
            task: TaskId(1),
            channel: ChannelId(0),
            seq: SeqNo(i as u64),
            slots,
        })
        .collect();
    let tuples: usize = pkts.iter().map(|p| p.occupied()).sum();
    let mut group = c.benchmark_group("aggregator_ingest");
    group.throughput(Throughput::Elements(tuples as u64));
    let mut seq = pkts.len() as u64;
    let mut ix = 0usize;
    group.bench_function("single_pass_24slot", |b| {
        b.iter_batched(
            || {
                // Build the owned packet outside the timed region so the
                // measurement is the ingest pass alone.
                let mut p = pkts[ix % pkts.len()].clone();
                p.seq = SeqNo(seq);
                seq += 1;
                ix += 1;
                p
            },
            |p| engine.process_data(p),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Burst ingest ablation: the zero-materialization view path (parse →
/// columnar pre-hash → per-lane aggregation) vs the materializing path
/// (decode into pooled slot vectors → per-slot aggregation), at burst
/// sizes 1, 8, and 64. Frame encoding happens in the untimed setup; the
/// timed region is exactly what the switch does per delivery burst.
fn bench_batch_view_ingest(c: &mut Criterion) {
    use ask::switch::{DataVerdict, ViewVerdict};
    use ask_wire::codec::{decode_envelope_pooled, encode_envelope_parts};
    use ask_wire::view::{DataPacketView, FrameView, PacketView};
    use bytes::Bytes;

    let layout = PacketLayout::paper_default();
    let (mut view_engine, packetizer) = engine_with(layout);
    let (mut mat_engine, _) = engine_with(layout);
    let slots = payloads(&packetizer, 96_000);
    let mut group = c.benchmark_group("batch_view_ingest");
    for n in [1usize, 8, 64] {
        group.throughput(Throughput::Elements(n as u64));
        let mut seq = 0u64;
        let mut ix = 0usize;
        let build = |seq: &mut u64, ix: &mut usize| -> Vec<Bytes> {
            (0..n)
                .map(|_| {
                    let p = AskPacket::Data(DataPacket {
                        task: TaskId(1),
                        channel: ChannelId(0),
                        seq: SeqNo(*seq),
                        slots: slots[*ix % slots.len()].clone(),
                    });
                    *seq += 1;
                    *ix += 1;
                    encode_envelope_parts(1, 0, 0, 0, &p, &layout)
                })
                .collect()
        };
        let mut views: Vec<DataPacketView> = Vec::new();
        let mut view_verdicts: Vec<ViewVerdict> = Vec::new();
        group.bench_function(&format!("view_burst{n}"), |b| {
            b.iter_batched(
                || build(&mut seq, &mut ix),
                |frames| {
                    views.clear();
                    for f in frames {
                        let v = FrameView::parse(f).expect("valid frame");
                        if let PacketView::Data(d) = v.into_packet() {
                            views.push(d);
                        }
                    }
                    view_verdicts.clear();
                    view_engine.process_batch_views(&views, &mut view_verdicts);
                },
                BatchSize::SmallInput,
            );
        });
        let mut seq2 = 0u64;
        let mut ix2 = 0usize;
        let mut pkts: Vec<DataPacket> = Vec::new();
        let mut verdicts: Vec<DataVerdict> = Vec::new();
        group.bench_function(&format!("materializing_burst{n}"), |b| {
            b.iter_batched(
                || build(&mut seq2, &mut ix2),
                |frames| {
                    pkts.clear();
                    for f in frames {
                        let env =
                            decode_envelope_pooled(f, mat_engine.pool_mut()).expect("valid frame");
                        if let AskPacket::Data(p) = env.packet {
                            pkts.push(p);
                        }
                    }
                    verdicts.clear();
                    mat_engine.process_batch(pkts.drain(..), &mut verdicts);
                    for v in verdicts.drain(..) {
                        if let DataVerdict::Forward(p) = v {
                            mat_engine.pool_mut().recycle_slots(p.slots);
                        }
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Shadow-copy swap + inactive-copy harvest.
fn bench_shadow_swap(c: &mut Criterion) {
    let (mut engine, packetizer) = engine_with(PacketLayout::paper_default());
    let pkts = payloads(&packetizer, 48_000);
    for (seq, slots) in pkts.into_iter().enumerate() {
        engine.process_data(DataPacket {
            task: TaskId(1),
            channel: ChannelId(0),
            seq: SeqNo(seq as u64),
            slots,
        });
    }
    let mut fetch_seq = 0u32;
    c.bench_function("shadow_swap_and_fetch", |b| {
        b.iter(|| {
            engine.swap(TaskId(1));
            fetch_seq += 1;
            engine.fetch(TaskId(1), FetchScope::Inactive, fetch_seq)
        });
    });
}

/// CRC-32 integrity check over a full-size data packet.
fn bench_checksum(c: &mut Criterion) {
    use ask_wire::codec::crc32;
    let layout = PacketLayout::paper_default();
    let packetizer = Packetizer::new(layout, 64);
    let slots = payloads(&packetizer, 2_400).remove(0);
    let bytes = encode(
        &AskPacket::Data(DataPacket {
            task: TaskId(1),
            channel: ChannelId(0),
            seq: SeqNo(1),
            slots,
        }),
        &layout,
    );
    let mut group = c.benchmark_group("checksum");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("crc32_data_packet", |b| b.iter(|| crc32(&bytes)));
    group.finish();
}

/// The per-task ALU operators: the op selection must not cost anything.
fn bench_aggregate_ops(c: &mut Criterion) {
    use ask_wire::packet::AggregateOp;
    let mut group = c.benchmark_group("aggregate_op");
    for (name, op) in [
        ("sum", AggregateOp::Sum),
        ("max", AggregateOp::Max),
        ("min", AggregateOp::Min),
    ] {
        let mut cfg = AskConfig::paper_default();
        cfg.layout = PacketLayout::paper_default();
        let packetizer = Packetizer::new(cfg.layout, 64);
        let mut engine = AggregatorEngine::new(cfg);
        engine
            .register_task_with_op(TaskId(1), 0, op)
            .expect("region");
        let pkts: Vec<DataPacket> = payloads(&packetizer, 12_000)
            .into_iter()
            .enumerate()
            .map(|(i, slots)| DataPacket {
                task: TaskId(1),
                channel: ChannelId(0),
                seq: SeqNo(i as u64),
                slots,
            })
            .collect();
        let mut seq = pkts.len() as u64;
        group.bench_function(name, |b| {
            let mut ix = 0usize;
            b.iter(|| {
                let mut p = pkts[ix % pkts.len()].clone();
                p.seq = SeqNo(seq);
                seq += 1;
                ix += 1;
                engine.process_data(p)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_switch_pass,
    bench_packetizer,
    bench_dedup_window,
    bench_codec,
    bench_aggregator_ingest,
    bench_batch_view_ingest,
    bench_shadow_swap,
    bench_checksum,
    bench_aggregate_ops
);
criterion_main!(benches);
