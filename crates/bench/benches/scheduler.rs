//! Microbenchmarks of the two hot dispatch structures introduced by the
//! scheduler rework: the simnet timer wheel (`event_queue_push_pop`) and
//! the switch's per-channel dispatch cache (`switch_dispatch`).
//!
//! CI runs this bench in smoke mode (no `--bench` argument) so both paths
//! stay compiled and exercised; full measurements go into the `micro_*`
//! sections of `BENCH_baseline_committed.json` when the baseline machine
//! refreshes them.

use ask::prelude::*;
use ask_simnet::bench_api::BenchEventQueue;
use ask_wire::packet::{ChannelId, DataPacket, KvTuple, SeqNo, TaskId};
use ask_workloads::text::uniform_stream;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Steady-state push+pop through the timer wheel with the simulator's
/// event-time mix: ~95% of events land within a few microseconds of *now*
/// (link serialization + propagation) and ~5% sit at the retransmission
/// horizon or beyond, past the wheel window, so the overflow-heap path and
/// window migration are part of what is measured.
fn bench_event_queue_push_pop(c: &mut Criterion) {
    let mut q = BenchEventQueue::new();
    let mut now = 0u64;
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Warm the queue to a realistic backlog so pops scan occupied buckets,
    // not an empty wheel.
    let push = |q: &mut BenchEventQueue, now: u64, r: u64| {
        let delta = if r % 100 < 95 {
            r % 3_000 // near-future: same-burst deliveries
        } else {
            2_000_000 + r % 500_000 // far-future: beyond the wheel window
        };
        q.push_timer(now + delta, r);
    };
    for _ in 0..512 {
        let r = rand();
        push(&mut q, now, r);
    }
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("event_queue_push_pop", |b| {
        b.iter(|| {
            let r = rand();
            push(&mut q, now, r);
            let (at, seq) = q.pop().expect("backlog stays at 512");
            now = at;
            seq
        });
    });
    group.finish();
}

/// One full data-packet pass through the switch with a warm dispatch
/// cache: a single registered task on a single channel, so after the first
/// packet every lookup hits the cached line (generation check + direct
/// index) instead of the two-map slow path.
fn bench_switch_dispatch(c: &mut Criterion) {
    let cfg = AskConfig::paper_default();
    let packetizer = Packetizer::new(cfg.layout, 64);
    let mut engine = AggregatorEngine::new(cfg);
    engine.register_task(TaskId(1), 0).expect("region");
    let pkts: Vec<DataPacket> = packetizer
        .packetize(uniform_stream(5, 6_000, 24_000))
        .data_payloads
        .into_iter()
        .enumerate()
        .map(|(i, slots)| DataPacket {
            task: TaskId(1),
            channel: ChannelId(0),
            seq: SeqNo(i as u64),
            slots,
        })
        .collect();
    // Warm the line: the first pass installs the (channel, task) entry.
    engine.process_data(pkts[0].clone());
    let mut seq = pkts.len() as u64;
    let mut ix = 0usize;
    let mut group = c.benchmark_group("switch_dispatch");
    group.throughput(Throughput::Elements(1));
    group.bench_function("switch_dispatch", |b| {
        b.iter(|| {
            let mut p = pkts[ix % pkts.len()].clone();
            p.seq = SeqNo(seq);
            seq += 1;
            ix += 1;
            engine.process_data(p)
        });
    });
    group.finish();
}

/// Draining one 16-frame same-instant burst through the scheduler: a pop of
/// the head delivery plus 15 `pop_deliver_if` probes (the extension check
/// `Network::run` issues per burst frame), then a refill. Measures the cost
/// the burst path pays per frame over a plain pop.
fn bench_burst_drain(c: &mut Criterion) {
    const BURST: u64 = 16;
    let mut q = BenchEventQueue::new();
    let mut now = 0u64;
    // Keep a backlog of future bursts so pops scan a realistically
    // populated wheel.
    for b in 1..=32u64 {
        for _ in 0..BURST {
            q.push_deliver(now + b * 1_000, 1);
        }
    }
    let mut next = 33u64 * 1_000;
    let mut group = c.benchmark_group("burst_drain");
    group.throughput(Throughput::Elements(BURST));
    group.bench_function("burst_drain", |b| {
        b.iter(|| {
            let (at, _) = q.pop().expect("backlog stays full");
            now = at;
            let mut drained = 1u64;
            while q.pop_deliver_if(at, 1) {
                drained += 1;
            }
            debug_assert_eq!(drained, BURST);
            for _ in 0..BURST {
                q.push_deliver(next, 1);
            }
            next += 1_000;
            drained
        });
    });
    group.finish();
}

/// A 16-packet single-channel burst through `process_batch` with pooled
/// slot vectors: the dispatch entry is resolved once per burst and packet
/// bodies recycle through the engine's pool, so this measures the amortized
/// per-packet ingest cost the switch pays under burst delivery.
fn bench_batch_ingest(c: &mut Criterion) {
    const BURST: usize = 16;
    let cfg = AskConfig::paper_default();
    let packetizer = Packetizer::new(cfg.layout, 64);
    let mut engine = AggregatorEngine::new(cfg);
    engine.register_task(TaskId(1), 0).expect("region");
    let payloads: Vec<Vec<Option<KvTuple>>> = packetizer
        .packetize(uniform_stream(5, 6_000, 24_000))
        .data_payloads;
    engine.process_data(DataPacket {
        task: TaskId(1),
        channel: ChannelId(0),
        seq: SeqNo(0),
        slots: payloads[0].clone(),
    });
    let mut seq = 1u64;
    let mut ix = 0usize;
    let mut batch: Vec<DataPacket> = Vec::with_capacity(BURST);
    let mut verdicts = Vec::with_capacity(BURST);
    let mut group = c.benchmark_group("batch_ingest");
    group.throughput(Throughput::Elements(BURST as u64));
    group.bench_function("batch_ingest", |b| {
        b.iter(|| {
            batch.clear();
            for _ in 0..BURST {
                let src = &payloads[ix % payloads.len()];
                let mut slots = engine.pool_mut().take_slots(src.len());
                slots.extend(src.iter().cloned());
                batch.push(DataPacket {
                    task: TaskId(1),
                    channel: ChannelId(0),
                    seq: SeqNo(seq),
                    slots,
                });
                seq += 1;
                ix += 1;
            }
            verdicts.clear();
            engine.process_batch(batch.drain(..), &mut verdicts);
            for v in verdicts.drain(..) {
                if let ask::switch::DataVerdict::Forward(residual) = v {
                    engine.pool_mut().recycle_slots(residual.slots);
                }
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue_push_pop,
    bench_switch_dispatch,
    bench_burst_drain,
    bench_batch_ingest
);
criterion_main!(benches);
