//! Measures the bounded-lag windowed executor: the same star-topology
//! workload run sequentially (`lanes1`) and through the parallel window
//! machinery at 2 and 4 lanes. On a multi-core box the lane variants
//! should win once per-window work dominates the merge; on one core they
//! price the window collection/replay overhead instead. Either way the
//! event streams are byte-identical — only wall time may differ.
//!
//! CI runs this bench in smoke mode (no `--bench` argument) so the
//! windowed path stays compiled and exercised; full measurements land in
//! the `micro_*` sections of `BENCH_baseline_committed.json` when the
//! baseline machine refreshes them.

use ask_simnet::prelude::*;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const LEAVES: usize = 8;
const FRAMES_PER_LEAF: u64 = 64;
const GAP_NS: u64 = 700;
const ECHO_DELAY_NS: u64 = 300; // < 1 µs lookahead: exercises staged timers

/// A leaf that fires frames at the hub on a timer cadence.
struct Pinger {
    hub: NodeId,
    got: u64,
}
impl Node for Pinger {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for i in 0..FRAMES_PER_LEAF {
            ctx.set_timer(SimDuration::from_nanos(1 + i * GAP_NS), i);
        }
    }
    fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {
        self.got += 1;
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        let hub = self.hub;
        let _ = ctx.send(hub, Frame::new(Bytes::copy_from_slice(&token.to_be_bytes())));
    }
}

/// A hub that echoes every frame back after an in-window delay.
struct EchoHub;
impl Node for EchoHub {
    fn on_frame(&mut self, from: NodeId, _: Frame, ctx: &mut Context<'_>) {
        ctx.set_timer(
            SimDuration::from_nanos(ECHO_DELAY_NS),
            from.index() as u64,
        );
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        let to = NodeId::from_index(token as usize);
        let _ = ctx.send(to, Frame::new(Bytes::from_static(b"echo")));
    }
}

/// One full star run at the given lane count; returns the event count so
/// the work cannot be optimized away.
fn run_star(lanes: usize) -> u64 {
    let mut b = NetworkBuilder::new(7);
    b.set_lanes(lanes);
    let hub = b.add_node(EchoHub);
    let link = LinkConfig::new(100e9, SimDuration::from_micros(1));
    for _ in 0..LEAVES {
        let leaf = b.add_node(Pinger { hub, got: 0 });
        b.connect(leaf, hub, link.clone());
    }
    let mut net = b.build();
    net.run_to_idle();
    net.events_processed()
}

fn bench_lane_window(c: &mut Criterion) {
    let events = run_star(1);
    assert_eq!(events, run_star(4), "lane count must not change the run");
    let mut group = c.benchmark_group("lane_window");
    group.throughput(Throughput::Elements(events));
    for lanes in [1usize, 2, 4] {
        group.bench_function(&format!("lanes{lanes}") as &str, |bch| {
            bch.iter(|| run_star(lanes));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lane_window);
criterion_main!(benches);
