//! Host daemon receive-path ablation: the zero-materialization view ingest
//! (parse → borrowed slot views → open-addressed task-table merges) vs the
//! legacy materializing path (decode into pooled slot vectors → per-tuple
//! HashMap merges), at delivery-burst sizes 1, 8, and 64.
//!
//! Each daemon lives in a minimal two-node simnet (daemon + a frame sink
//! standing in for the switch) so the timed region is exactly what the
//! simulator hands the receiver per delivery burst: `on_frames` with a
//! vector of wire frames. Frame encoding and network drain (the ACKs the
//! daemon emits back toward the sink) happen in the untimed setup.

use std::cell::RefCell;

use ask::prelude::*;
use ask_simnet::prelude::*;
use ask_wire::codec::encode_envelope_parts;
use ask_wire::packet::{AskPacket, ChannelId, ControlMsg, DataPacket, SeqNo};
use ask_workloads::text::uniform_stream;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

/// The switch stand-in: swallows region requests and ACKs.
struct Sink;

impl Node for Sink {
    fn on_frame(&mut self, _from: NodeId, _frame: Frame, _ctx: &mut Context<'_>) {}
}

struct Harness {
    net: RefCell<Network>,
    daemon: NodeId,
    sink: NodeId,
    layout: PacketLayout,
}

/// Builds a daemon wired to a sink, with one receive task denied switch
/// memory (host-only residual merges; no swap/fetch machinery in the loop).
fn harness(host_scalar: bool) -> Harness {
    let mut cfg = AskConfig::paper_default();
    cfg.host_scalar = host_scalar;
    cfg.swap_threshold = 0;
    let layout = cfg.layout;
    let mut b = NetworkBuilder::new(1);
    let sink = b.add_node(Sink);
    let daemon = b.add_node(AskDaemon::new(cfg, sink));
    b.connect(
        sink,
        daemon,
        LinkConfig::new(100e9, SimDuration::from_micros(1)),
    );
    let mut net = b.build();
    net.with_node::<AskDaemon, _>(daemon, |d, ctx| {
        d.submit_receive_task(TaskId(1), &[], ctx);
    });
    // Deny the region so the task runs host-only: every delivered tuple
    // takes the residual-merge path and the daemon never swaps or fetches.
    let deny = AskPacket::Control(ControlMsg::RegionDeny { task: TaskId(1) });
    let deny = encode_envelope_parts(sink.index() as u32, daemon.index() as u32, 0, 0, &deny, &layout);
    net.with_node::<AskDaemon, _>(daemon, |d, ctx| {
        d.on_frame(sink, Frame::new(deny), ctx);
    });
    net.run_to_idle();
    Harness {
        net: RefCell::new(net),
        daemon,
        sink,
        layout,
    }
}

fn bench_host_ingest(c: &mut Criterion) {
    let packetizer = Packetizer::new(AskConfig::paper_default().layout, 64);
    let slots = packetizer
        .packetize(uniform_stream(5, 24_000, 96_000))
        .data_payloads;
    let mut group = c.benchmark_group("host_ingest");
    for n in [1usize, 8, 64] {
        group.throughput(Throughput::Elements(n as u64));
        for (name, host_scalar) in [("view", false), ("materializing", true)] {
            let h = harness(host_scalar);
            let src = h.sink.index() as u32;
            let dst = h.daemon.index() as u32;
            let mut seq = 0u64;
            let mut ix = 0usize;
            let build = |seq: &mut u64, ix: &mut usize| -> Vec<(NodeId, Frame)> {
                (0..n)
                    .map(|_| {
                        let p = AskPacket::Data(DataPacket {
                            task: TaskId(1),
                            channel: ChannelId(0),
                            seq: SeqNo(*seq),
                            slots: slots[*ix % slots.len()].clone(),
                        });
                        *seq += 1;
                        *ix += 1;
                        let bytes: Bytes = encode_envelope_parts(src, dst, 0, 0, &p, &h.layout);
                        (h.sink, Frame::new(bytes))
                    })
                    .collect()
            };
            group.bench_function(&format!("{name}_burst{n}"), |b| {
                b.iter_batched(
                    || {
                        // Drain the ACKs queued by the previous iteration
                        // so the event heap stays bounded, outside the
                        // timing (PerIteration: setup runs before every
                        // timed call, not once per batch).
                        h.net.borrow_mut().run_to_idle();
                        build(&mut seq, &mut ix)
                    },
                    |mut burst| {
                        h.net
                            .borrow_mut()
                            .with_node::<AskDaemon, _>(h.daemon, |d, ctx| {
                                d.on_frames(&mut burst, ctx)
                            });
                    },
                    BatchSize::PerIteration,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_host_ingest);
criterion_main!(benches);
