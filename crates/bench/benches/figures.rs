//! `cargo bench -p ask-bench --bench figures` — regenerates every table and
//! figure of the paper's evaluation and prints them (custom harness; not a
//! statistical microbenchmark).

fn main() {
    // `cargo bench` passes `--bench`; ignore any filter arguments.
    let scale = ask_bench::Scale::from_env();
    println!("# ASK evaluation reproduction (scale: {scale:?})\n");
    print!("{}", ask_bench::run_all(scale));
}
