//! Errors for resource allocation and per-pass access checking.

use core::fmt;

/// Error returned when declaring a register array would exceed the hardware
/// envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The stage index does not exist in this pipeline.
    UnknownStage {
        /// Requested stage.
        stage: usize,
        /// Number of stages in the pipeline.
        stages: usize,
    },
    /// The stage already declares the maximum number of register arrays.
    ArraySlotsExhausted {
        /// The full stage.
        stage: usize,
        /// The per-stage array limit.
        limit: usize,
    },
    /// The array's SRAM footprint does not fit in the stage's remaining
    /// budget.
    SramExhausted {
        /// The stage that ran out.
        stage: usize,
        /// Bytes requested by this array.
        requested: usize,
        /// Bytes still available in the stage.
        available: usize,
    },
    /// Register width outside the supported 1..=64 bits.
    UnsupportedWidth {
        /// The rejected width.
        bits: u32,
    },
    /// Arrays must have at least one register.
    EmptyArray,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::UnknownStage { stage, stages } => {
                write!(f, "stage {stage} out of range (pipeline has {stages})")
            }
            AllocError::ArraySlotsExhausted { stage, limit } => {
                write!(f, "stage {stage} already declares {limit} register arrays")
            }
            AllocError::SramExhausted {
                stage,
                requested,
                available,
            } => write!(
                f,
                "stage {stage} SRAM exhausted: requested {requested} B, {available} B available"
            ),
            AllocError::UnsupportedWidth { bits } => {
                write!(f, "register width {bits} bits unsupported (1..=64)")
            }
            AllocError::EmptyArray => write!(f, "register arrays must be non-empty"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Error returned when a packet pass violates the PISA access model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// A register array was accessed twice within one packet pass. Real
    /// hardware allows exactly one read-modify-write per array per pass
    /// (§2.2.1), which is the restriction that forces ASK's vectorized
    /// two-dimensional aggregator layout.
    DoubleAccess {
        /// The offending array.
        array: super::pipeline::ArrayId,
    },
    /// An array in an earlier stage was accessed after a later stage; a
    /// packet traverses the stages strictly in order within one pass.
    StageOrderViolation {
        /// Stage of the array being accessed.
        array_stage: usize,
        /// Stage the pass has already advanced to.
        current_stage: usize,
    },
    /// Register index outside the array bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Array length.
        len: usize,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::DoubleAccess { array } => {
                write!(f, "register array {array:?} accessed twice in one pass")
            }
            AccessError::StageOrderViolation {
                array_stage,
                current_stage,
            } => write!(
                f,
                "cannot access stage {array_stage} after advancing to stage {current_stage}"
            ),
            AccessError::IndexOutOfBounds { index, len } => {
                write!(f, "register index {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AllocError::SramExhausted {
            stage: 3,
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("stage 3") && s.contains("100") && s.contains("10"));

        let e = AccessError::IndexOutOfBounds { index: 9, len: 4 };
        assert!(e.to_string().contains("9"));
    }
}
