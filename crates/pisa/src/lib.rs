//! # ask-pisa — a PISA programmable-switch resource & access model
//!
//! ASK's switch program is shaped by three hardware restrictions of
//! Protocol-Independent Switch Architecture (PISA) chips like Intel Tofino
//! (§2.2.1 of the paper):
//!
//! 1. a packet traverses the match-action stages **sequentially, once** per
//!    pipeline pass;
//! 2. each register array can be **read and written at most once** per pass
//!    (a single stateful-ALU read-modify-write);
//! 3. memory is scarce and per-stage (≈1280 KB SRAM per stage, at most 4
//!    register arrays per stage).
//!
//! This crate models exactly those constraints: [`pipeline::Pipeline`] holds
//! register arrays inside per-stage SRAM budgets, and every packet is
//! processed through a [`pipeline::Pass`] that rejects out-of-order or
//! repeated register access at runtime. Higher layers (the `ask` crate)
//! implement the paper's switch program on top, so the reproduced design
//! decisions — two-dimensional aggregator arrays, the compact `seen` window,
//! shadow copies — are forced by the same constraints that forced them on
//! real hardware.
//!
//! ## Example
//!
//! ```
//! use ask_pisa::prelude::*;
//!
//! let mut pipe = Pipeline::new(PipelineSpec::tofino3());
//! let seen = pipe.alloc_array(0, 256, 1)?;   // 1-bit receive-window bits
//! let agg = pipe.alloc_array(1, 1024, 64)?;  // 64-bit aggregators
//!
//! // One packet pass: dedup bit, then aggregate.
//! let mut pass = pipe.begin_pass();
//! let seen_before = pass.set_bit(seen, 17)?;
//! if !seen_before {
//!     pass.access(agg, 42, |v| *v += 5)?;
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod pipeline;
pub mod spec;
pub mod table;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::error::{AccessError, AllocError};
    pub use crate::pipeline::{ArrayId, Pass, Pipeline, ResourceReport, StageUsage, Violation};
    pub use crate::spec::PipelineSpec;
    pub use crate::table::{TableError, TableId};
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever sequence of single accesses runs, a register never holds
        /// a value wider than its declared width.
        #[test]
        fn registers_never_exceed_width(
            width in 1u32..=63,
            writes in proptest::collection::vec(any::<u64>(), 1..50),
        ) {
            let mut p = Pipeline::new(PipelineSpec::tofino3());
            let a = p.alloc_array(0, 1, width).unwrap();
            for w in writes {
                p.begin_pass().access(a, 0, |v| *v = v.wrapping_add(w)).unwrap();
                prop_assert!(p.control_read(a, 0) < (1u64 << width));
            }
        }

        /// set_bit followed by clr_bitc round-trips the paper's four-case
        /// table for any initial bit value.
        #[test]
        fn bit_instructions_match_table(initial in 0u64..=1) {
            let mut p = Pipeline::new(PipelineSpec::tofino3());
            let bits = p.alloc_array(0, 1, 1).unwrap();
            p.control_write(bits, 0, initial);
            // Even segment: observed == previous bit.
            let observed = p.begin_pass().set_bit(bits, 0).unwrap();
            prop_assert_eq!(observed, initial == 1);
            prop_assert_eq!(p.control_read(bits, 0), 1);
            // Odd segment: observed == !previous bit.
            let observed = p.begin_pass().clr_bitc(bits, 0).unwrap();
            prop_assert_eq!(observed, false); // bit was 1 => complement false
            prop_assert_eq!(p.control_read(bits, 0), 0);
        }

        /// Allocation accounting: sum of array footprints equals sram_used,
        /// and allocation never exceeds the stage budget.
        #[test]
        fn sram_accounting_is_exact(
            sizes in proptest::collection::vec((1usize..10_000, 1u32..=64), 1..4)
        ) {
            let mut p = Pipeline::new(PipelineSpec::tofino3());
            let mut expect = 0usize;
            for (len, width) in sizes {
                if p.alloc_array(0, len, width).is_ok() {
                    expect += Pipeline::array_footprint_bytes(len, width);
                }
            }
            prop_assert_eq!(p.sram_used(0), expect);
            prop_assert!(expect <= PipelineSpec::tofino3().sram_per_stage_bytes());
        }
    }
}
