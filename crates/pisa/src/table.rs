//! Match-action tables.
//!
//! Besides register arrays, a PISA stage holds match-action tables: the
//! control plane installs entries (key → action data), and the data plane
//! performs at most one lookup per table per packet pass. ASK uses one to
//! map a packet's task ID to its aggregator-array region and copy-indicator
//! index ("The ASK switch uses the task ID to identify the aggregator
//! memory region", §3.1).

use crate::error::AllocError;
use std::collections::HashMap;

/// Handle to a match-action table declared in a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId {
    pub(crate) stage: usize,
    pub(crate) slot: usize,
}

impl TableId {
    /// Stage the table lives in.
    pub fn stage(self) -> usize {
        self.stage
    }
}

/// An exact-match table: u64 keys to fixed-width action-data words.
#[derive(Debug)]
pub(crate) struct MatchTable {
    pub(crate) entries: HashMap<u64, Vec<u64>>,
    pub(crate) capacity: usize,
    pub(crate) action_words: usize,
    /// Pass id of the most recent lookup, for double-access detection.
    pub(crate) last_access_pass: u64,
}

/// Error installing a table entry from the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// The table is full.
    CapacityExhausted {
        /// The table's entry capacity.
        capacity: usize,
    },
    /// The action data has the wrong number of words.
    ActionWidthMismatch {
        /// Declared action words.
        expected: usize,
        /// Provided action words.
        got: usize,
    },
}

impl core::fmt::Display for TableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TableError::CapacityExhausted { capacity } => {
                write!(f, "table full ({capacity} entries)")
            }
            TableError::ActionWidthMismatch { expected, got } => {
                write!(f, "action data has {got} words, table declares {expected}")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl MatchTable {
    pub(crate) fn new(capacity: usize, action_words: usize) -> Result<Self, AllocError> {
        if capacity == 0 {
            return Err(AllocError::EmptyArray);
        }
        Ok(MatchTable {
            entries: HashMap::with_capacity(capacity),
            capacity,
            action_words,
            last_access_pass: 0,
        })
    }

    pub(crate) fn insert(&mut self, key: u64, action: Vec<u64>) -> Result<(), TableError> {
        if action.len() != self.action_words {
            return Err(TableError::ActionWidthMismatch {
                expected: self.action_words,
                got: action.len(),
            });
        }
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            return Err(TableError::CapacityExhausted {
                capacity: self.capacity,
            });
        }
        self.entries.insert(key, action);
        Ok(())
    }

    pub(crate) fn remove(&mut self, key: u64) -> bool {
        self.entries.remove(&key).is_some()
    }

    /// SRAM footprint: key (8 B) plus action words per entry, at capacity.
    pub(crate) fn footprint_bytes(capacity: usize, action_words: usize) -> usize {
        capacity * (8 + action_words * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = MatchTable::new(4, 2).unwrap();
        t.insert(7, vec![1, 2]).unwrap();
        assert_eq!(t.entries.get(&7), Some(&vec![1, 2]));
        assert!(t.remove(7));
        assert!(!t.remove(7));
    }

    #[test]
    fn capacity_enforced_but_updates_allowed() {
        let mut t = MatchTable::new(2, 1).unwrap();
        t.insert(1, vec![10]).unwrap();
        t.insert(2, vec![20]).unwrap();
        assert_eq!(
            t.insert(3, vec![30]).unwrap_err(),
            TableError::CapacityExhausted { capacity: 2 }
        );
        // Overwriting an existing key is not a new entry.
        t.insert(1, vec![11]).unwrap();
        assert_eq!(t.entries.get(&1), Some(&vec![11]));
    }

    #[test]
    fn action_width_checked() {
        let mut t = MatchTable::new(2, 2).unwrap();
        assert_eq!(
            t.insert(1, vec![1]).unwrap_err(),
            TableError::ActionWidthMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn footprint_formula() {
        assert_eq!(MatchTable::footprint_bytes(256, 3), 256 * 32);
    }

    #[test]
    fn errors_display() {
        assert!(!TableError::CapacityExhausted { capacity: 1 }
            .to_string()
            .is_empty());
    }
}
