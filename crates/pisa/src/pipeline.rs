//! Pipelines, stages, register arrays, and the single-pass access model.
//!
//! A PISA pipeline processes one packet per *pass*: the packet traverses the
//! match-action stages strictly in order, and each register array can be
//! read-modified-written **at most once** per pass through its stateful ALU
//! (§2.2.1 of the paper). These constraints are what make in-switch
//! key-value aggregation hard, so this module enforces them at runtime:
//! violating code gets an [`AccessError`] instead of silently doing what real
//! hardware cannot.

use crate::error::{AccessError, AllocError};
use crate::spec::PipelineSpec;
use crate::table::{MatchTable, TableError, TableId};

/// Match-action tables one stage may declare (separate resource from the
/// register-array slots; generous because tables share match crossbars).
const MAX_TABLES_PER_STAGE: usize = 8;

/// Handle to a register array declared in a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId {
    pub(crate) stage: usize,
    pub(crate) slot: usize,
}

impl ArrayId {
    /// Stage the array lives in.
    pub fn stage(self) -> usize {
        self.stage
    }
}

#[derive(Debug)]
struct RegisterArray {
    cells: Vec<u64>,
    width_bits: u32,
    /// Pass id of the most recent access, for double-access detection.
    last_access_pass: u64,
}

impl RegisterArray {
    fn mask(&self) -> u64 {
        if self.width_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.width_bits) - 1
        }
    }
}

#[derive(Debug)]
struct Stage {
    arrays: Vec<RegisterArray>,
    tables: Vec<MatchTable>,
    sram_used: usize,
}

/// A recorded violation of the per-pass access model.
///
/// Violations are still returned as [`AccessError`]s to the caller, but the
/// pipeline additionally journals them so a harness can assert after a run
/// that *no* pass — on any code path — broke the hardware constraints,
/// without every call site having to thread the errors outward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The pass (1-based, in execution order) that violated a constraint.
    pub pass: u64,
    /// What was violated.
    pub error: AccessError,
}

/// Violations kept verbatim in the journal; beyond this only the count
/// grows (a broken program can violate once per packet).
const MAX_RECORDED_VIOLATIONS: usize = 64;

/// A programmable packet-processing pipeline.
///
/// # Examples
///
/// ```
/// use ask_pisa::prelude::*;
///
/// let mut pipe = Pipeline::new(PipelineSpec::tofino3());
/// let counters = pipe.alloc_array(0, 1024, 32)?;
/// let mut pass = pipe.begin_pass();
/// let old = pass.access(counters, 7, |v| { let old = *v; *v += 1; old })?;
/// assert_eq!(old, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Pipeline {
    spec: PipelineSpec,
    stages: Vec<Stage>,
    next_pass: u64,
    passes_executed: u64,
    violations: Vec<Violation>,
    violation_count: u64,
}

impl Pipeline {
    /// Creates an empty pipeline with the given resource envelope.
    pub fn new(spec: PipelineSpec) -> Self {
        let stages = (0..spec.stages())
            .map(|_| Stage {
                arrays: Vec::new(),
                tables: Vec::new(),
                sram_used: 0,
            })
            .collect();
        Pipeline {
            spec,
            stages,
            next_pass: 1,
            passes_executed: 0,
            violations: Vec::new(),
            violation_count: 0,
        }
    }

    /// Total access-model violations since creation (every [`AccessError`]
    /// any pass ever produced, whether or not the caller handled it).
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// The first recorded violations, in occurrence order (the journal keeps
    /// at most a bounded prefix; [`Pipeline::violation_count`] keeps the
    /// exact total).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn note_violation(&mut self, pass: u64, error: AccessError) {
        self.violation_count += 1;
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(Violation { pass, error });
        }
    }

    /// The resource envelope this pipeline was created with.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Number of packet passes executed so far.
    pub fn passes_executed(&self) -> u64 {
        self.passes_executed
    }

    /// SRAM bytes a register array of `len` × `width_bits` occupies.
    pub fn array_footprint_bytes(len: usize, width_bits: u32) -> usize {
        // Real hardware packs words; we charge the exact bit volume rounded
        // up to bytes, which is what the paper's budget arithmetic does.
        (len * width_bits as usize).div_ceil(8)
    }

    /// Declares a register array of `len` registers of `width_bits` each in
    /// `stage`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the stage does not exist, the stage already
    /// declares the maximum number of arrays, the SRAM budget is exceeded,
    /// the width is outside `1..=64`, or `len == 0`.
    pub fn alloc_array(
        &mut self,
        stage: usize,
        len: usize,
        width_bits: u32,
    ) -> Result<ArrayId, AllocError> {
        if stage >= self.stages.len() {
            return Err(AllocError::UnknownStage {
                stage,
                stages: self.stages.len(),
            });
        }
        if !(1..=64).contains(&width_bits) {
            return Err(AllocError::UnsupportedWidth { bits: width_bits });
        }
        if len == 0 {
            return Err(AllocError::EmptyArray);
        }
        let st = &mut self.stages[stage];
        if st.arrays.len() >= self.spec.max_arrays_per_stage() {
            return Err(AllocError::ArraySlotsExhausted {
                stage,
                limit: self.spec.max_arrays_per_stage(),
            });
        }
        let footprint = Self::array_footprint_bytes(len, width_bits);
        let available = self.spec.sram_per_stage_bytes() - st.sram_used;
        if footprint > available {
            return Err(AllocError::SramExhausted {
                stage,
                requested: footprint,
                available,
            });
        }
        st.sram_used += footprint;
        st.arrays.push(RegisterArray {
            cells: vec![0; len],
            width_bits,
            last_access_pass: 0,
        });
        Ok(ArrayId {
            stage,
            slot: st.arrays.len() - 1,
        })
    }

    /// Declares an exact-match table of `capacity` entries, each carrying
    /// `action_words` 64-bit action-data words, in `stage`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the stage does not exist, already declares
    /// the maximum number of tables, lacks SRAM for the table, or
    /// `capacity == 0`.
    pub fn alloc_table(
        &mut self,
        stage: usize,
        capacity: usize,
        action_words: usize,
    ) -> Result<TableId, AllocError> {
        if stage >= self.stages.len() {
            return Err(AllocError::UnknownStage {
                stage,
                stages: self.stages.len(),
            });
        }
        let st = &mut self.stages[stage];
        if st.tables.len() >= MAX_TABLES_PER_STAGE {
            return Err(AllocError::ArraySlotsExhausted {
                stage,
                limit: MAX_TABLES_PER_STAGE,
            });
        }
        let footprint = MatchTable::footprint_bytes(capacity, action_words);
        let available = self.spec.sram_per_stage_bytes() - st.sram_used;
        if footprint > available {
            return Err(AllocError::SramExhausted {
                stage,
                requested: footprint,
                available,
            });
        }
        let table = MatchTable::new(capacity, action_words)?;
        st.sram_used += footprint;
        st.tables.push(table);
        Ok(TableId {
            stage,
            slot: st.tables.len() - 1,
        })
    }

    /// Control-plane entry installation.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] if the table is full or the action data width
    /// is wrong.
    ///
    /// # Panics
    ///
    /// Panics if the table id is invalid.
    pub fn table_insert(
        &mut self,
        table: TableId,
        key: u64,
        action: Vec<u64>,
    ) -> Result<(), TableError> {
        self.stages[table.stage].tables[table.slot].insert(key, action)
    }

    /// Control-plane entry removal; returns whether the key was present.
    ///
    /// # Panics
    ///
    /// Panics if the table id is invalid.
    pub fn table_remove(&mut self, table: TableId, key: u64) -> bool {
        self.stages[table.stage].tables[table.slot].remove(key)
    }

    /// Per-stage resource usage, for capacity planning and documentation.
    pub fn resource_report(&self) -> ResourceReport {
        ResourceReport {
            stages: self
                .stages
                .iter()
                .map(|st| StageUsage {
                    arrays: st.arrays.len(),
                    tables: st.tables.len(),
                    sram_used: st.sram_used,
                    sram_total: self.spec.sram_per_stage_bytes(),
                })
                .collect(),
        }
    }

    /// SRAM bytes currently allocated in `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn sram_used(&self, stage: usize) -> usize {
        self.stages[stage].sram_used
    }

    /// Starts processing one packet; the returned [`Pass`] enforces the
    /// stage-order and single-access constraints for the packet's lifetime.
    pub fn begin_pass(&mut self) -> Pass<'_> {
        let pass_id = self.next_pass;
        self.next_pass += 1;
        self.passes_executed += 1;
        Pass {
            pipeline: self,
            pass_id,
            current_stage: 0,
        }
    }

    /// Control-plane read of a register, bypassing the per-pass constraints.
    ///
    /// Models the (slow) control channel the switch OS exposes; ASK's
    /// controller uses it for memory-region bookkeeping, *not* for data-path
    /// aggregation.
    ///
    /// # Panics
    ///
    /// Panics if the array id or index is invalid.
    pub fn control_read(&self, array: ArrayId, index: usize) -> u64 {
        self.stages[array.stage].arrays[array.slot].cells[index]
    }

    /// Control-plane write of a register, bypassing the per-pass constraints.
    ///
    /// # Panics
    ///
    /// Panics if the array id or index is invalid, or if the value does not
    /// fit in the register width.
    pub fn control_write(&mut self, array: ArrayId, index: usize, value: u64) {
        let arr = &mut self.stages[array.stage].arrays[array.slot];
        assert!(
            value & !arr.mask() == 0,
            "value {value:#x} exceeds register width {}",
            arr.width_bits
        );
        arr.cells[index] = value;
    }

    /// Length of a register array.
    ///
    /// # Panics
    ///
    /// Panics if the array id is invalid.
    pub fn array_len(&self, array: ArrayId) -> usize {
        self.stages[array.stage].arrays[array.slot].cells.len()
    }
}

/// One packet's traversal of the pipeline.
///
/// Dropping the pass models the packet leaving the pipeline.
#[derive(Debug)]
pub struct Pass<'p> {
    pipeline: &'p mut Pipeline,
    pass_id: u64,
    current_stage: usize,
}

impl Pass<'_> {
    /// Performs this pass's single read-modify-write on `array`.
    ///
    /// The closure receives the current register value (masked to the
    /// declared width) and may mutate it; the result is masked back into the
    /// register. Returns whatever the closure returns, letting callers
    /// extract the read value ([C-INTERMEDIATE]).
    ///
    /// # Errors
    ///
    /// - [`AccessError::DoubleAccess`] if this pass already accessed `array`;
    /// - [`AccessError::StageOrderViolation`] if `array` lives in a stage the
    ///   pass has already moved beyond;
    /// - [`AccessError::IndexOutOfBounds`] for a bad register index.
    pub fn access<T>(
        &mut self,
        array: ArrayId,
        index: usize,
        f: impl FnOnce(&mut u64) -> T,
    ) -> Result<T, AccessError> {
        self.try_access(array, index, f)
            .inspect_err(|&e| self.pipeline.note_violation(self.pass_id, e))
    }

    fn try_access<T>(
        &mut self,
        array: ArrayId,
        index: usize,
        f: impl FnOnce(&mut u64) -> T,
    ) -> Result<T, AccessError> {
        if array.stage < self.current_stage {
            return Err(AccessError::StageOrderViolation {
                array_stage: array.stage,
                current_stage: self.current_stage,
            });
        }
        self.current_stage = array.stage;
        let arr = &mut self.pipeline.stages[array.stage].arrays[array.slot];
        if arr.last_access_pass == self.pass_id {
            return Err(AccessError::DoubleAccess { array });
        }
        if index >= arr.cells.len() {
            return Err(AccessError::IndexOutOfBounds {
                index,
                len: arr.cells.len(),
            });
        }
        arr.last_access_pass = self.pass_id;
        let mask = arr.mask();
        let mut value = arr.cells[index] & mask;
        let out = f(&mut value);
        arr.cells[index] = value & mask;
        Ok(out)
    }

    /// Atomic `set_bit`: sets the register (width must be 1) and returns the
    /// previous value, exactly as the paper's footnote 4 defines.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pass::access`].
    pub fn set_bit(&mut self, array: ArrayId, index: usize) -> Result<bool, AccessError> {
        debug_assert_eq!(
            self.pipeline.stages[array.stage].arrays[array.slot].width_bits, 1,
            "set_bit requires a 1-bit register array"
        );
        self.access(array, index, |v| {
            let prev = *v != 0;
            *v = 1;
            prev
        })
    }

    /// Atomic `clr_bitc`: clears the register (width must be 1) and returns
    /// the *complement* of the previous value, exactly as the paper's
    /// footnote 5 defines.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pass::access`].
    pub fn clr_bitc(&mut self, array: ArrayId, index: usize) -> Result<bool, AccessError> {
        debug_assert_eq!(
            self.pipeline.stages[array.stage].arrays[array.slot].width_bits, 1,
            "clr_bitc requires a 1-bit register array"
        );
        self.access(array, index, |v| {
            let prev = *v != 0;
            *v = 0;
            !prev
        })
    }

    /// Performs this pass's single lookup on a match-action table,
    /// returning the matched entry's action data (cloned; action data is a
    /// few words).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pass::access`].
    pub fn lookup(&mut self, table: TableId, key: u64) -> Result<Option<Vec<u64>>, AccessError> {
        self.try_lookup(table, key)
            .inspect_err(|&e| self.pipeline.note_violation(self.pass_id, e))
    }

    fn try_lookup(&mut self, table: TableId, key: u64) -> Result<Option<Vec<u64>>, AccessError> {
        if table.stage < self.current_stage {
            return Err(AccessError::StageOrderViolation {
                array_stage: table.stage,
                current_stage: self.current_stage,
            });
        }
        self.current_stage = table.stage;
        let t = &mut self.pipeline.stages[table.stage].tables[table.slot];
        if t.last_access_pass == self.pass_id {
            return Err(AccessError::DoubleAccess {
                array: super::pipeline::ArrayId {
                    stage: table.stage,
                    slot: table.slot,
                },
            });
        }
        t.last_access_pass = self.pass_id;
        Ok(t.entries.get(&key).cloned())
    }

    /// The stage the pass has advanced to so far.
    pub fn current_stage(&self) -> usize {
        self.current_stage
    }
}

/// Per-stage resource usage snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceReport {
    /// One entry per stage, in pipeline order.
    pub stages: Vec<StageUsage>,
}

/// Usage of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageUsage {
    /// Register arrays declared.
    pub arrays: usize,
    /// Match-action tables declared.
    pub tables: usize,
    /// SRAM bytes allocated.
    pub sram_used: usize,
    /// SRAM budget of the stage.
    pub sram_total: usize,
}

impl core::fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "stage | arrays | tables |        SRAM")?;
        for (i, s) in self.stages.iter().enumerate() {
            if s.arrays == 0 && s.tables == 0 && s.sram_used == 0 {
                continue;
            }
            writeln!(
                f,
                "{:>5} | {:>6} | {:>6} | {:>7} / {} KB",
                i,
                s.arrays,
                s.tables,
                s.sram_used / 1024,
                s.sram_total / 1024
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::drop_non_drop)] // drop(pass) deliberately ends the pass borrow
mod tests {
    use super::*;

    fn pipe() -> Pipeline {
        Pipeline::new(PipelineSpec::tofino3())
    }

    #[test]
    fn read_modify_write_masks_width() {
        let mut p = pipe();
        let a = p.alloc_array(0, 4, 8).unwrap();
        let mut pass = p.begin_pass();
        pass.access(a, 0, |v| *v = 0x1ff).unwrap();
        drop(pass);
        assert_eq!(p.control_read(a, 0), 0xff, "write masked to 8 bits");
    }

    #[test]
    fn double_access_same_pass_rejected() {
        let mut p = pipe();
        let a = p.alloc_array(0, 4, 32).unwrap();
        let mut pass = p.begin_pass();
        pass.access(a, 0, |v| *v += 1).unwrap();
        let err = pass.access(a, 1, |v| *v += 1).unwrap_err();
        assert_eq!(err, AccessError::DoubleAccess { array: a });
    }

    #[test]
    fn next_pass_may_access_again() {
        let mut p = pipe();
        let a = p.alloc_array(0, 4, 32).unwrap();
        p.begin_pass().access(a, 0, |v| *v += 1).unwrap();
        p.begin_pass().access(a, 0, |v| *v += 1).unwrap();
        assert_eq!(p.control_read(a, 0), 2);
        assert_eq!(p.passes_executed(), 2);
    }

    #[test]
    fn stage_order_is_enforced() {
        let mut p = pipe();
        let early = p.alloc_array(0, 4, 32).unwrap();
        let late = p.alloc_array(5, 4, 32).unwrap();
        let mut pass = p.begin_pass();
        pass.access(late, 0, |_| ()).unwrap();
        assert_eq!(pass.current_stage(), 5);
        let err = pass.access(early, 0, |_| ()).unwrap_err();
        assert_eq!(
            err,
            AccessError::StageOrderViolation {
                array_stage: 0,
                current_stage: 5
            }
        );
    }

    #[test]
    fn same_stage_different_arrays_ok() {
        let mut p = pipe();
        let a = p.alloc_array(3, 4, 32).unwrap();
        let b = p.alloc_array(3, 4, 32).unwrap();
        let mut pass = p.begin_pass();
        pass.access(a, 0, |v| *v = 1).unwrap();
        pass.access(b, 0, |v| *v = 2).unwrap();
    }

    #[test]
    fn index_bounds_checked() {
        let mut p = pipe();
        let a = p.alloc_array(0, 4, 32).unwrap();
        let err = p.begin_pass().access(a, 4, |_| ()).unwrap_err();
        assert_eq!(err, AccessError::IndexOutOfBounds { index: 4, len: 4 });
    }

    #[test]
    fn array_slots_per_stage_limited() {
        let mut p = pipe();
        for _ in 0..4 {
            p.alloc_array(0, 4, 32).unwrap();
        }
        let err = p.alloc_array(0, 4, 32).unwrap_err();
        assert_eq!(err, AllocError::ArraySlotsExhausted { stage: 0, limit: 4 });
    }

    #[test]
    fn sram_budget_enforced() {
        let mut p = pipe();
        // 1280 KB stage: a 320k × 32-bit array uses exactly the budget.
        let full = 1280 * 1024 / 4;
        p.alloc_array(0, full, 32).unwrap();
        let err = p.alloc_array(0, 1, 32).unwrap_err();
        assert!(matches!(err, AllocError::SramExhausted { stage: 0, .. }));
        assert_eq!(p.sram_used(0), 1280 * 1024);
    }

    #[test]
    fn footprint_rounds_bits_up() {
        assert_eq!(Pipeline::array_footprint_bytes(3, 1), 1);
        assert_eq!(Pipeline::array_footprint_bytes(9, 1), 2);
        assert_eq!(Pipeline::array_footprint_bytes(2, 32), 8);
    }

    #[test]
    fn unknown_stage_and_width_rejected() {
        let mut p = pipe();
        assert!(matches!(
            p.alloc_array(16, 4, 32),
            Err(AllocError::UnknownStage {
                stage: 16,
                stages: 16
            })
        ));
        assert!(matches!(
            p.alloc_array(0, 4, 65),
            Err(AllocError::UnsupportedWidth { bits: 65 })
        ));
        assert!(matches!(
            p.alloc_array(0, 0, 32),
            Err(AllocError::EmptyArray)
        ));
    }

    #[test]
    fn set_bit_semantics() {
        let mut p = pipe();
        let bits = p.alloc_array(0, 8, 1).unwrap();
        assert!(
            !p.begin_pass().set_bit(bits, 3).unwrap(),
            "first set sees 0"
        );
        assert!(
            p.begin_pass().set_bit(bits, 3).unwrap(),
            "second set sees 1"
        );
        assert_eq!(p.control_read(bits, 3), 1);
    }

    #[test]
    fn clr_bitc_semantics() {
        let mut p = pipe();
        let bits = p.alloc_array(0, 8, 1).unwrap();
        // Bit starts 0: clr_bitc returns complement of previous (true) and
        // leaves the bit 0.
        assert!(p.begin_pass().clr_bitc(bits, 0).unwrap());
        assert_eq!(p.control_read(bits, 0), 0);
        // Set it, then clr_bitc returns false and clears.
        p.control_write(bits, 0, 1);
        assert!(!p.begin_pass().clr_bitc(bits, 0).unwrap());
        assert_eq!(p.control_read(bits, 0), 0);
    }

    #[test]
    fn control_plane_bypasses_pass_rules() {
        let mut p = pipe();
        let a = p.alloc_array(0, 2, 16).unwrap();
        p.control_write(a, 0, 0xffff);
        p.control_write(a, 1, 1);
        assert_eq!(p.control_read(a, 0), 0xffff);
        assert_eq!(p.array_len(a), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds register width")]
    fn control_write_checks_width() {
        let mut p = pipe();
        let a = p.alloc_array(0, 2, 8).unwrap();
        p.control_write(a, 0, 0x100);
    }

    #[test]
    fn table_lookup_once_per_pass() {
        let mut p = pipe();
        let t = p.alloc_table(0, 16, 2).unwrap();
        p.table_insert(t, 7, vec![10, 20]).unwrap();
        let mut pass = p.begin_pass();
        assert_eq!(pass.lookup(t, 7).unwrap(), Some(vec![10, 20]));
        assert!(matches!(
            pass.lookup(t, 8),
            Err(AccessError::DoubleAccess { .. })
        ));
        drop(pass);
        // Next pass: miss on an uninstalled key.
        assert_eq!(p.begin_pass().lookup(t, 8).unwrap(), None);
    }

    #[test]
    fn table_respects_stage_order() {
        let mut p = pipe();
        let early = p.alloc_table(0, 4, 1).unwrap();
        let late = p.alloc_array(3, 4, 32).unwrap();
        let mut pass = p.begin_pass();
        pass.access(late, 0, |_| ()).unwrap();
        assert!(matches!(
            pass.lookup(early, 1),
            Err(AccessError::StageOrderViolation { .. })
        ));
    }

    #[test]
    fn table_entries_update_and_remove() {
        let mut p = pipe();
        let t = p.alloc_table(0, 2, 1).unwrap();
        p.table_insert(t, 1, vec![5]).unwrap();
        p.table_insert(t, 1, vec![6]).unwrap(); // update in place
        assert_eq!(p.begin_pass().lookup(t, 1).unwrap(), Some(vec![6]));
        assert!(p.table_remove(t, 1));
        assert_eq!(p.begin_pass().lookup(t, 1).unwrap(), None);
    }

    #[test]
    fn table_sram_charged() {
        let mut p = pipe();
        let before = p.sram_used(0);
        p.alloc_table(0, 256, 3).unwrap();
        assert_eq!(p.sram_used(0) - before, 256 * (8 + 24));
    }

    #[test]
    fn resource_report_reflects_allocations() {
        let mut p = pipe();
        p.alloc_array(0, 128, 64).unwrap();
        p.alloc_table(0, 32, 2).unwrap();
        p.alloc_array(2, 16, 1).unwrap();
        let report = p.resource_report();
        assert_eq!(report.stages[0].arrays, 1);
        assert_eq!(report.stages[0].tables, 1);
        assert_eq!(report.stages[2].arrays, 1);
        assert_eq!(report.stages[0].sram_used, 128 * 8 + 32 * (8 + 16));
        let text = report.to_string();
        assert!(text.contains("stage"));
        assert!(!text.contains("\n15 |"), "idle stages omitted");
    }

    #[test]
    fn violations_are_journaled() {
        let mut p = pipe();
        let a = p.alloc_array(0, 4, 32).unwrap();
        assert_eq!(p.violation_count(), 0);
        let mut pass = p.begin_pass();
        pass.access(a, 0, |v| *v += 1).unwrap();
        let _ = pass.access(a, 0, |v| *v += 1); // double access
        let _ = pass.access(a, 99, |_| ()); // double access (recorded first)
        drop(pass);
        let _ = p.begin_pass().access(a, 99, |_| ()); // out of bounds
        assert_eq!(p.violation_count(), 3);
        assert_eq!(p.violations().len(), 3);
        assert_eq!(
            p.violations()[0],
            Violation {
                pass: 1,
                error: AccessError::DoubleAccess { array: a }
            }
        );
        assert_eq!(
            p.violations()[2].error,
            AccessError::IndexOutOfBounds { index: 99, len: 4 }
        );
    }

    #[test]
    fn violation_journal_is_bounded() {
        let mut p = pipe();
        let a = p.alloc_array(0, 4, 32).unwrap();
        for _ in 0..(MAX_RECORDED_VIOLATIONS + 10) {
            let _ = p.begin_pass().access(a, 1000, |_| ());
        }
        assert_eq!(p.violation_count() as usize, MAX_RECORDED_VIOLATIONS + 10);
        assert_eq!(p.violations().len(), MAX_RECORDED_VIOLATIONS);
    }

    #[test]
    fn sixty_four_bit_registers_work() {
        let mut p = pipe();
        let a = p.alloc_array(0, 1, 64).unwrap();
        p.begin_pass().access(a, 0, |v| *v = u64::MAX).unwrap();
        assert_eq!(p.control_read(a, 0), u64::MAX);
    }
}
