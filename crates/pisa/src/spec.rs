//! Hardware resource envelopes for PISA pipelines.

/// Static resource limits of one packet-processing pipeline.
///
/// The defaults mirror the figures the paper quotes for Intel Tofino:
/// 16 match-action stages per pipeline, 1280 KB SRAM per stage, and at most
/// 4 register (aggregator) arrays declared per stage (§3.2.1).
///
/// # Examples
///
/// ```
/// use ask_pisa::spec::PipelineSpec;
///
/// let spec = PipelineSpec::tofino3();
/// assert_eq!(spec.stages(), 16);
/// assert_eq!(spec.sram_per_stage_bytes(), 1280 * 1024);
/// assert_eq!(spec.max_arrays_per_stage(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSpec {
    stages: usize,
    sram_per_stage_bytes: usize,
    max_arrays_per_stage: usize,
}

impl PipelineSpec {
    /// A single Tofino3-like pipeline (16 stages × 1280 KB × 4 arrays).
    pub fn tofino3() -> Self {
        PipelineSpec {
            stages: 16,
            sram_per_stage_bytes: 1280 * 1024,
            max_arrays_per_stage: 4,
        }
    }

    /// A chain of `n` Tofino3-like pipelines.
    ///
    /// The paper notes that a switch's pipelines "can be used independently
    /// or chained together to form a longer pipeline" (§4), which is how one
    /// packet can carry up to 128 tuples. Chaining multiplies the stage count
    /// while keeping per-stage resources unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn tofino3_chained(n: usize) -> Self {
        assert!(n > 0, "need at least one pipeline");
        let one = Self::tofino3();
        PipelineSpec {
            stages: one.stages * n,
            ..one
        }
    }

    /// A fully custom envelope.
    ///
    /// # Panics
    ///
    /// Panics if any limit is zero.
    pub fn custom(stages: usize, sram_per_stage_bytes: usize, max_arrays_per_stage: usize) -> Self {
        assert!(stages > 0, "need at least one stage");
        assert!(sram_per_stage_bytes > 0, "need some SRAM");
        assert!(max_arrays_per_stage > 0, "need at least one array slot");
        PipelineSpec {
            stages,
            sram_per_stage_bytes,
            max_arrays_per_stage,
        }
    }

    /// Number of match-action stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// SRAM budget per stage, in bytes.
    pub fn sram_per_stage_bytes(&self) -> usize {
        self.sram_per_stage_bytes
    }

    /// Maximum number of register arrays one stage may declare.
    pub fn max_arrays_per_stage(&self) -> usize {
        self.max_arrays_per_stage
    }

    /// Total SRAM across all stages, in bytes.
    pub fn total_sram_bytes(&self) -> usize {
        self.stages * self.sram_per_stage_bytes
    }
}

impl Default for PipelineSpec {
    fn default() -> Self {
        PipelineSpec::tofino3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino3_matches_paper_envelope() {
        let s = PipelineSpec::tofino3();
        // "1280KB/stage × 16 stage/pipeline" (§3.2.1); ~20 MB/pipeline total.
        assert_eq!(s.total_sram_bytes(), 16 * 1280 * 1024);
    }

    #[test]
    fn chaining_multiplies_stages_only() {
        let s = PipelineSpec::tofino3_chained(4);
        assert_eq!(s.stages(), 64);
        assert_eq!(s.sram_per_stage_bytes(), 1280 * 1024);
        assert_eq!(s.max_arrays_per_stage(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one pipeline")]
    fn zero_chain_rejected() {
        let _ = PipelineSpec::tofino3_chained(0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_custom_rejected() {
        let _ = PipelineSpec::custom(0, 1, 1);
    }

    #[test]
    fn default_is_tofino3() {
        assert_eq!(PipelineSpec::default(), PipelineSpec::tofino3());
    }
}
