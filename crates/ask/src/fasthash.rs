//! A small deterministic hash for the daemon's and switch's hot-path maps.
//!
//! `std`'s default `RandomState` seeds SipHash per process, which is both
//! slower than needed for the tiny keys used here (u32 ids, short key
//! bytes) and a reminder that nothing observable may depend on iteration
//! order. [`FastMap`] swaps in FNV-1a: several times faster on keys this
//! short and fully deterministic, so a map-order dependency would show up
//! as a reproducible (and catchable) golden-output diff instead of a
//! heisenbug.
//!
//! FNV-1a is *not* DoS-resistant; these maps are keyed by simulator-internal
//! ids and validated keys, never by attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, specialized with fast paths for the fixed-width id writes the
/// `Hash` impls of `TaskId`/`ChannelId`/`u32` perform.
#[derive(Debug, Default, Clone)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        // Fold the high bits down: HashMap keys buckets off the low bits,
        // where a single multiply round mixes least.
        let h = self.0.wrapping_add(FNV_OFFSET);
        h ^ (h >> 32)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0.wrapping_add(FNV_OFFSET);
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h.wrapping_sub(FNV_OFFSET);
    }

    fn write_u32(&mut self, i: u32) {
        let mut h = self.0.wrapping_add(FNV_OFFSET);
        h ^= i as u64;
        h = h.wrapping_mul(FNV_PRIME);
        self.0 = h.wrapping_sub(FNV_OFFSET);
    }

    fn write_u64(&mut self, i: u64) {
        let mut h = self.0.wrapping_add(FNV_OFFSET);
        h ^= i;
        h = h.wrapping_mul(FNV_PRIME);
        self.0 = h.wrapping_sub(FNV_OFFSET);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// Deterministic drop-in for `HashMap` on hot paths.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Deterministic drop-in for `HashSet` on hot paths.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FnvHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FnvHasher::default();
        let mut b = FnvHasher::default();
        a.write(b"hello");
        b.write(b"hello");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values_and_spreads_low_bits() {
        let hash = |i: u32| {
            let mut h = FnvHasher::default();
            h.write_u32(i);
            h.finish()
        };
        let mut low = std::collections::HashSet::new();
        for i in 0..1024u32 {
            low.insert(hash(i) & 0x3ff);
        }
        // Sequential ids must not collapse into few buckets.
        assert!(low.len() > 500, "only {} distinct low-10-bit values", low.len());
    }

    #[test]
    fn map_roundtrips() {
        let mut m: FastMap<u32, u32> = FastMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        for i in 0..100 {
            assert_eq!(m[&i], i * 2);
        }
    }
}
