//! Service-wide configuration.

use ask_simnet::time::SimDuration;
use ask_wire::packet::PacketLayout;

/// Configuration shared by the ASK switch program and host daemons.
///
/// Defaults mirror the paper's prototype (§4, §3.3): the
/// [`PacketLayout::paper_default`] of 32 aggregator arrays, a sliding window
/// of `W = 256` packets, a 100 µs retransmission timeout, and 4 data
/// channels per host.
///
/// # Examples
///
/// ```
/// use ask::config::AskConfig;
///
/// let cfg = AskConfig::default();
/// assert_eq!(cfg.window, 256);
/// assert_eq!(cfg.data_channels, 4);
/// ```
#[derive(Debug, Clone)]
pub struct AskConfig {
    /// Payload slot ↔ aggregator-array mapping.
    pub layout: PacketLayout,
    /// Aggregators per AA *per shadow copy*; each AA physically holds twice
    /// this many (§3.4 splits every AA into two copies).
    pub aggregators_per_aa: usize,
    /// Aggregators granted to one task per AA per copy. Defaults to the
    /// whole per-copy space, i.e. single-tenant; the controller hands out
    /// disjoint `[base, base+len)` slices when several tasks coexist.
    pub region_aggregators: usize,
    /// Sender sliding-window size `W`, in packets.
    pub window: usize,
    /// Retransmission timeout (the paper uses a fine-grained 100 µs instead
    /// of the 200 ms Linux default, §3.3).
    pub retransmit_timeout: SimDuration,
    /// Data channels per host daemon.
    pub data_channels: usize,
    /// Data packets forwarded to the receiver before it triggers a
    /// shadow-copy swap (§3.4). `0` disables hot-key prioritization.
    pub swap_threshold: u64,
    /// Retry interval for (reliable) fetch requests.
    pub fetch_timeout: SimDuration,
    /// Maximum long-key tuples batched into one bypass packet.
    pub long_kv_batch: usize,
    /// Host CPU cost of pushing or receiving one packet on a data channel
    /// (DPDK-style packet IO).
    pub cpu_per_packet: SimDuration,
    /// Host CPU cost of aggregating one residual tuple into the receiver's
    /// in-memory table.
    pub cpu_per_tuple: SimDuration,
    /// Maximum concurrent tasks the switch data plane can track (sizes the
    /// copy-indicator register array).
    pub max_tasks: usize,
    /// Maximum data channels the switch keeps reliability state for
    /// (§3.3 bounds this at 64 servers × 4 channels in 264 KB SRAM).
    pub max_channels: usize,
    /// Protocol-trace ring-buffer capacity per daemon (0 disables tracing;
    /// see [`crate::host::trace`]).
    pub trace_capacity: usize,
    /// Makes the controller deny every region request, so all tasks run
    /// host-only. Turns a deployment into the "no-INA" baseline while
    /// keeping the identical network stack — the apples-to-apples
    /// comparison the evaluation needs.
    pub force_host_only: bool,
    /// Enables the loss-based AIMD congestion window on each data channel
    /// (the paper's §7 discussion: ASK is compatible with loss-based INA
    /// congestion control, and "the congestion window should not exceed the
    /// maximum window defined in the reliability mechanism"). Off by
    /// default, matching the prototype.
    pub congestion_control: bool,
    /// Keeps an exact `(channel, seq)` absorption journal on the switch so a
    /// conformance harness can prove "no sequence number is aggregated
    /// twice". Pure oracle bookkeeping — no hardware analogue, no effect on
    /// the data path — and off by default.
    pub absorption_audit: bool,
    /// Per-attempt growth factor of the retransmission delay
    /// ([`crate::host::backoff::BackoffPolicy`]): the k-th retransmission of
    /// a packet waits `retransmit_timeout * backoff_factor^k`, capped at
    /// [`AskConfig::backoff_cap`]. `1` (the default) keeps the paper's flat
    /// fine-grained timer.
    pub backoff_factor: u32,
    /// Upper bound on the backed-off retransmission delay.
    pub backoff_cap: SimDuration,
    /// Deterministic jitter applied to every backoff delay, in permille of
    /// the nominal delay (`0` disables; `250` means ±25%). The jitter is a
    /// pure function of the policy seed, the packet key, and the attempt
    /// number, so schedules stay reproducible.
    pub backoff_jitter_permille: u32,
    /// Forces the switch onto the legacy materializing (scalar) datapath:
    /// every frame is decoded into owned `KvTuple` slots before
    /// aggregation, instead of the zero-materialization
    /// [`ask_wire::view::FrameView`] path. The two paths are byte-identical
    /// on the wire; this escape hatch exists for differential testing and
    /// can also be forced at runtime with `ASK_SWITCH_SCALAR=1`.
    pub switch_scalar: bool,
    /// Forces the host daemons onto the legacy materializing (scalar)
    /// receive path: every inbound frame is decoded into owned packets
    /// through the pool and residual tuples merge via materialized keys,
    /// instead of the zero-materialization
    /// [`ask_wire::view::FrameView`] ingest with borrowed slot reads. The
    /// two paths are byte-identical on the wire; this escape hatch exists
    /// for differential testing and can also be forced at runtime with
    /// `ASK_HOST_SCALAR=1`.
    pub host_scalar: bool,
    /// After this many retransmissions of a single packet the sender
    /// declares the aggregation path suspect (dead or restarting switch) and
    /// enters degraded pass-through mode: data packets are stamped
    /// no-aggregate and relayed end-to-end unaggregated. `None` (the
    /// default) never escalates.
    pub escalate_after: Option<u32>,
}

impl AskConfig {
    /// The paper's prototype configuration.
    pub fn paper_default() -> Self {
        AskConfig {
            layout: PacketLayout::paper_default(),
            aggregators_per_aa: 16 * 1024,
            region_aggregators: 16 * 1024,
            window: 256,
            retransmit_timeout: SimDuration::from_micros(100),
            data_channels: 4,
            swap_threshold: 4096,
            fetch_timeout: SimDuration::from_micros(200),
            long_kv_batch: 64,
            cpu_per_packet: SimDuration::from_nanos(110),
            cpu_per_tuple: SimDuration::from_nanos(25),
            max_tasks: 256,
            max_channels: 256,
            trace_capacity: 0,
            force_host_only: false,
            congestion_control: false,
            absorption_audit: false,
            backoff_factor: 1,
            backoff_cap: SimDuration::from_micros(100).saturating_mul(64),
            backoff_jitter_permille: 0,
            switch_scalar: false,
            host_scalar: false,
            escalate_after: None,
        }
    }

    /// A small configuration for unit tests: tiny memory, short window.
    pub fn tiny() -> Self {
        AskConfig {
            layout: PacketLayout::custom(4, 2, 2),
            aggregators_per_aa: 64,
            region_aggregators: 32,
            window: 8,
            data_channels: 1,
            swap_threshold: 0,
            max_tasks: 8,
            max_channels: 16,
            ..AskConfig::paper_default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the region exceeds the per-copy aggregator space, the
    /// window is zero or not a power of two, or the layout needs more than
    /// 32 slots' worth of `PktState` bitmap.
    pub fn validate(&self) {
        assert!(self.window > 0, "window must be positive");
        assert!(
            self.region_aggregators > 0 && self.region_aggregators <= self.aggregators_per_aa,
            "region must fit the per-copy aggregator space"
        );
        assert!(
            self.layout.slot_count() <= 64,
            "PktState registers hold at most 64 slot bits"
        );
        assert!(self.max_tasks > 0 && self.max_channels > 0, "need capacity");
        assert!(self.data_channels > 0, "need at least one data channel");
        assert!(self.long_kv_batch > 0, "long-kv batch must be positive");
        assert!(self.backoff_factor >= 1, "backoff factor must be at least 1");
        assert!(
            self.backoff_cap >= self.retransmit_timeout,
            "backoff cap must not undercut the base timeout"
        );
        assert!(
            self.backoff_jitter_permille <= 1000,
            "jitter is a permille fraction of the delay"
        );
    }
}

impl Default for AskConfig {
    fn default() -> Self {
        AskConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        AskConfig::paper_default().validate();
        AskConfig::tiny().validate();
    }

    #[test]
    fn paper_default_matches_prototype() {
        let c = AskConfig::paper_default();
        assert_eq!(c.layout.aggregator_arrays(), 32);
        assert_eq!(c.retransmit_timeout, SimDuration::from_micros(100));
    }

    #[test]
    #[should_panic(expected = "region must fit")]
    fn oversized_region_rejected() {
        let mut c = AskConfig::tiny();
        c.region_aggregators = c.aggregators_per_aa + 1;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let mut c = AskConfig::tiny();
        c.window = 0;
        c.validate();
    }
}
