//! Counters collected by the switch and the host daemons.
//!
//! Every number the paper's evaluation reports — tuples aggregated on the
//! switch vs. the host (Table 1), packets ACKed by the switch vs. forwarded
//! (Table 1), retransmissions, fetch volume — is derived from these
//! counters, so the benchmark harness never has to instrument internals.

/// Number of log₂ buckets in a burst-length histogram: bucket `i` counts
/// bursts of `2^i ..= 2^(i+1) - 1` frames (the last bucket is open-ended).
pub const BURST_BUCKETS: usize = 8;

/// The histogram bucket a burst of `n` frames falls into.
pub fn burst_bucket(n: u64) -> usize {
    if n == 0 {
        return 0;
    }
    (63 - n.leading_zeros() as usize).min(BURST_BUCKETS - 1)
}

/// Counters kept by the switch data plane, per task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchTaskStats {
    /// Data packets that passed the dedup check and entered aggregation.
    pub data_packets: u64,
    /// Data packets fully absorbed (every tuple aggregated → switch ACKed).
    pub packets_fully_aggregated: u64,
    /// Data packets forwarded to the receiver with residual tuples.
    pub packets_forwarded: u64,
    /// Long-key bypass packets forwarded.
    pub longkv_packets_forwarded: u64,
    /// Individual tuples aggregated into switch memory.
    pub tuples_aggregated: u64,
    /// Individual tuples that failed (collision) and were forwarded.
    pub tuples_forwarded: u64,
    /// Long-key tuples forwarded (never eligible for switch aggregation).
    pub tuples_long_forwarded: u64,
    /// Retransmitted packets recognized by the dedup logic.
    pub duplicates_detected: u64,
    /// Stale packets (behind the receive window) dropped.
    pub stale_dropped: u64,
    /// Shadow-copy swaps executed.
    pub swaps: u64,
    /// Key-value pairs harvested by fetches.
    pub tuples_fetched: u64,
    /// Sequence numbers absorbed more than once — exactly-once violations
    /// caught by the absorption audit
    /// ([`crate::config::AskConfig::absorption_audit`]). Must stay 0.
    pub duplicate_absorptions: u64,
    /// Histogram of same-channel ingest burst lengths seen by
    /// `process_batch` (log₂ buckets, see [`burst_bucket`]). Purely
    /// observational: batch and sequential ingest differ here while every
    /// protocol counter above stays identical.
    pub burst_len: [u64; BURST_BUCKETS],
}

impl SwitchTaskStats {
    /// Fraction of eligible (short+medium) tuples aggregated on the switch —
    /// the first row of Table 1.
    pub fn tuple_aggregation_ratio(&self) -> f64 {
        let total = self.tuples_aggregated + self.tuples_forwarded;
        if total == 0 {
            0.0
        } else {
            self.tuples_aggregated as f64 / total as f64
        }
    }

    /// Fraction of data packets fully absorbed (switch-ACKed) — the second
    /// row of Table 1.
    pub fn packet_absorption_ratio(&self) -> f64 {
        let total = self.packets_fully_aggregated + self.packets_forwarded;
        if total == 0 {
            0.0
        } else {
            self.packets_fully_aggregated as f64 / total as f64
        }
    }

    /// Merges another task's counters into this one (for fleet-wide totals).
    pub fn merge(&mut self, other: &SwitchTaskStats) {
        self.data_packets += other.data_packets;
        self.packets_fully_aggregated += other.packets_fully_aggregated;
        self.packets_forwarded += other.packets_forwarded;
        self.longkv_packets_forwarded += other.longkv_packets_forwarded;
        self.tuples_aggregated += other.tuples_aggregated;
        self.tuples_forwarded += other.tuples_forwarded;
        self.tuples_long_forwarded += other.tuples_long_forwarded;
        self.duplicates_detected += other.duplicates_detected;
        self.stale_dropped += other.stale_dropped;
        self.swaps += other.swaps;
        self.tuples_fetched += other.tuples_fetched;
        self.duplicate_absorptions += other.duplicate_absorptions;
        for (a, b) in self.burst_len.iter_mut().zip(other.burst_len.iter()) {
            *a += b;
        }
    }
}

/// Counters kept by a host daemon, summed over its data channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Data/long-kv/fin packets sent (first transmissions).
    pub packets_sent: u64,
    /// Retransmissions triggered by the 100 µs timeout.
    pub retransmissions: u64,
    /// ACKs received.
    pub acks_received: u64,
    /// ACKs carrying an ECN congestion echo.
    pub ecn_echoes: u64,
    /// Data packets received and processed as the aggregation receiver.
    pub packets_received: u64,
    /// Duplicate packets the receiver window rejected.
    pub duplicates_dropped: u64,
    /// Residual tuples aggregated on the host (switch conflicts + long keys
    /// + co-located sender data).
    pub tuples_host_aggregated: u64,
    /// Tuples received through switch fetch replies.
    pub tuples_fetched: u64,
    /// Wire bytes sent (nominal accounting, §5.3 model).
    pub bytes_sent: u64,
    /// Nominal payload (goodput) bytes sent.
    pub goodput_bytes_sent: u64,
    /// Packet-pool takes served from the free list (no allocation).
    pub pool_hits: u64,
    /// Packet-pool takes that had to allocate.
    pub pool_misses: u64,
    /// Frames dropped because they carried a pre-crash switch epoch
    /// (late verdicts, ACKs, or fetch replies from before a restart).
    pub stale_epoch_drops: u64,
    /// In-flight entries escalated to degraded no-aggregate pass-through
    /// after exhausting [`crate::config::AskConfig::escalate_after`]
    /// retransmissions.
    pub degraded_entries: u64,
    /// Inbound payload frames the receive path consumed straight from wire
    /// bytes — first-delivery data packets merged via borrowed slot views
    /// and fetch replies merged via borrowed entry views — with zero pool
    /// traffic (the host-side mirror of the switch's pure-absorb counter).
    /// Always zero on the scalar receive path.
    pub host_pure_view: u64,
    /// Inbound frames the view receive path had to materialize through the
    /// pool after parsing (long-kv bypass bodies, layout-mismatched data).
    /// Always zero on the scalar receive path.
    pub host_view_fallbacks: u64,
    /// Histogram of delivery burst lengths handed to the daemon by the
    /// simulator's burst drain (log₂ buckets, see [`burst_bucket`]).
    pub burst_len: [u64; BURST_BUCKETS],
}

impl HostStats {
    /// Merges another daemon's counters into this one.
    pub fn merge(&mut self, other: &HostStats) {
        self.packets_sent += other.packets_sent;
        self.retransmissions += other.retransmissions;
        self.acks_received += other.acks_received;
        self.ecn_echoes += other.ecn_echoes;
        self.packets_received += other.packets_received;
        self.duplicates_dropped += other.duplicates_dropped;
        self.tuples_host_aggregated += other.tuples_host_aggregated;
        self.tuples_fetched += other.tuples_fetched;
        self.bytes_sent += other.bytes_sent;
        self.goodput_bytes_sent += other.goodput_bytes_sent;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.stale_epoch_drops += other.stale_epoch_drops;
        self.degraded_entries += other.degraded_entries;
        self.host_pure_view += other.host_pure_view;
        self.host_view_fallbacks += other.host_view_fallbacks;
        for (a, b) in self.burst_len.iter_mut().zip(other.burst_len.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_buckets_are_log2() {
        assert_eq!(burst_bucket(0), 0);
        assert_eq!(burst_bucket(1), 0);
        assert_eq!(burst_bucket(2), 1);
        assert_eq!(burst_bucket(3), 1);
        assert_eq!(burst_bucket(4), 2);
        assert_eq!(burst_bucket(127), 6);
        assert_eq!(burst_bucket(128), 7);
        assert_eq!(burst_bucket(1 << 30), BURST_BUCKETS - 1);
    }

    #[test]
    fn merge_sums_histograms_and_pool_counters() {
        let mut a = SwitchTaskStats::default();
        a.burst_len[0] = 1;
        let mut b = SwitchTaskStats::default();
        b.burst_len[0] = 2;
        b.burst_len[3] = 5;
        a.merge(&b);
        assert_eq!(a.burst_len[0], 3);
        assert_eq!(a.burst_len[3], 5);

        let mut h = HostStats {
            pool_hits: 10,
            pool_misses: 1,
            host_pure_view: 3,
            ..Default::default()
        };
        h.burst_len[1] = 4;
        let mut h2 = HostStats {
            pool_hits: 5,
            host_pure_view: 2,
            host_view_fallbacks: 7,
            ..Default::default()
        };
        h2.burst_len[1] = 6;
        h.merge(&h2);
        assert_eq!(h.pool_hits, 15);
        assert_eq!(h.pool_misses, 1);
        assert_eq!(h.host_pure_view, 5);
        assert_eq!(h.host_view_fallbacks, 7);
        assert_eq!(h.burst_len[1], 10);
    }

    #[test]
    fn ratios_handle_zero_totals() {
        let s = SwitchTaskStats::default();
        assert_eq!(s.tuple_aggregation_ratio(), 0.0);
        assert_eq!(s.packet_absorption_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = SwitchTaskStats {
            tuples_aggregated: 90,
            tuples_forwarded: 10,
            packets_fully_aggregated: 3,
            packets_forwarded: 1,
            ..Default::default()
        };
        assert!((s.tuple_aggregation_ratio() - 0.9).abs() < 1e-12);
        assert!((s.packet_absorption_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = SwitchTaskStats {
            data_packets: 1,
            swaps: 2,
            ..Default::default()
        };
        let b = SwitchTaskStats {
            data_packets: 3,
            swaps: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.data_packets, 4);
        assert_eq!(a.swaps, 6);

        let mut h = HostStats {
            packets_sent: 5,
            ..Default::default()
        };
        h.merge(&HostStats {
            packets_sent: 7,
            bytes_sent: 100,
            ..Default::default()
        });
        assert_eq!(h.packets_sent, 12);
        assert_eq!(h.bytes_sent, 100);
    }
}
