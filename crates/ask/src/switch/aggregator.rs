//! The switch data-plane program: vectorized multi-key aggregation over
//! two-dimensional aggregator arrays, per-flow reliability state, and the
//! shadow-copy mechanism — all expressed as register accesses on an
//! [`ask_pisa::pipeline::Pipeline`] so the PISA constraints are enforced.
//!
//! Pipeline memory map (stage → register arrays):
//!
//! ```text
//! stage 0      task_table      (match: task → region, indicator index)
//!              copy_indicator  (1 bit  × max_tasks)
//!              max_seq         (64 bit × max_channels)
//!              seen            (1 bit  × max_channels × W)   compact §3.3
//! stage 1..    AA_0 .. AA_{N-1}, 4 per stage, 64-bit aggregators
//!              (kPart = high 32 bits, vPart = low 32 bits; each AA holds
//!              2 × aggregators_per_aa registers: two shadow copies, §3.4)
//! last stage   PktState        (64 bit × max_channels × W)   §3.3
//!              (the paper stores 32-bit bitmaps for its 32 AAs; we size
//!              the register to the architecture's maximum width so chained
//!              layouts up to 64 slots keep per-packet state)
//! ```
//!
//! One [`process_data`](AggregatorEngine::process_data) call is one packet
//! pass: dedup gate first, then one access per aggregator array in stage
//! order, then the `PktState` read-or-write.

use crate::config::AskConfig;
use crate::stats::{burst_bucket, SwitchTaskStats};
use ask_pisa::error::AccessError;
use ask_pisa::pipeline::{ArrayId, Pass, Pipeline, Violation};
use ask_pisa::spec::PipelineSpec;
use ask_pisa::table::TableId;
use ask_wire::key::Key;
use ask_wire::packet::{
    AaRegion, AggregateOp, ChannelId, DataPacket, FetchScope, KvTuple, SeqNo, TaskId,
};
use ask_wire::pool::PacketPool;
use ask_wire::view::DataPacketView;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Mixes a 64-bit key hash into an aggregator index (splitmix64
/// finalizer), decorrelated from the subspace-partition hash (which uses
/// the raw `hash64`). Shared by the materializing path and the borrowed
/// view lanes, which hash straight off the wire bytes.
fn index_mix(h: u64) -> u64 {
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// [`index_mix`] over a materialized key.
fn index_hash(key: &Key) -> u64 {
    index_mix(key.hash64())
}

/// Outcome of the dedup gate for one sequenced packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// Behind the receive window; drop silently.
    Stale,
    /// First appearance; process normally.
    First,
    /// Retransmission; consult `PktState`.
    Duplicate,
}

/// Verdict for one data packet.
///
/// The `Forward` packet is the input packet itself, rewritten in place
/// (aggregated slots blanked) — [`AggregatorEngine::process_data`] takes
/// the packet by value precisely so no copy is ever made on the data path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataVerdict {
    /// Stale packet, dropped without any response.
    Stale,
    /// Every tuple aggregated: drop the packet and ACK the sender.
    FullyAggregated,
    /// Residual tuples remain: forward this rewritten packet downstream.
    Forward(DataPacket),
}

/// Verdict for one data packet processed through the borrowed-view path.
///
/// Mirrors [`DataVerdict`] case for case, but a partial absorb reports the
/// surviving slot bitmap instead of a rewritten packet — the caller
/// re-frames the original wire bytes with
/// [`ask_wire::view::DataPacketView::residual_frame`], so nothing is ever
/// materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewVerdict {
    /// Stale packet, dropped without any response.
    Stale,
    /// Every tuple aggregated: drop the frame and ACK the sender.
    FullyAggregated,
    /// Residual tuples remain: re-frame and forward the surviving slots.
    Forward {
        /// Bitmap of the slots that survived aggregation.
        residual: u128,
    },
}

/// Structure-of-arrays scratch for a burst of data-packet views: one lane
/// entry per occupied slot across the whole burst, plus a packed per-slot
/// `kPart` segment lane. Filling the lanes is the columnar pre-hash phase
/// (every key in the burst is FNV+splitmix-hashed in one tight loop over
/// the wire bytes); [`AggregatorEngine::process_batch_views`] then replays
/// each packet's lane range against the register arrays.
#[derive(Debug, Default)]
struct ViewLanes {
    /// Logical slot index of each occupied slot, burst-concatenated.
    slot_ix: Vec<u32>,
    /// Slot value lane.
    value: Vec<u32>,
    /// Pre-mixed aggregator index hash lane.
    mix: Vec<u64>,
    /// Packed `kPart` segments: 1 per short slot, `m` per medium slot.
    seg: Vec<u32>,
    /// Per-packet `(slot_start, slot_end, seg_start)` ranges into the lanes.
    pkt: Vec<(u32, u32, u32)>,
}

impl ViewLanes {
    /// Columnar pre-hash: walks every occupied slot of every view in order,
    /// splitting slot index / value / index hash / key segments into their
    /// own lanes.
    fn fill(&mut self, views: &[DataPacketView]) {
        self.slot_ix.clear();
        self.value.clear();
        self.mix.clear();
        self.seg.clear();
        self.pkt.clear();
        for v in views {
            let slot_start = self.slot_ix.len() as u32;
            let seg_start = self.seg.len() as u32;
            let short = v.short_slots();
            let m = v.medium_segments();
            for s in v.slots() {
                self.slot_ix.push(s.index() as u32);
                self.value.push(s.value());
                self.mix.push(index_mix(s.hash64()));
                if s.index() < short {
                    self.seg.push(s.segment(0));
                } else {
                    for j in 0..m {
                        self.seg.push(s.segment(j));
                    }
                }
            }
            self.pkt
                .push((slot_start, self.slot_ix.len() as u32, seg_start));
        }
    }
}

/// Where a claimed aggregator lives, for fast harvest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Claim {
    /// `aa` is the short slot's AA index; `idx` the physical register index.
    Short { aa: usize, idx: usize },
    /// `group` is the medium group; `idx` the physical register index shared
    /// by all `m` coalesced AAs.
    Medium { group: usize, idx: usize },
}

#[derive(Debug)]
struct TaskEntry {
    region: AaRegion,
    indicator_idx: usize,
    receiver: u32,
    op: AggregateOp,
    /// Claims per shadow copy.
    claims: [Vec<Claim>; 2],
    /// Last served fetch sequence and its cached reply. The harvest is
    /// behind an `Arc` so cache replays and the outgoing reply packet
    /// share one buffer instead of cloning the tuple vector.
    fetch_cache: Option<(u32, Arc<Vec<KvTuple>>)>,
    stats: SwitchTaskStats,
}

/// "No slot" sentinel in a [`DispatchEntry`]: the channel is pure-forwarded
/// or the task is not registered.
const SLOT_NONE: u32 = u32::MAX;

/// "Region size is not a power of two" sentinel: fall back to modulo mixing.
const MASK_MODULO: u64 = u64::MAX;

/// One line of the direct-mapped per-channel dispatch cache: everything
/// `process_data` needs that would otherwise cost a `HashMap` probe — the
/// channel's reliability slot, the task's match-table action data (region,
/// indicator, operator), and the task's dense slot for stats updates. The
/// action data is latched here at fill time, which is sound because it is
/// written only by the control plane (install/release), and both paths bump
/// `dispatch_gen` to invalidate every line. The copy indicator is *not*
/// cached: it changes per-pass on shadow swaps and stays a register access.
#[derive(Debug, Clone, Copy)]
struct DispatchEntry {
    /// Stamp of the generation this line was filled in; any control-plane
    /// change bumps the engine's generation and thereby invalidates it.
    gen: u64,
    channel: ChannelId,
    task: TaskId,
    /// Channel's dedup-state slot, or [`SLOT_NONE`] for pure forwarding.
    ch_slot: u32,
    /// Task's slot in the dense task store, or [`SLOT_NONE`] if unknown.
    task_slot: u32,
    region: AaRegion,
    indicator_idx: u32,
    op: AggregateOp,
    /// `aggregators - 1` when the region size is a power of two (index
    /// mixing becomes an AND), else [`MASK_MODULO`].
    index_mask: u64,
}

impl DispatchEntry {
    fn invalid() -> Self {
        DispatchEntry {
            gen: 0,
            channel: ChannelId(u32::MAX),
            task: TaskId(u32::MAX),
            ch_slot: SLOT_NONE,
            task_slot: SLOT_NONE,
            region: AaRegion {
                base: 0,
                aggregators: 1,
            },
            indicator_idx: 0,
            op: AggregateOp::Sum,
            index_mask: MASK_MODULO,
        }
    }
}

/// The switch aggregation engine. Pure computation — no networking — so
/// benchmarks (e.g. Figure 9's prioritization sweep) can drive it directly.
#[derive(Debug)]
pub struct AggregatorEngine {
    config: AskConfig,
    pipeline: Pipeline,
    aas: Vec<ArrayId>,
    /// Match-action table mapping task id → (region base, region length,
    /// copy-indicator index); the control plane installs an entry per
    /// registered task ("the switch uses the task ID to identify the
    /// aggregator memory region", §3.1).
    task_table: TableId,
    copy_indicator: ArrayId,
    max_seq: ArrayId,
    seen: ArrayId,
    pkt_state: ArrayId,
    /// Dense task store indexed by indicator index — the indicator pool is
    /// already a recycled `0..max_tasks` space, so it doubles as the slot
    /// allocator. The data path reaches entries by slot; only control-plane
    /// calls go through `task_index`.
    task_slots: Vec<Option<TaskEntry>>,
    /// Task id → slot in `task_slots`.
    task_index: HashMap<TaskId, usize>,
    /// Counters of released tasks, kept for post-mortem inspection.
    finished_stats: HashMap<TaskId, SwitchTaskStats>,
    channel_slots: HashMap<ChannelId, usize>,
    /// Direct-mapped dispatch cache, indexed by the channel id's low bits.
    dispatch: Vec<DispatchEntry>,
    dispatch_mask: usize,
    /// Current dispatch generation; bumped on task install/release and on
    /// `set_local_hosts`, which invalidates every cache line at once.
    dispatch_gen: u64,
    free_indicators: Vec<usize>,
    /// Free `[base, len)` slices of the per-copy aggregator space.
    free_regions: Vec<(u32, u32)>,
    /// If set, only channels whose owning host is in this set get
    /// reliability state and aggregation; other (cross-rack) channels are
    /// pure-forwarded (§7 "Deployment in Multi-rack networks").
    local_hosts: Option<std::collections::HashSet<u32>>,
    /// Exact `(channel, seq)` absorption journal, kept only when
    /// [`AskConfig::absorption_audit`] is set. Oracle bookkeeping for the
    /// conformance harness — real hardware has no analogue.
    absorbed_seqs: Option<HashSet<(ChannelId, u64)>>,
    /// Recycled packet backing stores: the decode path takes slot vectors
    /// from here and every verdict that consumes a packet returns them.
    pool: PacketPool,
    /// SoA scratch for the view ingest path, reused across bursts.
    view_lanes: ViewLanes,
    /// Violations journaled by pipelines discarded in [`crash_reset`]
    /// (`AggregatorEngine::crash_reset`); added to the live pipeline's count
    /// so the PISA-legality invariant spans crashes.
    carried_violations: u64,
}

/// Register arrays of a freshly built switch pipeline.
struct PipelineAlloc {
    pipeline: Pipeline,
    task_table: TableId,
    copy_indicator: ArrayId,
    max_seq: ArrayId,
    seen: ArrayId,
    aas: Vec<ArrayId>,
    pkt_state: ArrayId,
}

impl AggregatorEngine {
    /// Builds the engine, allocating all register arrays on a freshly
    /// created pipeline sized from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent ([`AskConfig::validate`]) or the
    /// layout cannot fit a Tofino3-like pipeline chain.
    pub fn new(config: AskConfig) -> Self {
        config.validate();
        let alloc = Self::build_pipeline(&config);
        let free_indicators: Vec<usize> = (0..config.max_tasks).rev().collect();
        let free_regions = vec![(0, config.aggregators_per_aa as u32)];
        let absorbed_seqs = config.absorption_audit.then(HashSet::new);
        let dispatch_lines = config.max_channels.next_power_of_two().max(64);
        let task_slots = (0..config.max_tasks).map(|_| None).collect();
        AggregatorEngine {
            config,
            pipeline: alloc.pipeline,
            aas: alloc.aas,
            task_table: alloc.task_table,
            copy_indicator: alloc.copy_indicator,
            max_seq: alloc.max_seq,
            seen: alloc.seen,
            pkt_state: alloc.pkt_state,
            task_slots,
            task_index: HashMap::new(),
            finished_stats: HashMap::new(),
            channel_slots: HashMap::new(),
            dispatch: vec![DispatchEntry::invalid(); dispatch_lines],
            dispatch_mask: dispatch_lines - 1,
            dispatch_gen: 1,
            free_indicators,
            free_regions,
            local_hosts: None,
            absorbed_seqs,
            pool: PacketPool::new(),
            view_lanes: ViewLanes::default(),
            carried_violations: 0,
        }
    }

    /// Builds and allocates the switch program's pipeline from scratch —
    /// used both at construction and when a crash wipes the data plane.
    fn build_pipeline(config: &AskConfig) -> PipelineAlloc {
        let n_aas = config.layout.aggregator_arrays();
        let aa_stages = n_aas.div_ceil(4);
        let stages_needed = 1 + aa_stages + 1;
        let chain = stages_needed.div_ceil(16).max(1);
        let mut pipeline = Pipeline::new(PipelineSpec::tofino3_chained(chain));

        let task_table = pipeline
            .alloc_table(0, config.max_tasks, 4)
            .expect("task table fits stage 0");
        let copy_indicator = pipeline
            .alloc_array(0, config.max_tasks, 1)
            .expect("copy indicator fits stage 0");
        let max_seq = pipeline
            .alloc_array(0, config.max_channels, 64)
            .expect("max_seq fits stage 0");
        let seen = pipeline
            .alloc_array(0, config.max_channels * config.window, 1)
            .expect("seen fits stage 0");

        let mut aas = Vec::with_capacity(n_aas);
        for i in 0..n_aas {
            let stage = 1 + i / 4;
            let id = pipeline
                .alloc_array(stage, 2 * config.aggregators_per_aa, 64)
                .unwrap_or_else(|e| panic!("AA_{i} does not fit stage {stage}: {e}"));
            aas.push(id);
        }
        let pkt_state = pipeline
            .alloc_array(1 + aa_stages, config.max_channels * config.window, 64)
            .expect("PktState fits final stage");
        PipelineAlloc {
            pipeline,
            task_table,
            copy_indicator,
            max_seq,
            seen,
            aas,
            pkt_state,
        }
    }

    /// Power-failure semantics: every register array, match table, dedup
    /// window, task region, and cached verdict is gone; only control-plane
    /// software state that would live off-switch survives (finished-task
    /// counters, the host-locality config, and the violation total, which
    /// [`AggregatorEngine::constraint_violations`] carries across the
    /// rebuild). Live tasks' counters are banked into the finished set so
    /// observability spans the crash.
    pub fn crash_reset(&mut self) {
        for (&task, &slot) in &self.task_index {
            if let Some(entry) = self.task_slots[slot].take() {
                self.finished_stats
                    .entry(task)
                    .or_default()
                    .merge(&entry.stats);
            }
        }
        self.task_index.clear();
        self.carried_violations += self.pipeline.violation_count();
        let alloc = Self::build_pipeline(&self.config);
        self.pipeline = alloc.pipeline;
        self.aas = alloc.aas;
        self.task_table = alloc.task_table;
        self.copy_indicator = alloc.copy_indicator;
        self.max_seq = alloc.max_seq;
        self.seen = alloc.seen;
        self.pkt_state = alloc.pkt_state;
        for slot in &mut self.task_slots {
            *slot = None;
        }
        self.channel_slots.clear();
        self.dispatch_gen += 1; // every cached dispatch line is now wrong
        self.free_indicators = (0..self.config.max_tasks).rev().collect();
        self.free_regions = vec![(0, self.config.aggregators_per_aa as u32)];
        // The audit journal is per-epoch: sequence spaces restart at zero
        // after a crash, so old (channel, seq) keys would falsely collide.
        self.absorbed_seqs = self.config.absorption_audit.then(HashSet::new);
    }

    /// The engine's recycled packet-buffer pool.
    pub fn pool(&self) -> &PacketPool {
        &self.pool
    }

    /// Mutable access to the pool, for callers that build the packets they
    /// feed to [`AggregatorEngine::process_data`] themselves.
    pub fn pool_mut(&mut self) -> &mut PacketPool {
        &mut self.pool
    }

    /// Restricts reliability state and aggregation to channels owned by
    /// `hosts` — the §7 top-of-rack deployment, where a ToR serves only its
    /// own rack and cross-rack traffic bypasses it as plain forwarding.
    pub fn set_local_hosts(&mut self, hosts: impl IntoIterator<Item = u32>) {
        self.local_hosts = Some(hosts.into_iter().collect());
        self.dispatch_gen += 1; // cached channel verdicts may have changed
    }

    /// Looks up a live task entry by id (control-plane path).
    fn task_entry(&self, task: TaskId) -> Option<&TaskEntry> {
        let &slot = self.task_index.get(&task)?;
        self.task_slots[slot].as_ref()
    }

    /// Mutable task entry for the dispatch slot, if the task is registered.
    fn slot_entry_mut(&mut self, task_slot: u32) -> Option<&mut TaskEntry> {
        if task_slot == SLOT_NONE {
            return None;
        }
        self.task_slots[task_slot as usize].as_mut()
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &AskConfig {
        &self.config
    }

    /// Per-task counters, surviving task release; `None` for unknown tasks.
    pub fn task_stats(&self, task: TaskId) -> Option<SwitchTaskStats> {
        // A task can have both a live entry and banked counters: a crash
        // banks the pre-crash stats while the re-registered epoch keeps its
        // own. Observability spans the crash, so sum them.
        let live = self.task_entry(task).map(|t| t.stats);
        let finished = self.finished_stats.get(&task).copied();
        match (live, finished) {
            (Some(mut l), Some(f)) => {
                l.merge(&f);
                Some(l)
            }
            (l, f) => l.or(f),
        }
    }

    /// The raw node index registered as `task`'s receiver.
    pub fn task_receiver(&self, task: TaskId) -> Option<u32> {
        self.task_entry(task).map(|t| t.receiver)
    }

    /// Registers a task with the paper's default SUM operator.
    /// Returns `None` (deny) if switch memory or task table is exhausted.
    pub fn register_task(&mut self, task: TaskId, receiver: u32) -> Option<AaRegion> {
        self.register_task_with_op(task, receiver, AggregateOp::Sum)
    }

    /// Registers a task with an explicit aggregation operator; the operator
    /// rides in the task's match-table action data, selecting the stateful
    /// ALU instruction the aggregator arrays execute for this task's
    /// packets.
    pub fn register_task_with_op(
        &mut self,
        task: TaskId,
        receiver: u32,
        op: AggregateOp,
    ) -> Option<AaRegion> {
        if self.config.force_host_only {
            return None;
        }
        if let Some(entry) = self.task_entry(task) {
            return Some(entry.region);
        }
        let want = self.config.region_aggregators as u32;
        let slot = self.free_regions.iter().position(|&(_, len)| len >= want)?;
        let indicator_idx = self.free_indicators.pop()?;
        let (base, len) = self.free_regions[slot];
        if len == want {
            self.free_regions.remove(slot);
        } else {
            self.free_regions[slot] = (base + want, len - want);
        }
        let region = AaRegion {
            base,
            aggregators: want,
        };
        self.pipeline
            .control_write(self.copy_indicator, indicator_idx, 0);
        self.pipeline
            .table_insert(
                self.task_table,
                task.0 as u64,
                vec![
                    region.base as u64,
                    region.aggregators as u64,
                    indicator_idx as u64,
                    op.to_code() as u64,
                ],
            )
            .expect("table capacity equals the indicator pool");
        self.task_slots[indicator_idx] = Some(TaskEntry {
            region,
            indicator_idx,
            receiver,
            op,
            claims: [Vec::new(), Vec::new()],
            fetch_cache: None,
            stats: SwitchTaskStats::default(),
        });
        self.task_index.insert(task, indicator_idx);
        self.dispatch_gen += 1; // "unknown task" cache lines are now wrong
        Some(region)
    }

    /// Releases a task's region and indicator; idempotent. Any values still
    /// in the region are zeroed (the receiver is expected to have fetched
    /// them first).
    pub fn release_task(&mut self, task: TaskId) {
        let Some(slot) = self.task_index.remove(&task) else {
            return;
        };
        let mut entry = self.task_slots[slot].take().expect("indexed task present");
        self.dispatch_gen += 1; // drop every cached line naming this task
        self.pipeline.table_remove(self.task_table, task.0 as u64);
        for copy in 0..2 {
            let claims = std::mem::take(&mut entry.claims[copy]);
            self.reset_claims(&claims, copy);
        }
        self.free_indicators.push(entry.indicator_idx);
        self.free_regions
            .push((entry.region.base, entry.region.aggregators));
        self.coalesce_free_regions();
        // Merge (not insert): the task may have been registered before a
        // crash too, and its pre-crash counters already live here.
        self.finished_stats
            .entry(task)
            .or_default()
            .merge(&entry.stats);
    }

    fn coalesce_free_regions(&mut self) {
        self.free_regions.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.free_regions.len());
        for &(base, len) in &self.free_regions {
            match merged.last_mut() {
                Some((b, l)) if *b + *l == base => *l += len,
                _ => merged.push((base, len)),
            }
        }
        self.free_regions = merged;
    }

    fn channel_slot(&mut self, channel: ChannelId) -> Option<usize> {
        if let Some(local) = &self.local_hosts {
            if !local.contains(&channel.host()) {
                return None; // cross-rack flow: no state, pure forwarding
            }
        }
        if let Some(&s) = self.channel_slots.get(&channel) {
            return Some(s);
        }
        let next = self.channel_slots.len();
        if next >= self.config.max_channels {
            return None;
        }
        self.channel_slots.insert(channel, next);
        Some(next)
    }

    /// Runs the dedup gate for one sequenced packet: the `max_seq` stale
    /// guard, then the compact even/odd `seen` bitmap (§3.3, Eq. 8).
    fn observe_in_pass(
        pass: &mut Pass<'_>,
        max_seq: ArrayId,
        seen: ArrayId,
        ch_slot: usize,
        window: usize,
        seq: u64,
    ) -> Result<Observation, AccessError> {
        let w = window as u64;
        let new_max = pass.access(max_seq, ch_slot, |v| {
            *v = (*v).max(seq);
            *v
        })?;
        if seq + w <= new_max {
            return Ok(Observation::Stale);
        }
        let r = (seq % w) as usize;
        let q_even = (seq / w).is_multiple_of(2);
        let bit = ch_slot * window + r;
        let observed = if q_even {
            pass.set_bit(seen, bit)?
        } else {
            pass.clr_bitc(seen, bit)?
        };
        Ok(if observed {
            Observation::Duplicate
        } else {
            Observation::First
        })
    }

    /// Dedup-gates a bypass packet (long-kv or FIN) that shares the
    /// channel's sequence space but is never aggregated. The switch forwards
    /// bypass packets regardless of duplication (the receiver dedups), but
    /// must still record them so the `seen` window stays dense.
    pub fn observe_bypass(&mut self, channel: ChannelId, seq: SeqNo) -> Observation {
        let Some(slot) = self.channel_slot(channel) else {
            return Observation::First; // untracked channel: pure forwarding
        };
        let mut pass = self.pipeline.begin_pass();
        Self::observe_in_pass(
            &mut pass,
            self.max_seq,
            self.seen,
            slot,
            self.config.window,
            seq.0,
        )
        // Degraded mode (violation journaled by the pipeline): forward as a
        // first sighting — the receiver's own window dedups bypass packets.
        .unwrap_or(Observation::First)
    }

    /// Records a forwarded long-key bypass packet in the task's counters.
    pub fn note_longkv_forwarded(&mut self, task: TaskId, tuples: u64) {
        if let Some(&slot) = self.task_index.get(&task) {
            if let Some(t) = self.task_slots[slot].as_mut() {
                t.stats.longkv_packets_forwarded += 1;
                t.stats.tuples_long_forwarded += tuples;
            }
        }
    }

    /// Processes one data packet through the full pipeline program.
    ///
    /// Takes the packet by value and rewrites it in place: aggregated slots
    /// are blanked directly, and whatever survives is handed back inside
    /// [`DataVerdict::Forward`] without ever copying the packet. Verdicts
    /// that consume the packet ([`DataVerdict::Stale`],
    /// [`DataVerdict::FullyAggregated`]) recycle its slot vector into the
    /// engine's [`PacketPool`].
    pub fn process_data(&mut self, pkt: DataPacket) -> DataVerdict {
        let ent = self.dispatch_entry(pkt.channel, pkt.task);
        self.process_resolved(ent, pkt)
    }

    /// [`AggregatorEngine::process_data`] for a packet flagged no-aggregate
    /// (degraded pass-through): the dedup gate and `PktState` bookkeeping
    /// run exactly as usual — so a flagged retransmission of a packet whose
    /// original *was* absorbed still resolves through the recorded bitmap
    /// and can never double-count — but first sightings skip the aggregator
    /// arrays entirely and forward every tuple.
    pub fn process_data_no_aggregate(&mut self, pkt: DataPacket) -> DataVerdict {
        let ent = self.dispatch_entry(pkt.channel, pkt.task);
        self.process_resolved_ex(ent, pkt, false)
    }

    /// Processes a burst of data packets, returning one verdict per packet
    /// in input order (appended to `verdicts`).
    ///
    /// Equivalent to calling [`AggregatorEngine::process_data`] on each
    /// packet in order — every verdict, protocol counter, and register state
    /// is identical (proptest-pinned) — but consecutive packets of the same
    /// `(channel, task)` group resolve the dispatch entry once for the whole
    /// run instead of re-probing the cache per packet. Each packet still
    /// executes its own pipeline pass: a pass models one PISA traversal, and
    /// two packets sharing a pass would trip same-register access conflicts
    /// that sequential processing does not have.
    ///
    /// The only observable difference is the purely observational
    /// `burst_len` histogram in [`SwitchTaskStats`], which records one entry
    /// per same-`(channel, task)` run.
    pub fn process_batch(
        &mut self,
        batch: impl IntoIterator<Item = DataPacket>,
        verdicts: &mut Vec<DataVerdict>,
    ) {
        let mut cur: Option<DispatchEntry> = None;
        let mut group_len: u64 = 0;
        for pkt in batch {
            let ent = match cur {
                // The data path never touches the control plane, so a
                // resolved entry stays valid for the rest of the batch.
                Some(e) if e.channel == pkt.channel && e.task == pkt.task => {
                    group_len += 1;
                    e
                }
                _ => {
                    if let Some(prev) = cur {
                        self.note_burst(prev.task_slot, group_len);
                    }
                    group_len = 1;
                    let e = self.dispatch_entry(pkt.channel, pkt.task);
                    cur = Some(e);
                    e
                }
            };
            verdicts.push(self.process_resolved(ent, pkt));
        }
        if let Some(prev) = cur {
            self.note_burst(prev.task_slot, group_len);
        }
    }

    /// [`AggregatorEngine::process_data`] over a borrowed view: same
    /// pipeline program, same verdict and counters, but aggregation reads
    /// keys and values straight from the frame bytes and the partial-absorb
    /// outcome is a residual bitmap instead of a rewritten packet. Never
    /// touches the packet pool.
    pub fn process_data_view(&mut self, view: &DataPacketView) -> ViewVerdict {
        let ent = self.dispatch_entry(view.channel(), view.task());
        let mut lanes = std::mem::take(&mut self.view_lanes);
        lanes.fill(std::slice::from_ref(view));
        let v = self.process_resolved_view(ent, view, &lanes, 0);
        self.view_lanes = lanes;
        v
    }

    /// [`AggregatorEngine::process_batch`] over borrowed views: phase 1
    /// pre-hashes every slot key in the burst into the SoA lanes, phase 2
    /// replays each packet's lane range through its own pipeline pass.
    /// Verdicts, counters (including the burst histogram), register state,
    /// and pass/violation accounting are identical to feeding the
    /// materialized packets through [`AggregatorEngine::process_batch`]
    /// (proptest-pinned); one verdict per view is appended to `verdicts` in
    /// input order.
    pub fn process_batch_views(
        &mut self,
        views: &[DataPacketView],
        verdicts: &mut Vec<ViewVerdict>,
    ) {
        let mut lanes = std::mem::take(&mut self.view_lanes);
        lanes.fill(views);
        let mut cur: Option<DispatchEntry> = None;
        let mut group_len: u64 = 0;
        for (ix, view) in views.iter().enumerate() {
            let ent = match cur {
                Some(e) if e.channel == view.channel() && e.task == view.task() => {
                    group_len += 1;
                    e
                }
                _ => {
                    if let Some(prev) = cur {
                        self.note_burst(prev.task_slot, group_len);
                    }
                    group_len = 1;
                    let e = self.dispatch_entry(view.channel(), view.task());
                    cur = Some(e);
                    e
                }
            };
            verdicts.push(self.process_resolved_view(ent, view, &lanes, ix));
        }
        if let Some(prev) = cur {
            self.note_burst(prev.task_slot, group_len);
        }
        self.view_lanes = lanes;
    }

    /// The pipeline program for one viewed packet — branch for branch the
    /// same as [`process_resolved_ex`](Self::process_resolved_ex) with
    /// aggregation on, so pass counts, register access order, and degraded
    /// (violation) behavior are indistinguishable from the scalar path.
    #[allow(clippy::drop_non_drop)]
    fn process_resolved_view(
        &mut self,
        ent: DispatchEntry,
        view: &DataPacketView,
        lanes: &ViewLanes,
        pkt_ix: usize,
    ) -> ViewVerdict {
        let bitmap = view.bitmap();
        if ent.ch_slot == SLOT_NONE {
            // No reliability state available: best-effort pure forwarding.
            return ViewVerdict::Forward { residual: bitmap };
        }
        let ch_slot = ent.ch_slot as usize;
        let window = self.config.window;

        let mut pass = self.pipeline.begin_pass();
        let copy = if ent.task_slot != SLOT_NONE {
            match pass.access(self.copy_indicator, ent.indicator_idx as usize, |v| *v) {
                Ok(c) => c as usize,
                Err(_) => {
                    drop(pass);
                    return ViewVerdict::Forward { residual: bitmap };
                }
            }
        } else {
            0
        };

        let obs = match Self::observe_in_pass(
            &mut pass,
            self.max_seq,
            self.seen,
            ch_slot,
            window,
            view.seq().0,
        ) {
            Ok(o) => o,
            Err(_) => {
                drop(pass);
                return ViewVerdict::Forward { residual: bitmap };
            }
        };
        let state_idx = ch_slot * window + (view.seq().0 % window as u64) as usize;

        match obs {
            Observation::Stale => {
                drop(pass);
                if let Some(t) = self.slot_entry_mut(ent.task_slot) {
                    t.stats.stale_dropped += 1;
                }
                ViewVerdict::Stale
            }
            Observation::First => {
                let (new_claims, aggregated, forwarded, residual) = if ent.task_slot != SLOT_NONE {
                    Self::aggregate_lanes(
                        &mut pass,
                        &self.aas,
                        &self.config,
                        ent.region,
                        copy,
                        ent.op,
                        ent.index_mask,
                        lanes,
                        pkt_ix,
                        bitmap,
                    )
                } else {
                    (Vec::new(), 0, bitmap.count_ones() as u64, bitmap)
                };
                let _ = pass.access(self.pkt_state, state_idx, |v| *v = residual as u64);
                drop(pass);
                let empty = residual == 0;
                let dup_absorb = match self.absorbed_seqs.as_mut() {
                    Some(journal) if aggregated > 0 => {
                        u64::from(!journal.insert((view.channel(), view.seq().0)))
                    }
                    _ => 0,
                };
                if let Some(t) = self.slot_entry_mut(ent.task_slot) {
                    t.claims[copy].extend(new_claims);
                    t.stats.data_packets += 1;
                    t.stats.tuples_aggregated += aggregated;
                    t.stats.tuples_forwarded += forwarded;
                    t.stats.duplicate_absorptions += dup_absorb;
                    if empty {
                        t.stats.packets_fully_aggregated += 1;
                    } else {
                        t.stats.packets_forwarded += 1;
                    }
                }
                if empty {
                    ViewVerdict::FullyAggregated
                } else {
                    ViewVerdict::Forward { residual }
                }
            }
            Observation::Duplicate => {
                let stored = match pass.access(self.pkt_state, state_idx, |v| *v) {
                    Ok(v) => v as u128,
                    Err(_) => u128::MAX,
                };
                drop(pass);
                if let Some(t) = self.slot_entry_mut(ent.task_slot) {
                    t.stats.duplicates_detected += 1;
                }
                if stored == 0 {
                    ViewVerdict::FullyAggregated
                } else {
                    ViewVerdict::Forward {
                        residual: bitmap & stored,
                    }
                }
            }
        }
    }

    /// Aggregates one packet's lane range within one pass — the per-lane
    /// counterpart of [`aggregate_packet`](Self::aggregate_packet), with the
    /// same per-slot register access sequence. Returns new claims, the
    /// aggregated/forwarded tuple counts, and the surviving slot bitmap.
    #[allow(clippy::too_many_arguments)]
    fn aggregate_lanes(
        pass: &mut Pass<'_>,
        aas: &[ArrayId],
        config: &AskConfig,
        region: AaRegion,
        copy: usize,
        op: AggregateOp,
        index_mask: u64,
        lanes: &ViewLanes,
        pkt_ix: usize,
        bitmap: u128,
    ) -> (Vec<Claim>, u64, u64, u128) {
        let layout = &config.layout;
        let copy_off = copy * config.aggregators_per_aa;
        let short = layout.short_slots();
        let m = layout.medium_segments();
        let (start, end, seg_start) = lanes.pkt[pkt_ix];
        let mut seg_cursor = seg_start as usize;
        let mut claims = Vec::new();
        let mut aggregated = 0u64;
        let mut forwarded = 0u64;
        let mut residual = bitmap;

        for lane in start as usize..end as usize {
            let slot_ix = lanes.slot_ix[lane] as usize;
            let value = lanes.value[lane];
            let mix = lanes.mix[lane];
            let spread = if index_mask == MASK_MODULO {
                mix % region.aggregators as u64
            } else {
                mix & index_mask
            };
            let idx = copy_off + region.base as usize + spread as usize;
            let ok = if slot_ix < short {
                let seg = lanes.seg[seg_cursor];
                seg_cursor += 1;
                debug_assert_ne!(seg, 0, "valid keys have non-zero segments");
                match Self::aggregate_segment(pass, aas[slot_ix], idx, seg, value, true, op) {
                    SegmentOutcome::Claimed => {
                        claims.push(Claim::Short { aa: slot_ix, idx });
                        true
                    }
                    SegmentOutcome::Matched => true,
                    SegmentOutcome::Conflict => false,
                }
            } else {
                let group = slot_ix - short;
                let base_aa = short + group * m;
                let mut claimed_any = false;
                let mut failed = false;
                for s in 0..m {
                    if failed {
                        break;
                    }
                    let aa = aas[base_aa + s];
                    let seg = lanes.seg[seg_cursor + s];
                    let is_last = s == m - 1;
                    match Self::aggregate_segment(pass, aa, idx, seg, value, is_last, op) {
                        SegmentOutcome::Claimed => claimed_any = true,
                        SegmentOutcome::Matched => {}
                        SegmentOutcome::Conflict => failed = true,
                    }
                }
                seg_cursor += m;
                debug_assert!(
                    !(claimed_any && failed),
                    "coalesced invariant: blanks are all-or-none per index"
                );
                if claimed_any {
                    claims.push(Claim::Medium { group, idx });
                }
                !failed
            };
            if ok {
                aggregated += 1;
                residual &= !(1u128 << slot_ix);
            } else {
                forwarded += 1;
            }
        }
        (claims, aggregated, forwarded, residual)
    }

    /// Records one same-channel ingest run in the task's burst histogram.
    fn note_burst(&mut self, task_slot: u32, len: u64) {
        if let Some(t) = self.slot_entry_mut(task_slot) {
            t.stats.burst_len[burst_bucket(len)] += 1;
        }
    }

    /// Resolves `(channel, task)` through the direct-mapped dispatch cache:
    /// on a warm hit the whole control lookup is one array read and three
    /// compares, no hashing.
    fn dispatch_entry(&mut self, channel: ChannelId, task: TaskId) -> DispatchEntry {
        let line = channel.0 as usize & self.dispatch_mask;
        let cached = self.dispatch[line];
        if cached.gen == self.dispatch_gen && cached.channel == channel && cached.task == task {
            cached
        } else {
            let fresh = self.fill_dispatch(channel, task);
            self.dispatch[line] = fresh;
            fresh
        }
    }

    /// The pipeline program for one packet, after dispatch resolution.
    fn process_resolved(&mut self, ent: DispatchEntry, pkt: DataPacket) -> DataVerdict {
        self.process_resolved_ex(ent, pkt, true)
    }

    /// The pipeline program for one packet, after dispatch resolution;
    /// `aggregate: false` is the degraded no-aggregate variant (dedup and
    /// `PktState` still run, aggregator arrays are skipped).
    // `drop(pass)` below deliberately ends the pipeline pass (and its
    // borrow) before control-plane state is updated; the lint misreads
    // that as a no-op.
    #[allow(clippy::drop_non_drop)]
    fn process_resolved_ex(
        &mut self,
        ent: DispatchEntry,
        mut pkt: DataPacket,
        aggregate: bool,
    ) -> DataVerdict {
        if ent.ch_slot == SLOT_NONE {
            // No reliability state available: best-effort pure forwarding.
            return DataVerdict::Forward(pkt);
        }
        let ch_slot = ent.ch_slot as usize;
        let window = self.config.window;

        let mut pass = self.pipeline.begin_pass();

        // Stage 0: the task's match-table action data (region, indicator,
        // operator) was latched into the dispatch entry at install time —
        // only the control plane writes it, and install/release invalidate
        // the cache — so the pass starts at the copy indicator, which does
        // change mid-task (shadow swaps) and stays a per-packet register
        // access.
        //
        // Any register-access violation below is journaled by the pipeline
        // and degrades the pass to plain forwarding: the packet goes out
        // untouched, nothing has been absorbed yet, and the receiver's own
        // window dedups — the one unsafe act (absorbing twice) never
        // happens in degraded mode.
        let copy = if ent.task_slot != SLOT_NONE {
            match pass.access(self.copy_indicator, ent.indicator_idx as usize, |v| *v) {
                Ok(c) => c as usize,
                Err(_) => {
                    drop(pass);
                    return DataVerdict::Forward(pkt);
                }
            }
        } else {
            0
        };

        let obs = match Self::observe_in_pass(
            &mut pass,
            self.max_seq,
            self.seen,
            ch_slot,
            window,
            pkt.seq.0,
        ) {
            Ok(o) => o,
            Err(_) => {
                drop(pass);
                return DataVerdict::Forward(pkt);
            }
        };
        let state_idx = ch_slot * window + (pkt.seq.0 % window as u64) as usize;

        match obs {
            Observation::Stale => {
                drop(pass);
                if let Some(t) = self.slot_entry_mut(ent.task_slot) {
                    t.stats.stale_dropped += 1;
                }
                self.pool.recycle_slots(std::mem::take(&mut pkt.slots));
                DataVerdict::Stale
            }
            Observation::First => {
                let (new_claims, aggregated, forwarded) = if aggregate && ent.task_slot != SLOT_NONE
                {
                    Self::aggregate_packet(
                        &mut pass,
                        &self.aas,
                        &self.config,
                        ent.region,
                        copy,
                        ent.op,
                        ent.index_mask,
                        &mut pkt,
                    )
                } else {
                    (Vec::new(), 0, pkt.occupied() as u64)
                };
                // Final stage: record the post-aggregation bitmap. On a
                // violation the write is skipped (journaled); a later
                // duplicate then reads whatever the register held.
                let _ = pass.access(self.pkt_state, state_idx, |v| *v = pkt.bitmap() as u64);
                drop(pass);
                let empty = pkt.is_empty();
                // Conformance audit: absorbing tuples from a sequence the
                // journal has already seen is an exactly-once violation.
                let dup_absorb = match self.absorbed_seqs.as_mut() {
                    Some(journal) if aggregated > 0 => {
                        u64::from(!journal.insert((pkt.channel, pkt.seq.0)))
                    }
                    _ => 0,
                };
                if let Some(t) = self.slot_entry_mut(ent.task_slot) {
                    t.claims[copy].extend(new_claims);
                    t.stats.data_packets += 1;
                    t.stats.tuples_aggregated += aggregated;
                    t.stats.tuples_forwarded += forwarded;
                    t.stats.duplicate_absorptions += dup_absorb;
                    if empty {
                        t.stats.packets_fully_aggregated += 1;
                    } else {
                        t.stats.packets_forwarded += 1;
                    }
                }
                if empty {
                    self.pool.recycle_slots(std::mem::take(&mut pkt.slots));
                    DataVerdict::FullyAggregated
                } else {
                    DataVerdict::Forward(pkt)
                }
            }
            Observation::Duplicate => {
                // Skip the AAs entirely; restore the recorded bitmap. If the
                // read itself violates (journaled), fall back to forwarding
                // the whole packet: never re-aggregate a duplicate.
                let stored = match pass.access(self.pkt_state, state_idx, |v| *v) {
                    Ok(v) => v as u128,
                    Err(_) => u128::MAX,
                };
                drop(pass);
                if let Some(t) = self.slot_entry_mut(ent.task_slot) {
                    t.stats.duplicates_detected += 1;
                }
                if stored == 0 {
                    self.pool.recycle_slots(std::mem::take(&mut pkt.slots));
                    DataVerdict::FullyAggregated
                } else {
                    for (i, slot) in pkt.slots.iter_mut().enumerate() {
                        if stored & (1 << i) == 0 {
                            *slot = None;
                        }
                    }
                    DataVerdict::Forward(pkt)
                }
            }
        }
    }

    /// Builds a dispatch line for `(channel, task)` the slow way — the
    /// hash lookups the cache exists to amortize. Assigns the channel a
    /// dedup slot if it does not have one yet.
    fn fill_dispatch(&mut self, channel: ChannelId, task: TaskId) -> DispatchEntry {
        let mut ent = DispatchEntry {
            gen: self.dispatch_gen,
            channel,
            task,
            ..DispatchEntry::invalid()
        };
        if let Some(slot) = self.channel_slot(channel) {
            ent.ch_slot = slot as u32;
        }
        if let Some(&slot) = self.task_index.get(&task) {
            let entry = self.task_slots[slot].as_ref().expect("indexed task present");
            ent.task_slot = slot as u32;
            ent.region = entry.region;
            ent.indicator_idx = entry.indicator_idx as u32;
            ent.op = entry.op;
            ent.index_mask = if entry.region.aggregators.is_power_of_two() {
                (entry.region.aggregators - 1) as u64
            } else {
                MASK_MODULO
            };
        }
        ent
    }

    /// Aggregates every occupied slot of `pkt` within one pass, blanking
    /// aggregated slots in place. Returns new claims plus the
    /// aggregated/forwarded tuple counts.
    #[allow(clippy::too_many_arguments)]
    fn aggregate_packet(
        pass: &mut Pass<'_>,
        aas: &[ArrayId],
        config: &AskConfig,
        region: AaRegion,
        copy: usize,
        op: AggregateOp,
        index_mask: u64,
        pkt: &mut DataPacket,
    ) -> (Vec<Claim>, u64, u64) {
        let layout = &config.layout;
        debug_assert_eq!(pkt.slots.len(), layout.slot_count());
        let copy_off = copy * config.aggregators_per_aa;
        let mut claims = Vec::new();
        let mut aggregated = 0;
        let mut forwarded = 0;

        for slot_ix in 0..pkt.slots.len() {
            let Some(tuple) = &pkt.slots[slot_ix] else {
                continue;
            };
            // Power-of-two regions reduce the index mix to an AND with the
            // precomputed mask; the modulo fallback yields the same index
            // whenever both paths are defined.
            let mix = index_hash(&tuple.key);
            let spread = if index_mask == MASK_MODULO {
                mix % region.aggregators as u64
            } else {
                mix & index_mask
            };
            let idx = copy_off + region.base as usize + spread as usize;
            let ok = if layout.is_short_slot(slot_ix) {
                let aa = aas[slot_ix];
                let seg = tuple.key.segment(0);
                debug_assert_ne!(seg, 0, "valid keys have non-zero segments");
                let claimed = Self::aggregate_segment(pass, aa, idx, seg, tuple.value, true, op);
                match claimed {
                    SegmentOutcome::Claimed => {
                        claims.push(Claim::Short { aa: slot_ix, idx });
                        true
                    }
                    SegmentOutcome::Matched => true,
                    SegmentOutcome::Conflict => false,
                }
            } else {
                let group = slot_ix - layout.short_slots();
                let m = layout.medium_segments();
                let base_aa = layout.short_slots() + group * m;
                let mut claimed_any = false;
                let mut failed = false;
                for s in 0..m {
                    if failed {
                        break;
                    }
                    let aa = aas[base_aa + s];
                    let seg = tuple.key.segment(s);
                    let is_last = s == m - 1;
                    match Self::aggregate_segment(pass, aa, idx, seg, tuple.value, is_last, op) {
                        SegmentOutcome::Claimed => claimed_any = true,
                        SegmentOutcome::Matched => {}
                        SegmentOutcome::Conflict => failed = true,
                    }
                }
                debug_assert!(
                    !(claimed_any && failed),
                    "coalesced invariant: blanks are all-or-none per index"
                );
                if claimed_any {
                    claims.push(Claim::Medium { group, idx });
                }
                !failed
            };
            if ok {
                aggregated += 1;
                pkt.slots[slot_ix] = None;
            } else {
                forwarded += 1;
            }
        }
        (claims, aggregated, forwarded)
    }

    /// One stateful-ALU operation on one aggregator register: claim if
    /// blank, add if the key segment matches, otherwise conflict.
    fn aggregate_segment(
        pass: &mut Pass<'_>,
        aa: ArrayId,
        idx: usize,
        seg: u32,
        value: u32,
        carries_value: bool,
        op: AggregateOp,
    ) -> SegmentOutcome {
        pass.access(aa, idx, |v| {
            let kpart = (*v >> 32) as u32;
            let vpart = *v as u32;
            if kpart == 0 {
                let nv = if carries_value { value } else { 0 };
                *v = ((seg as u64) << 32) | nv as u64;
                SegmentOutcome::Claimed
            } else if kpart == seg {
                if carries_value {
                    *v = ((seg as u64) << 32) | op.combine(vpart, value) as u64;
                }
                SegmentOutcome::Matched
            } else {
                SegmentOutcome::Conflict
            }
        })
        // Degraded mode: an unreachable aggregator is a conflict — the
        // tuple is forwarded to the host, never silently dropped.
        .unwrap_or(SegmentOutcome::Conflict)
    }

    /// Flips the task's copy indicator (Algorithm 1's `Switch()`); data
    /// packets processed after this pass aggregate into the other copy.
    pub fn swap(&mut self, task: TaskId) {
        let Some(&slot) = self.task_index.get(&task) else {
            return;
        };
        let Some(entry) = self.task_slots[slot].as_mut() else {
            return;
        };
        entry.stats.swaps += 1;
        let idx = entry.indicator_idx;
        let mut pass = self.pipeline.begin_pass();
        // A violated flip (journaled) leaves the indicator unchanged: both
        // copies stay consistent, the swap simply did not take effect.
        let _ = pass.access(self.copy_indicator, idx, |v| *v ^= 1);
    }

    /// The task's currently active copy (0 or 1); `None` for unknown tasks.
    pub fn active_copy(&self, task: TaskId) -> Option<usize> {
        let entry = self.task_entry(task)?;
        Some(
            self.pipeline
                .control_read(self.copy_indicator, entry.indicator_idx) as usize,
        )
    }

    /// Reliable fetch (Algorithm 1's `Read()` plus reset): harvests the
    /// requested copies when `fetch_seq` advances, replays the cached reply
    /// otherwise. Returns the entries to send back, shared with the fetch
    /// cache (replays are an `Arc` clone, not a tuple-vector copy).
    pub fn fetch(&mut self, task: TaskId, scope: FetchScope, fetch_seq: u32) -> Arc<Vec<KvTuple>> {
        let Some(&slot) = self.task_index.get(&task) else {
            return Arc::new(Vec::new());
        };
        let entry = self.task_slots[slot].as_ref().expect("indexed task present");
        if let Some((cached_seq, ref cached)) = entry.fetch_cache {
            if fetch_seq <= cached_seq {
                return Arc::clone(cached);
            }
        }
        let active = self
            .pipeline
            .control_read(self.copy_indicator, entry.indicator_idx) as usize;
        let copies: Vec<usize> = match scope {
            FetchScope::Inactive => vec![1 - active],
            FetchScope::All => vec![0, 1],
        };
        let mut harvest = Vec::new();
        for copy in copies {
            let claims = {
                let entry = self.task_slots[slot].as_mut().expect("present");
                std::mem::take(&mut entry.claims[copy])
            };
            self.harvest_claims(&claims, copy, &mut harvest);
            self.reset_claims(&claims, copy);
        }
        let harvest = Arc::new(harvest);
        let entry = self.task_slots[slot].as_mut().expect("present");
        entry.stats.tuples_fetched += harvest.len() as u64;
        entry.fetch_cache = Some((fetch_seq, Arc::clone(&harvest)));
        harvest
    }

    fn harvest_claims(&self, claims: &[Claim], _copy: usize, out: &mut Vec<KvTuple>) {
        let layout = &self.config.layout;
        for claim in claims {
            match *claim {
                Claim::Short { aa, idx } => {
                    let raw = self.pipeline.control_read(self.aas[aa], idx);
                    let kpart = (raw >> 32) as u32;
                    if kpart == 0 {
                        continue;
                    }
                    let key = Key::from_segments(&[kpart]).expect("stored keys are valid");
                    out.push(KvTuple::new(key, raw as u32));
                }
                Claim::Medium { group, idx } => {
                    let m = layout.medium_segments();
                    let base_aa = layout.short_slots() + group * m;
                    let mut segs = Vec::with_capacity(m);
                    let mut value = 0u32;
                    for s in 0..m {
                        let raw = self.pipeline.control_read(self.aas[base_aa + s], idx);
                        segs.push((raw >> 32) as u32);
                        if s == m - 1 {
                            value = raw as u32;
                        }
                    }
                    if segs[0] == 0 {
                        continue;
                    }
                    let key = Key::from_segments(&segs).expect("stored keys are valid");
                    out.push(KvTuple::new(key, value));
                }
            }
        }
    }

    fn reset_claims(&mut self, claims: &[Claim], _copy: usize) {
        let layout = self.config.layout;
        for claim in claims {
            match *claim {
                Claim::Short { aa, idx } => {
                    self.pipeline.control_write(self.aas[aa], idx, 0);
                }
                Claim::Medium { group, idx } => {
                    let m = layout.medium_segments();
                    let base_aa = layout.short_slots() + group * m;
                    for s in 0..m {
                        self.pipeline.control_write(self.aas[base_aa + s], idx, 0);
                    }
                }
            }
        }
    }

    /// Total passes the pipeline has executed (one per packet or swap).
    pub fn passes_executed(&self) -> u64 {
        self.pipeline.passes_executed()
    }

    /// Register-access/stage-order violations the pipeline journaled,
    /// including those of pipelines discarded by crash resets. The
    /// conformance harness's PISA-legality invariant is `== 0`.
    pub fn constraint_violations(&self) -> u64 {
        self.carried_violations + self.pipeline.violation_count()
    }

    /// The recorded violation journal (bounded; see [`Pipeline::violations`]).
    pub fn violations(&self) -> &[Violation] {
        self.pipeline.violations()
    }

    /// Total exactly-once violations seen by the absorption audit, across
    /// live and released tasks. Always 0 when the audit is disabled.
    pub fn duplicate_absorptions(&self) -> u64 {
        self.task_slots
            .iter()
            .flatten()
            .map(|t| t.stats.duplicate_absorptions)
            .chain(self.finished_stats.values().map(|s| s.duplicate_absorptions))
            .sum()
    }

    /// Chaos hook: flips the compact `seen` bit covering `(channel, seq)`,
    /// simulating an SRAM upset in the dedup window. Returns `false` if the
    /// channel has no reliability state. Control-plane access — this is
    /// fault *injection*, not part of the switch program.
    pub fn inject_seen_bit_flip(&mut self, channel: ChannelId, seq: SeqNo) -> bool {
        let Some(&slot) = self.channel_slots.get(&channel) else {
            return false;
        };
        let w = self.config.window;
        let bit = slot * w + (seq.0 % w as u64) as usize;
        let cur = self.pipeline.control_read(self.seen, bit);
        self.pipeline.control_write(self.seen, bit, cur ^ 1);
        true
    }

    /// Per-stage resource usage of the compiled switch program.
    pub fn resource_report(&self) -> ask_pisa::pipeline::ResourceReport {
        self.pipeline.resource_report()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegmentOutcome {
    Claimed,
    Matched,
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ask_wire::packet::PacketLayout;

    fn engine() -> AggregatorEngine {
        AggregatorEngine::new(AskConfig::tiny())
    }

    fn pkt(task: u32, channel: u32, seq: u64, tuples: &[(usize, &str, u32)]) -> DataPacket {
        let layout = AskConfig::tiny().layout;
        let mut slots = vec![None; layout.slot_count()];
        for &(slot, key, value) in tuples {
            slots[slot] = Some(KvTuple::new(Key::from_str(key).unwrap(), value));
        }
        DataPacket {
            task: TaskId(task),
            channel: ChannelId(channel),
            seq: SeqNo(seq),
            slots,
        }
    }

    #[test]
    fn first_packet_fully_aggregates() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).expect("region");
        let v = e.process_data(pkt(1, 0, 0, &[(0, "cat", 3), (1, "dog", 4)]));
        assert_eq!(v, DataVerdict::FullyAggregated);
        let got = e.fetch(TaskId(1), FetchScope::All, 1);
        let mut got: Vec<(String, u32)> = got
            .iter()
            .map(|t| {
                (
                    String::from_utf8_lossy(t.key.as_bytes()).into_owned(),
                    t.value,
                )
            })
            .collect();
        got.sort();
        assert_eq!(got, vec![("cat".into(), 3), ("dog".into(), 4)]);
    }

    #[test]
    fn same_key_accumulates() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        for seq in 0..10 {
            let v = e.process_data(pkt(1, 0, seq, &[(0, "cat", 2)]));
            assert_eq!(v, DataVerdict::FullyAggregated);
        }
        let got = e.fetch(TaskId(1), FetchScope::All, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, 20);
    }

    #[test]
    fn collision_forwards_residual() {
        let mut e = engine();
        // One-aggregator region: every distinct key after the first collides.
        let mut cfg = AskConfig::tiny();
        cfg.region_aggregators = 1;
        let mut e2 = AggregatorEngine::new(cfg);
        e2.register_task(TaskId(1), 9).unwrap();
        assert_eq!(
            e2.process_data(pkt(1, 0, 0, &[(0, "aaa", 1)])),
            DataVerdict::FullyAggregated
        );
        match e2.process_data(pkt(1, 0, 1, &[(0, "bbb", 7)])) {
            DataVerdict::Forward(p) => {
                assert_eq!(p.occupied(), 1);
                assert_eq!(p.slots[0].as_ref().unwrap().value, 7);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        let s = e2.task_stats(TaskId(1)).unwrap();
        assert_eq!(s.tuples_aggregated, 1);
        assert_eq!(s.tuples_forwarded, 1);
        assert_eq!(s.packets_forwarded, 1);
        // Keep the default-config engine exercised too.
        e.register_task(TaskId(2), 1).unwrap();
    }

    #[test]
    fn duplicate_fully_aggregated_is_acked_not_reaggregated() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        let p = pkt(1, 0, 0, &[(0, "cat", 5)]);
        assert_eq!(e.process_data(p.clone()), DataVerdict::FullyAggregated);
        assert_eq!(e.process_data(p), DataVerdict::FullyAggregated);
        let got = e.fetch(TaskId(1), FetchScope::All, 1);
        assert_eq!(got[0].value, 5, "retransmission must not double-count");
        assert_eq!(e.task_stats(TaskId(1)).unwrap().duplicates_detected, 1);
    }

    #[test]
    fn duplicate_partial_carries_only_residual() {
        let mut cfg = AskConfig::tiny();
        cfg.region_aggregators = 1;
        let mut e = AggregatorEngine::new(cfg);
        e.register_task(TaskId(1), 9).unwrap();
        // Occupy slot-0's only aggregator with "aaa".
        e.process_data(pkt(1, 0, 0, &[(0, "aaa", 1)]));
        // Mixed packet: "aaa" aggregates, "bbb" conflicts in slot 0... they
        // share slot 0 across packets; send both in one packet via slots 0/1.
        let mixed = pkt(1, 0, 1, &[(0, "aaa", 2), (1, "ccc", 3)]);
        let first = e.process_data(mixed);
        // "aaa" merges into slot0 aggregator; "ccc" claims slot1 aggregator.
        assert_eq!(first, DataVerdict::FullyAggregated);
        // Now make slot 1 conflict: occupy then send a different key.
        let conflict = pkt(1, 0, 2, &[(1, "ddd", 9)]);
        let v1 = e.process_data(conflict.clone());
        let DataVerdict::Forward(f1) = v1 else {
            panic!("expected forward")
        };
        // Retransmit the same packet: must carry the same residual without
        // touching the aggregators.
        let v2 = e.process_data(conflict);
        let DataVerdict::Forward(f2) = v2 else {
            panic!("expected forward")
        };
        assert_eq!(f1, f2);
        let total: u32 = e
            .fetch(TaskId(1), FetchScope::All, 1)
            .iter()
            .map(|t| t.value)
            .sum();
        assert_eq!(total, 1 + 2 + 3, "ddd must not be aggregated on switch");
    }

    #[test]
    fn stale_packet_dropped() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        let w = e.config().window as u64;
        // Advance max_seq far ahead.
        e.process_data(pkt(1, 0, 3 * w, &[(0, "cat", 1)]));
        let v = e.process_data(pkt(1, 0, w, &[(0, "dog", 1)]));
        assert_eq!(v, DataVerdict::Stale);
        assert_eq!(e.task_stats(TaskId(1)).unwrap().stale_dropped, 1);
    }

    #[test]
    fn unknown_task_forwards_without_aggregation() {
        let mut e = engine();
        let v = e.process_data(pkt(42, 0, 0, &[(0, "cat", 1)]));
        match v {
            DataVerdict::Forward(p) => assert_eq!(p.occupied(), 1),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn medium_keys_coalesce_and_roundtrip() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        // tiny layout: slots 4 and 5 are medium groups (m = 2).
        let p = pkt(1, 0, 0, &[(4, "maples", 6)]);
        assert_eq!(e.process_data(p), DataVerdict::FullyAggregated);
        assert_eq!(
            e.process_data(pkt(1, 0, 1, &[(4, "maples", 4)])),
            DataVerdict::FullyAggregated
        );
        let got = e.fetch(TaskId(1), FetchScope::All, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key.as_bytes(), b"maples");
        assert_eq!(got[0].value, 10);
    }

    #[test]
    fn medium_prefix_keys_do_not_false_match() {
        // "yoursX" vs "yourlY": craft two 6-byte keys sharing segment 0 if
        // hashed to the same index they must conflict, not merge. We force
        // the shared index with a 1-aggregator region.
        let mut cfg = AskConfig::tiny();
        cfg.region_aggregators = 1;
        let mut e = AggregatorEngine::new(cfg);
        e.register_task(TaskId(1), 9).unwrap();
        assert_eq!(
            e.process_data(pkt(1, 0, 0, &[(4, "yoursa", 1)])),
            DataVerdict::FullyAggregated
        );
        // Same segment 0 ("your"), different key: unified index collides →
        // segment 0 mismatch is impossible (same bytes) BUT segment 1
        // differs → conflict, forwarded.
        match e.process_data(pkt(1, 0, 1, &[(4, "yourxy", 2)])) {
            DataVerdict::Forward(p) => assert_eq!(p.occupied(), 1),
            other => panic!("expected forward, got {other:?}"),
        }
        let got = e.fetch(TaskId(1), FetchScope::All, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key.as_bytes(), b"yoursa");
        assert_eq!(got[0].value, 1);
    }

    #[test]
    fn shadow_swap_directs_writes_to_other_copy() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        assert_eq!(e.active_copy(TaskId(1)), Some(0));
        e.process_data(pkt(1, 0, 0, &[(0, "cat", 1)]));
        e.swap(TaskId(1));
        assert_eq!(e.active_copy(TaskId(1)), Some(1));
        e.process_data(pkt(1, 0, 1, &[(0, "cat", 2)]));
        // Inactive copy now holds the pre-swap value.
        let old = e.fetch(TaskId(1), FetchScope::Inactive, 1);
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].value, 1);
        // Remaining copy holds the post-swap value.
        let rest = e.fetch(TaskId(1), FetchScope::All, 2);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].value, 2);
    }

    #[test]
    fn fetch_is_idempotent_per_fetch_seq() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        e.process_data(pkt(1, 0, 0, &[(0, "cat", 5)]));
        let a = e.fetch(TaskId(1), FetchScope::All, 1);
        // Retry of the same fetch_seq replays the cache even though the
        // registers were reset.
        let b = e.fetch(TaskId(1), FetchScope::All, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        // The next fetch_seq sees an empty region.
        let c = e.fetch(TaskId(1), FetchScope::All, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn regions_isolate_tasks() {
        let mut cfg = AskConfig::tiny();
        cfg.region_aggregators = 16; // two tasks fit (64-aggregator space)
        let mut e = AggregatorEngine::new(cfg);
        let r1 = e.register_task(TaskId(1), 8).unwrap();
        let r2 = e.register_task(TaskId(2), 9).unwrap();
        assert_ne!(r1.base, r2.base);
        e.process_data(pkt(1, 0, 0, &[(0, "cat", 1)]));
        e.process_data(pkt(2, 1, 0, &[(0, "cat", 10)]));
        assert_eq!(e.fetch(TaskId(1), FetchScope::All, 1)[0].value, 1);
        assert_eq!(e.fetch(TaskId(2), FetchScope::All, 1)[0].value, 10);
    }

    #[test]
    fn region_exhaustion_denies_then_release_recovers() {
        let mut cfg = AskConfig::tiny();
        cfg.region_aggregators = 32; // per-copy space is 64: two tasks max
        let mut e = AggregatorEngine::new(cfg);
        assert!(e.register_task(TaskId(1), 1).is_some());
        assert!(e.register_task(TaskId(2), 2).is_some());
        assert!(e.register_task(TaskId(3), 3).is_none(), "memory exhausted");
        e.release_task(TaskId(1));
        assert!(e.register_task(TaskId(3), 3).is_some());
        // Idempotent release of an unknown task is a no-op.
        e.release_task(TaskId(99));
    }

    #[test]
    fn release_zeroes_leftover_registers() {
        let mut cfg = AskConfig::tiny();
        cfg.region_aggregators = 32;
        let mut e = AggregatorEngine::new(cfg);
        e.register_task(TaskId(1), 1).unwrap();
        e.process_data(pkt(1, 0, 0, &[(0, "cat", 5)]));
        e.release_task(TaskId(1));
        // A new task reusing the same region must not see stale keys.
        e.register_task(TaskId(2), 2).unwrap();
        assert_eq!(
            e.process_data(pkt(2, 1, 0, &[(0, "dog", 1)])),
            DataVerdict::FullyAggregated
        );
        let got = e.fetch(TaskId(2), FetchScope::All, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key.as_bytes(), b"dog");
    }

    #[test]
    fn bypass_observation_keeps_window_dense() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        let w = e.config().window as u64;
        // Interleave: even seqs are data, odd are bypass, across 3 windows.
        for seq in 0..3 * w {
            if seq % 2 == 0 {
                let v = e.process_data(pkt(1, 0, seq, &[(0, "cat", 1)]));
                assert_eq!(v, DataVerdict::FullyAggregated, "seq {seq}");
            } else {
                let o = e.observe_bypass(ChannelId(0), SeqNo(seq));
                assert_eq!(o, Observation::First, "seq {seq}");
            }
        }
        let got = e.fetch(TaskId(1), FetchScope::All, 1);
        assert_eq!(got[0].value as u64, 3 * w / 2);
    }

    #[test]
    fn full_window_of_packets_then_duplicates() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        let w = e.config().window as u64;
        for seq in 0..w {
            assert_eq!(
                e.process_data(pkt(1, 0, seq, &[(0, "k", 1)])),
                DataVerdict::FullyAggregated
            );
        }
        for seq in 0..w {
            // All still in window (max_seq = w-1, window (w-1-W, w-1]).
            assert_eq!(
                e.process_data(pkt(1, 0, seq, &[(0, "k", 1)])),
                DataVerdict::FullyAggregated,
                "dup seq {seq}"
            );
        }
        assert_eq!(e.fetch(TaskId(1), FetchScope::All, 1)[0].value as u64, w);
    }

    #[test]
    fn seen_bit_flip_reabsorption_is_invisible_to_values_but_audited() {
        // The bug class the value-comparing e2e suite can never catch: under
        // AggregateOp::Max, absorbing the same packet twice leaves the final
        // value unchanged (max(v, v) = v). Only the absorption audit sees it.
        let mut cfg = AskConfig::tiny();
        cfg.absorption_audit = true;
        let mut e = AggregatorEngine::new(cfg);
        e.register_task_with_op(TaskId(1), 9, AggregateOp::Max)
            .unwrap();
        let p = pkt(1, 0, 0, &[(0, "cat", 7)]);
        assert_eq!(e.process_data(p.clone()), DataVerdict::FullyAggregated);
        assert!(e.inject_seen_bit_flip(ChannelId(0), SeqNo(0)));
        // The retransmission now passes the corrupted dedup gate.
        assert_eq!(e.process_data(p), DataVerdict::FullyAggregated);
        assert_eq!(
            e.fetch(TaskId(1), FetchScope::All, 1)[0].value,
            7,
            "value oracle is blind to the double absorption"
        );
        assert_eq!(e.duplicate_absorptions(), 1, "the audit is not");
        assert_eq!(e.task_stats(TaskId(1)).unwrap().duplicate_absorptions, 1);
    }

    #[test]
    fn normal_runs_report_no_violations_or_duplicate_absorptions() {
        let mut cfg = AskConfig::tiny();
        cfg.absorption_audit = true;
        let mut e = AggregatorEngine::new(cfg);
        e.register_task(TaskId(1), 9).unwrap();
        for seq in 0..20 {
            e.process_data(pkt(1, 0, seq, &[(0, "cat", 1), (4, "maples", 2)]));
            if seq % 3 == 0 {
                // Honest retransmissions must not trip the audit.
                e.process_data(pkt(1, 0, seq, &[(0, "cat", 1), (4, "maples", 2)]));
            }
        }
        e.swap(TaskId(1));
        e.fetch(TaskId(1), FetchScope::All, 1);
        assert_eq!(e.constraint_violations(), 0);
        assert!(e.violations().is_empty());
        assert_eq!(e.duplicate_absorptions(), 0);
    }

    #[test]
    fn dispatch_cache_invalidates_on_install_and_release() {
        let mut e = engine();
        // Warm the cache with an "unknown task" line.
        match e.process_data(pkt(1, 0, 0, &[(0, "cat", 1)])) {
            DataVerdict::Forward(p) => assert_eq!(p.occupied(), 1),
            other => panic!("unknown task must forward, got {other:?}"),
        }
        // Installing the task must invalidate that line: the same
        // (channel, task) pair now aggregates.
        e.register_task(TaskId(1), 9).expect("region");
        assert_eq!(
            e.process_data(pkt(1, 0, 1, &[(0, "cat", 2)])),
            DataVerdict::FullyAggregated
        );
        // Releasing must invalidate again: back to pure forwarding, even
        // though the warm line still names the released task.
        e.release_task(TaskId(1));
        match e.process_data(pkt(1, 0, 2, &[(0, "cat", 3)])) {
            DataVerdict::Forward(p) => assert_eq!(p.occupied(), 1),
            other => panic!("released task must forward, got {other:?}"),
        }
        // A different task reusing the freed slot must not inherit stats or
        // claims through a stale cache line.
        e.register_task(TaskId(2), 9).expect("region");
        assert_eq!(
            e.process_data(pkt(2, 0, 3, &[(0, "dog", 4)])),
            DataVerdict::FullyAggregated
        );
        assert_eq!(e.task_stats(TaskId(2)).unwrap().data_packets, 1);
        assert_eq!(e.fetch(TaskId(2), FetchScope::All, 1).len(), 1);
    }

    #[test]
    fn consumed_packets_recycle_into_pool() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        assert_eq!(
            e.process_data(pkt(1, 0, 0, &[(0, "cat", 3)])),
            DataVerdict::FullyAggregated
        );
        assert_eq!(e.pool().retained(), 1, "fully-aggregated slots recycled");
        let w = e.config().window as u64;
        e.process_data(pkt(1, 0, 3 * w, &[(0, "cat", 1)]));
        assert_eq!(
            e.process_data(pkt(1, 0, w, &[(0, "dog", 1)])),
            DataVerdict::Stale
        );
        assert_eq!(e.pool().retained(), 3, "stale slots recycled too");
        let v = e.pool_mut().take_slots(4);
        assert_eq!(e.pool().hits(), 1);
        e.pool_mut().recycle_slots(v);
    }

    #[test]
    fn batch_verdicts_and_stats_match_sequential() {
        use crate::stats::BURST_BUCKETS;
        let mk = || {
            let mut e = engine();
            e.register_task(TaskId(1), 9).unwrap();
            e
        };
        // Channel-interleaved runs with a duplicate and a stale mixed in.
        let mut packets: Vec<DataPacket> = Vec::new();
        for seq in 0..6u64 {
            packets.push(pkt(1, 0, seq, &[(0, "cat", 1), (4, "maples", 2)]));
        }
        for seq in 0..4u64 {
            packets.push(pkt(1, 1, seq, &[(1, "dog", 3)]));
        }
        packets.push(pkt(1, 0, 2, &[(0, "cat", 1), (4, "maples", 2)])); // dup
        packets.push(pkt(42, 2, 0, &[(0, "eel", 9)])); // unknown task
        let mut seq_e = mk();
        let seq_verdicts: Vec<DataVerdict> = packets
            .iter()
            .cloned()
            .map(|p| seq_e.process_data(p))
            .collect();
        let mut bat_e = mk();
        let mut bat_verdicts = Vec::new();
        bat_e.process_batch(packets, &mut bat_verdicts);
        assert_eq!(seq_verdicts, bat_verdicts);
        let mut a = seq_e.task_stats(TaskId(1)).unwrap();
        let mut b = bat_e.task_stats(TaskId(1)).unwrap();
        // burst_len is the documented observational exception.
        a.burst_len = [0; BURST_BUCKETS];
        b.burst_len = [0; BURST_BUCKETS];
        assert_eq!(a, b);
        assert_eq!(
            seq_e.fetch(TaskId(1), FetchScope::All, 1),
            bat_e.fetch(TaskId(1), FetchScope::All, 1)
        );
    }

    #[test]
    fn batch_records_burst_histogram() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        let packets: Vec<DataPacket> = (0..4u64)
            .map(|seq| pkt(1, 0, seq, &[(0, "cat", 1)]))
            .collect();
        let mut verdicts = Vec::new();
        e.process_batch(packets, &mut verdicts);
        let s = e.task_stats(TaskId(1)).unwrap();
        assert_eq!(s.burst_len[crate::stats::burst_bucket(4)], 1);
        // Sequential processing records nothing.
        e.process_data(pkt(1, 0, 4, &[(0, "cat", 1)]));
        let s2 = e.task_stats(TaskId(1)).unwrap();
        assert_eq!(s2.burst_len.iter().sum::<u64>(), 1);
    }

    #[test]
    fn view_batch_matches_scalar_batch() {
        use ask_wire::codec::encode_envelope_parts;
        use ask_wire::packet::AskPacket;
        use ask_wire::view::{FrameView, PacketView};
        let layout = AskConfig::tiny().layout;
        let view_of = |p: &DataPacket| -> DataPacketView {
            let bytes = encode_envelope_parts(1, 0, 0, 0, &AskPacket::Data(p.clone()), &layout);
            match FrameView::parse(bytes).unwrap().into_packet() {
                PacketView::Data(d) => d,
                _ => unreachable!("data frames parse to data views"),
            }
        };
        let mk = || {
            let mut e = engine();
            e.register_task(TaskId(1), 9).unwrap();
            e
        };
        let mut packets: Vec<DataPacket> = Vec::new();
        for seq in 0..6u64 {
            packets.push(pkt(1, 0, seq, &[(0, "cat", 1), (4, "maples", 2)]));
        }
        for seq in 0..4u64 {
            packets.push(pkt(1, 1, seq, &[(1, "dog", 3)]));
        }
        packets.push(pkt(1, 0, 2, &[(0, "cat", 1), (4, "maples", 2)])); // dup
        packets.push(pkt(42, 2, 0, &[(0, "eel", 9)])); // unknown task
        packets.push(pkt(1, 0, 0, &[(0, "cat", 1)])); // stale once seqs advance

        let views: Vec<DataPacketView> = packets.iter().map(&view_of).collect();
        let mut scalar_e = mk();
        let mut scalar_verdicts = Vec::new();
        scalar_e.process_batch(packets.clone(), &mut scalar_verdicts);
        let mut view_e = mk();
        let mut view_verdicts = Vec::new();
        view_e.process_batch_views(&views, &mut view_verdicts);

        assert_eq!(scalar_verdicts.len(), view_verdicts.len());
        for (s, v) in scalar_verdicts.iter().zip(&view_verdicts) {
            match (s, v) {
                (DataVerdict::Stale, ViewVerdict::Stale) => {}
                (DataVerdict::FullyAggregated, ViewVerdict::FullyAggregated) => {}
                (DataVerdict::Forward(p), ViewVerdict::Forward { residual }) => {
                    assert_eq!(p.bitmap(), *residual);
                }
                other => panic!("verdicts diverge: {other:?}"),
            }
        }
        assert_eq!(
            scalar_e.task_stats(TaskId(1)).unwrap(),
            view_e.task_stats(TaskId(1)).unwrap(),
            "counters (including burst histogram) must match"
        );
        assert_eq!(scalar_e.passes_executed(), view_e.passes_executed());
        assert_eq!(
            scalar_e.constraint_violations(),
            view_e.constraint_violations()
        );
        assert_eq!(
            scalar_e.fetch(TaskId(1), FetchScope::All, 1),
            view_e.fetch(TaskId(1), FetchScope::All, 1)
        );
        assert_eq!(view_e.pool().retained(), 0, "view path never touches the pool");
    }

    #[test]
    fn blank_slots_are_skipped() {
        let mut e = engine();
        e.register_task(TaskId(1), 9).unwrap();
        let layout = PacketLayout::custom(4, 2, 2);
        let p = DataPacket {
            task: TaskId(1),
            channel: ChannelId(0),
            seq: SeqNo(0),
            slots: vec![None; layout.slot_count()],
        };
        assert_eq!(e.process_data(p), DataVerdict::FullyAggregated);
    }
}
