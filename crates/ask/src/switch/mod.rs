//! The ASK switch: aggregation engine plus the network-facing node.

pub mod aggregator;

pub use aggregator::{AggregatorEngine, DataVerdict, Observation, ViewVerdict};

use crate::config::AskConfig;
use crate::stats::SwitchTaskStats;
use ask_simnet::frame::{Frame, NodeId};
use ask_simnet::network::{Context, Node};
use ask_wire::codec::{decode_envelope_pooled, encode_envelope, Envelope, FLAG_NO_AGGREGATE};
use ask_wire::constants::PACKET_OVERHEAD;
use ask_wire::packet::{AskPacket, ChannelId, ControlMsg, DataPacket, SeqNo, TaskId};
use ask_wire::view::{DataPacketView, FrameView, PacketView};
use bytes::Bytes;

/// Everything needed to emit the response for one data packet's verdict
/// after the engine pass: the addressing, the original payload bytes (for
/// the relay-unchanged fast path) and the pre-aggregation occupancy.
#[derive(Debug)]
struct DataMeta {
    src: u32,
    dst: u32,
    channel: ChannelId,
    seq: SeqNo,
    ecn: bool,
    wire: usize,
    occupied_before: usize,
    payload: Bytes,
    /// Sender-stamped envelope epoch/flags, preserved verbatim when the
    /// switch rewrites the envelope for a residual forward.
    epoch: u32,
    flags: u8,
}

/// The top-of-rack ASK switch as a simulated network node.
///
/// The switch is both the data plane (every frame between hosts traverses
/// it; data packets run through the [`AggregatorEngine`] pipeline) and the
/// controller (it grants and releases aggregator-array regions in response
/// to control messages, §3.1 steps ③ and ⑫).
#[derive(Debug)]
pub struct AskSwitch {
    engine: AggregatorEngine,
    /// Next-hop overrides: destinations not listed are assumed directly
    /// attached. Lets ToR switches route cross-rack traffic via a spine
    /// (§7 multi-rack deployment).
    routes: std::collections::HashMap<u32, NodeId>,
    /// Frames that could not be routed (no link to destination).
    unroutable: u64,
    /// Frames that failed to decode.
    undecodable: u64,
    /// The switch's incarnation number, bumped by every crash/restart and
    /// stamped into every envelope the switch originates. Ingress frames
    /// from an older epoch are rejected — their sender still talks to a
    /// dead incarnation whose aggregator/dedup state is gone.
    epoch: u32,
    /// Ingress frames dropped by the epoch gate.
    stale_epoch_drops: u64,
    /// Data packets processed through the degraded no-aggregate path.
    noagg_relayed: u64,
    /// Scratch buffers for burst ingest, reused across deliveries.
    batch_pkts: Vec<DataPacket>,
    batch_meta: Vec<DataMeta>,
    batch_verdicts: Vec<DataVerdict>,
    /// Forces the legacy materializing (scalar) datapath instead of the
    /// zero-materialization view path. Set from
    /// [`AskConfig::switch_scalar`] or the `ASK_SWITCH_SCALAR` environment
    /// variable; both paths emit byte-identical traffic.
    scalar: bool,
    /// Data frames fully absorbed by the view path: consumed straight from
    /// the wire bytes with no slot materialization and no pool traffic.
    pure_absorb: u64,
    /// Scratch buffers for view-path burst ingest.
    batch_views: Vec<DataPacketView>,
    batch_view_verdicts: Vec<ViewVerdict>,
}

impl AskSwitch {
    /// Creates a switch with the given configuration.
    pub fn new(config: AskConfig) -> Self {
        let scalar = config.switch_scalar
            || std::env::var("ASK_SWITCH_SCALAR").map(|v| v != "0").unwrap_or(false);
        AskSwitch {
            engine: AggregatorEngine::new(config),
            routes: std::collections::HashMap::new(),
            unroutable: 0,
            undecodable: 0,
            epoch: 0,
            stale_epoch_drops: 0,
            noagg_relayed: 0,
            batch_pkts: Vec::new(),
            batch_meta: Vec::new(),
            batch_verdicts: Vec::new(),
            scalar,
            pure_absorb: 0,
            batch_views: Vec::new(),
            batch_view_verdicts: Vec::new(),
        }
    }

    /// Crashes and restarts the switch: every register array, match table,
    /// dedup window, and task region is wiped ([`AggregatorEngine::crash_reset`])
    /// and the switch comes back in a new epoch, so anything computed
    /// against the dead incarnation — in-flight verdicts, ACKs, fetch
    /// replies, sender sequence spaces — is rejected by the epoch gates on
    /// both sides instead of corrupting the restarted state.
    pub fn crash(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.engine.crash_reset();
        self.batch_pkts.clear();
        self.batch_meta.clear();
        self.batch_verdicts.clear();
        self.batch_views.clear();
        self.batch_view_verdicts.clear();
    }

    /// The switch's current incarnation number.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Ingress frames dropped because they carried an older epoch.
    pub fn stale_epoch_drops(&self) -> u64 {
        self.stale_epoch_drops
    }

    /// Data packets that took the degraded no-aggregate pass-through path.
    pub fn noagg_relayed(&self) -> u64 {
        self.noagg_relayed
    }

    /// Data frames the view path fully absorbed without materializing a
    /// single slot — zero pool traffic, just an ACK back to the sender.
    /// Always zero on the scalar datapath.
    pub fn pure_absorb_frames(&self) -> u64 {
        self.pure_absorb
    }

    /// Whether the switch is running the legacy materializing datapath.
    pub fn is_scalar(&self) -> bool {
        self.scalar
    }

    /// Epoch gate for one ingress frame: frames from this epoch pass;
    /// older ones are dropped (packet bodies recycled) and answered with an
    /// [`ControlMsg::EpochNotify`] so the sender resynchronizes. Returns
    /// the packet when the frame should be processed.
    fn epoch_admit(&mut self, src: u32, envelope_epoch: u32, packet: AskPacket, ctx: &mut Context<'_>) -> Option<AskPacket> {
        if envelope_epoch >= self.epoch {
            return Some(packet);
        }
        self.stale_epoch_drops += 1;
        match packet {
            AskPacket::Data(pkt) => self.engine.pool_mut().recycle_slots(pkt.slots),
            AskPacket::LongKv { entries, .. } => self.engine.pool_mut().recycle_tuples(entries),
            _ => {}
        }
        let notify = AskPacket::Control(ControlMsg::EpochNotify { epoch: self.epoch });
        self.reply(src, notify, ctx);
        None
    }

    /// Routes frames for destination node `dst` via `next_hop` instead of
    /// assuming a direct link.
    pub fn set_route(&mut self, dst: u32, next_hop: NodeId) {
        self.routes.insert(dst, next_hop);
    }

    /// Restricts this switch's reliability state and aggregation to the
    /// given rack-local hosts (§7); see
    /// [`AggregatorEngine::set_local_hosts`].
    pub fn set_local_hosts(&mut self, hosts: impl IntoIterator<Item = u32>) {
        self.engine.set_local_hosts(hosts);
    }

    /// Per-task switch counters.
    pub fn task_stats(&self, task: TaskId) -> Option<SwitchTaskStats> {
        self.engine.task_stats(task)
    }

    /// Direct access to the aggregation engine (benchmarks, inspection).
    pub fn engine(&self) -> &AggregatorEngine {
        &self.engine
    }

    /// Mutable access to the aggregation engine.
    pub fn engine_mut(&mut self) -> &mut AggregatorEngine {
        &mut self.engine
    }

    /// Frames dropped because no link to the destination exists.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Frames dropped because they failed integrity or format checks
    /// (corrupted in transit, or not ASK traffic at all).
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    fn forward_ecn(&mut self, envelope: &Envelope, ecn: bool, ctx: &mut Context<'_>) {
        let layout = self.engine.config().layout;
        let bytes = encode_envelope(envelope, &layout);
        let wire = envelope.wire_bytes(&layout);
        self.forward_raw(envelope.dst, bytes, wire, ecn, ctx);
    }

    /// Relays already-encoded envelope bytes unchanged. Used for every
    /// packet the switch does not rewrite: the payload `Bytes` handle from
    /// the incoming frame is reused directly (an O(1) reference-count
    /// bump), skipping the per-hop re-encode and checksum entirely.
    fn forward_raw(&mut self, dst: u32, bytes: Bytes, wire: usize, ecn: bool, ctx: &mut Context<'_>) {
        let to = self
            .routes
            .get(&dst)
            .copied()
            .unwrap_or_else(|| NodeId::from_index(dst as usize));
        let mut frame = Frame::with_wire_bytes(bytes, wire);
        // Propagate a congestion-experienced mark across hops (IP ECN
        // semantics: once marked, stays marked).
        frame.set_ecn_marked(ecn);
        if ctx.send(to, frame).is_err() {
            self.unroutable += 1;
        }
    }

    fn reply(&mut self, dst: u32, packet: AskPacket, ctx: &mut Context<'_>) {
        let me = ctx.me().index() as u32;
        let envelope = Envelope {
            src: me,
            dst,
            epoch: self.epoch,
            flags: 0,
            packet,
        };
        self.forward_ecn(&envelope, false, ctx);
    }

    /// Emits the response for one data packet's verdict: nothing for stale,
    /// an ACK to the sender for fully aggregated, a forward for residuals —
    /// recycling the consumed slot vector on the forward paths.
    fn emit_data_verdict(&mut self, verdict: DataVerdict, m: DataMeta, ctx: &mut Context<'_>) {
        match verdict {
            DataVerdict::Stale => {}
            DataVerdict::FullyAggregated => {
                // The switch is the consuming endpoint: echo congestion
                // marks back to the sender on the ACK.
                let ack = AskPacket::Ack {
                    channel: m.channel,
                    seq: m.seq,
                    ece: m.ecn,
                };
                self.reply(m.src, ack, ctx);
            }
            DataVerdict::Forward(residual) => {
                let slots = if residual.occupied() == m.occupied_before {
                    // Nothing was aggregated out: the packet is
                    // byte-identical to what arrived, so relay the
                    // original frame payload without re-encoding.
                    self.forward_raw(m.dst, m.payload, m.wire, m.ecn, ctx);
                    residual.slots
                } else {
                    let fwd = Envelope {
                        src: m.src,
                        dst: m.dst,
                        epoch: m.epoch,
                        flags: m.flags,
                        packet: AskPacket::Data(residual),
                    };
                    self.forward_ecn(&fwd, m.ecn, ctx);
                    match fwd.packet {
                        AskPacket::Data(d) => d.slots,
                        _ => unreachable!("constructed as Data just above"),
                    }
                };
                self.engine.pool_mut().recycle_slots(slots);
            }
        }
    }

    /// Runs the accumulated data-packet batch through the engine and emits
    /// each verdict's response in input order.
    fn flush_data_batch(
        &mut self,
        pkts: &mut Vec<DataPacket>,
        meta: &mut Vec<DataMeta>,
        ctx: &mut Context<'_>,
    ) {
        if pkts.is_empty() {
            return;
        }
        let mut verdicts = std::mem::take(&mut self.batch_verdicts);
        verdicts.clear();
        self.engine.process_batch(pkts.drain(..), &mut verdicts);
        for (verdict, m) in verdicts.drain(..).zip(meta.drain(..)) {
            self.emit_data_verdict(verdict, m, ctx);
        }
        self.batch_verdicts = verdicts;
    }

    /// Handles every packet kind other than data (shared between the
    /// one-frame and burst entry points).
    #[allow(clippy::too_many_arguments)] // the decoded frame's full identity
    fn handle_nondata(
        &mut self,
        src: u32,
        dst: u32,
        packet: AskPacket,
        payload: Bytes,
        ecn: bool,
        wire: usize,
        ctx: &mut Context<'_>,
    ) {
        match packet {
            AskPacket::Data(_) => unreachable!("data packets take the batch path"),
            AskPacket::LongKv {
                channel,
                seq,
                task,
                entries,
                ..
            } => {
                // Bypass traffic: keep the receive window dense, drop only
                // provably-acknowledged (stale) packets, forward the rest —
                // the receiver is the deduplicating endpoint.
                match self.engine.observe_bypass(channel, seq) {
                    Observation::Stale => {}
                    Observation::First | Observation::Duplicate => {
                        self.engine.note_longkv_forwarded(task, entries.len() as u64);
                        self.forward_raw(dst, payload, wire, ecn, ctx);
                    }
                }
                // The relay reuses the raw payload bytes; the decoded
                // entries only served the dedup gate and the counters.
                self.engine.pool_mut().recycle_tuples(entries);
            }
            AskPacket::Fin { channel, seq, .. } => {
                match self.engine.observe_bypass(channel, seq) {
                    Observation::Stale => {}
                    Observation::First | Observation::Duplicate => {
                        self.forward_raw(dst, payload, wire, ecn, ctx);
                    }
                }
            }
            AskPacket::Ack { .. } | AskPacket::FetchReply { .. } => {
                self.forward_raw(dst, payload, wire, false, ctx);
            }
            AskPacket::Swap { task } => {
                self.engine.swap(task);
            }
            AskPacket::FetchRequest {
                task,
                scope,
                fetch_seq,
            } => {
                let entries = self.engine.fetch(task, scope, fetch_seq);
                let reply = AskPacket::FetchReply {
                    task,
                    fetch_seq,
                    entries,
                };
                self.reply(src, reply, ctx);
            }
            AskPacket::Control(msg) => match msg {
                ControlMsg::RegionRequest { task, op } => {
                    let reply = match self.engine.register_task_with_op(task, src, op) {
                        Some(region) => ControlMsg::RegionGrant { task, region },
                        None => ControlMsg::RegionDeny { task },
                    };
                    self.reply(src, AskPacket::Control(reply), ctx);
                }
                ControlMsg::RegionRelease { task } => {
                    self.engine.release_task(task);
                }
                // Host-to-host control traffic transits the switch.
                ControlMsg::TaskAnnounce { .. }
                | ControlMsg::RegionGrant { .. }
                | ControlMsg::RegionDeny { .. }
                | ControlMsg::EpochNotify { .. } => {
                    self.forward_raw(dst, payload, wire, false, ctx)
                }
            },
        }
    }

    /// Epoch gate for the view path: same counter and
    /// [`ControlMsg::EpochNotify`] reply as [`AskSwitch::epoch_admit`],
    /// with nothing to recycle because nothing was materialized.
    fn epoch_admit_view(&mut self, src: u32, envelope_epoch: u32, ctx: &mut Context<'_>) -> bool {
        if envelope_epoch >= self.epoch {
            return true;
        }
        self.stale_epoch_drops += 1;
        let notify = AskPacket::Control(ControlMsg::EpochNotify { epoch: self.epoch });
        self.reply(src, notify, ctx);
        false
    }

    /// Emits the response for one view-path verdict. Fully-absorbed frames
    /// cost an ACK and nothing else. Residual forwards either relay the
    /// inbound buffer unchanged (nothing was aggregated out) or rewrite it
    /// with [`DataPacketView::residual_frame`] — byte-identical to the
    /// scalar decode→clear→re-encode, without the decode.
    fn emit_view_verdict(
        &mut self,
        verdict: ViewVerdict,
        view: &DataPacketView,
        m: DataMeta,
        ctx: &mut Context<'_>,
    ) {
        match verdict {
            ViewVerdict::Stale => {}
            ViewVerdict::FullyAggregated => {
                self.pure_absorb += 1;
                let ack = AskPacket::Ack {
                    channel: m.channel,
                    seq: m.seq,
                    ece: m.ecn,
                };
                self.reply(m.src, ack, ctx);
            }
            ViewVerdict::Forward { residual } => {
                if residual == view.bitmap() {
                    self.forward_raw(m.dst, m.payload, m.wire, m.ecn, ctx);
                } else {
                    let bytes = view.residual_frame(residual);
                    let layout = self.engine.config().layout;
                    let mut wire = PACKET_OVERHEAD;
                    let mut bm = residual;
                    while bm != 0 {
                        let i = bm.trailing_zeros() as usize;
                        wire += layout.slot_bytes(i);
                        bm &= bm - 1;
                    }
                    self.forward_raw(m.dst, bytes, wire, m.ecn, ctx);
                }
            }
        }
    }

    /// Runs the accumulated view batch through
    /// [`AggregatorEngine::process_batch_views`] and emits each verdict's
    /// response in input order.
    fn flush_view_batch(
        &mut self,
        views: &mut Vec<DataPacketView>,
        meta: &mut Vec<DataMeta>,
        ctx: &mut Context<'_>,
    ) {
        if views.is_empty() {
            return;
        }
        let mut verdicts = std::mem::take(&mut self.batch_view_verdicts);
        verdicts.clear();
        self.engine.process_batch_views(views, &mut verdicts);
        for ((verdict, view), m) in verdicts.drain(..).zip(views.drain(..)).zip(meta.drain(..)) {
            self.emit_view_verdict(verdict, &view, m, ctx);
        }
        self.batch_view_verdicts = verdicts;
    }

    /// Fallback for data frames the view path cannot aggregate in place
    /// (no-aggregate pass-through, forged/mismatched slot layouts):
    /// materialize through the pool — reusing the view's one-shot CRC
    /// validation instead of re-checksumming — and run the scalar path for
    /// this one packet.
    fn data_fallback_view(
        &mut self,
        view: &FrameView,
        payload: Bytes,
        ecn: bool,
        wire: usize,
        ctx: &mut Context<'_>,
    ) {
        let envelope = view.materialize_pooled(self.engine.pool_mut());
        let Envelope {
            src,
            dst,
            epoch,
            flags,
            packet,
        } = envelope;
        let AskPacket::Data(pkt) = packet else {
            unreachable!("fallback only invoked for data views");
        };
        let m = DataMeta {
            src,
            dst,
            channel: pkt.channel,
            seq: pkt.seq,
            ecn,
            wire,
            occupied_before: pkt.occupied(),
            payload,
            epoch,
            flags,
        };
        let verdict = if flags & FLAG_NO_AGGREGATE != 0 {
            self.noagg_relayed += 1;
            self.engine.process_data_no_aggregate(pkt)
        } else {
            self.engine.process_data(pkt)
        };
        self.emit_data_verdict(verdict, m, ctx);
    }

    /// View-path counterpart of [`AskSwitch::handle_nondata`]: identical
    /// verdicts, counters, and replies with no materialization — relays
    /// reuse the raw payload bytes and the long-kv counter reads the
    /// validated entry count straight from the view.
    #[allow(clippy::too_many_arguments)] // the parsed frame's full identity
    fn handle_nondata_view(
        &mut self,
        src: u32,
        dst: u32,
        packet: PacketView,
        payload: Bytes,
        ecn: bool,
        wire: usize,
        ctx: &mut Context<'_>,
    ) {
        match packet {
            PacketView::Data(_) => unreachable!("data packets take the batch path"),
            PacketView::LongKv {
                channel,
                seq,
                task,
                entry_count,
            } => {
                match self.engine.observe_bypass(channel, seq) {
                    Observation::Stale => {}
                    Observation::First | Observation::Duplicate => {
                        self.engine.note_longkv_forwarded(task, entry_count as u64);
                        self.forward_raw(dst, payload, wire, ecn, ctx);
                    }
                }
            }
            PacketView::Fin { channel, seq, .. } => {
                match self.engine.observe_bypass(channel, seq) {
                    Observation::Stale => {}
                    Observation::First | Observation::Duplicate => {
                        self.forward_raw(dst, payload, wire, ecn, ctx);
                    }
                }
            }
            PacketView::Ack { .. } | PacketView::FetchReply { .. } => {
                self.forward_raw(dst, payload, wire, false, ctx);
            }
            PacketView::Swap { task } => {
                self.engine.swap(task);
            }
            PacketView::FetchRequest {
                task,
                scope,
                fetch_seq,
            } => {
                let entries = self.engine.fetch(task, scope, fetch_seq);
                let reply = AskPacket::FetchReply {
                    task,
                    fetch_seq,
                    entries,
                };
                self.reply(src, reply, ctx);
            }
            PacketView::Control(msg) => match msg {
                ControlMsg::RegionRequest { task, op } => {
                    let reply = match self.engine.register_task_with_op(task, src, op) {
                        Some(region) => ControlMsg::RegionGrant { task, region },
                        None => ControlMsg::RegionDeny { task },
                    };
                    self.reply(src, AskPacket::Control(reply), ctx);
                }
                ControlMsg::RegionRelease { task } => {
                    self.engine.release_task(task);
                }
                ControlMsg::TaskAnnounce { .. }
                | ControlMsg::RegionGrant { .. }
                | ControlMsg::RegionDeny { .. }
                | ControlMsg::EpochNotify { .. } => {
                    self.forward_raw(dst, payload, wire, false, ctx)
                }
            },
        }
    }

    /// One-frame ingest over the zero-materialization view path: parse the
    /// frame once (one CRC pass, no slot vectors), aggregate straight out
    /// of the wire bytes, and answer from the same buffer.
    fn on_frame_view(&mut self, frame: Frame, ctx: &mut Context<'_>) {
        let ecn = frame.ecn_marked();
        let wire = frame.wire_bytes();
        let payload = frame.into_payload();
        let view = match FrameView::parse(payload.clone()) {
            Ok(v) => v,
            Err(_) => {
                self.undecodable += 1;
                return;
            }
        };
        if !self.epoch_admit_view(view.src(), view.epoch(), ctx) {
            return;
        }
        let (src, dst, epoch, flags) = (view.src(), view.dst(), view.epoch(), view.flags());
        let layout = self.engine.config().layout;
        match view.packet() {
            PacketView::Data(d)
                if flags & FLAG_NO_AGGREGATE == 0 && d.matches_layout(&layout) =>
            {
                let m = DataMeta {
                    src,
                    dst,
                    channel: d.channel(),
                    seq: d.seq(),
                    ecn,
                    wire,
                    occupied_before: d.occupied(),
                    payload,
                    epoch,
                    flags,
                };
                let verdict = self.engine.process_data_view(d);
                self.emit_view_verdict(verdict, d, m, ctx);
            }
            PacketView::Data(_) => self.data_fallback_view(&view, payload, ecn, wire, ctx),
            _ => {
                let packet = view.into_packet();
                self.handle_nondata_view(src, dst, packet, payload, ecn, wire, ctx);
            }
        }
    }

    /// Burst ingest over the view path: mirrors
    /// [`AskSwitch::on_frames_scalar`]'s grouping and flush boundaries, so
    /// every reply and forward is emitted in the identical order.
    fn on_frames_view(&mut self, burst: &mut Vec<(NodeId, Frame)>, ctx: &mut Context<'_>) {
        let mut views = std::mem::take(&mut self.batch_views);
        let mut meta = std::mem::take(&mut self.batch_meta);
        debug_assert!(views.is_empty() && meta.is_empty());
        for (_, frame) in burst.drain(..) {
            let ecn = frame.ecn_marked();
            let wire = frame.wire_bytes();
            let payload = frame.into_payload();
            let view = match FrameView::parse(payload.clone()) {
                Ok(v) => v,
                Err(_) => {
                    self.undecodable += 1;
                    continue;
                }
            };
            if !self.epoch_admit_view(view.src(), view.epoch(), ctx) {
                continue;
            }
            let (src, dst, epoch, flags) = (view.src(), view.dst(), view.epoch(), view.flags());
            let layout = self.engine.config().layout;
            match view.packet() {
                PacketView::Data(d)
                    if flags & FLAG_NO_AGGREGATE == 0 && d.matches_layout(&layout) =>
                {
                    meta.push(DataMeta {
                        src,
                        dst,
                        channel: d.channel(),
                        seq: d.seq(),
                        ecn,
                        wire,
                        occupied_before: d.occupied(),
                        payload,
                        epoch,
                        flags,
                    });
                    views.push(d.clone());
                }
                PacketView::Data(_) => {
                    // Degraded or layout-mismatched frame: flush the pending
                    // batch to preserve ordering, then materialize and run
                    // the scalar path for this one packet.
                    self.flush_view_batch(&mut views, &mut meta, ctx);
                    self.data_fallback_view(&view, payload, ecn, wire, ctx);
                }
                _ => {
                    self.flush_view_batch(&mut views, &mut meta, ctx);
                    let packet = view.into_packet();
                    self.handle_nondata_view(src, dst, packet, payload, ecn, wire, ctx);
                }
            }
        }
        self.flush_view_batch(&mut views, &mut meta, ctx);
        self.batch_views = views;
        self.batch_meta = meta;
    }

    /// One-frame ingest over the legacy materializing datapath.
    fn on_frame_scalar(&mut self, frame: Frame, ctx: &mut Context<'_>) {
        let ecn = frame.ecn_marked();
        let wire = frame.wire_bytes();
        // Keep the raw payload around: packets the switch relays unmodified
        // are re-sent from these very bytes instead of being re-encoded.
        let payload = frame.into_payload();
        let envelope = match decode_envelope_pooled(payload.clone(), self.engine.pool_mut()) {
            Ok(e) => e,
            Err(_) => {
                self.undecodable += 1;
                return;
            }
        };
        let Envelope {
            src,
            dst,
            epoch,
            flags,
            packet,
        } = envelope;
        let Some(packet) = self.epoch_admit(src, epoch, packet, ctx) else {
            return;
        };
        match packet {
            AskPacket::Data(pkt) => {
                let m = DataMeta {
                    src,
                    dst,
                    channel: pkt.channel,
                    seq: pkt.seq,
                    ecn,
                    wire,
                    occupied_before: pkt.occupied(),
                    payload,
                    epoch,
                    flags,
                };
                let verdict = if flags & FLAG_NO_AGGREGATE != 0 {
                    // Degraded pass-through: the dedup gate still runs so
                    // absorbed-but-unacked packets can't double-count, but
                    // nothing is aggregated — the receiver does all the work.
                    self.noagg_relayed += 1;
                    self.engine.process_data_no_aggregate(pkt)
                } else {
                    self.engine.process_data(pkt)
                };
                self.emit_data_verdict(verdict, m, ctx);
            }
            other => self.handle_nondata(src, dst, other, payload, ecn, wire, ctx),
        }
    }

    /// Burst ingest over the legacy materializing datapath: consecutive
    /// data packets in a delivery burst are run through
    /// [`AggregatorEngine::process_batch`] as one group (keeping the
    /// dispatch cache hot across the run), with every reply and forward
    /// emitted in input order — byte-identical traffic to one-at-a-time
    /// processing. Non-data packets flush the pending group first, so
    /// cross-kind ordering is preserved exactly.
    fn on_frames_scalar(&mut self, burst: &mut Vec<(NodeId, Frame)>, ctx: &mut Context<'_>) {
        let mut pkts = std::mem::take(&mut self.batch_pkts);
        let mut meta = std::mem::take(&mut self.batch_meta);
        debug_assert!(pkts.is_empty() && meta.is_empty());
        for (_, frame) in burst.drain(..) {
            let ecn = frame.ecn_marked();
            let wire = frame.wire_bytes();
            let payload = frame.into_payload();
            let envelope = match decode_envelope_pooled(payload.clone(), self.engine.pool_mut()) {
                Ok(e) => e,
                Err(_) => {
                    self.undecodable += 1;
                    continue;
                }
            };
            let Envelope {
                src,
                dst,
                epoch,
                flags,
                packet,
            } = envelope;
            let Some(packet) = self.epoch_admit(src, epoch, packet, ctx) else {
                continue;
            };
            match packet {
                AskPacket::Data(pkt) if flags & FLAG_NO_AGGREGATE == 0 => {
                    meta.push(DataMeta {
                        src,
                        dst,
                        channel: pkt.channel,
                        seq: pkt.seq,
                        ecn,
                        wire,
                        occupied_before: pkt.occupied(),
                        payload,
                        epoch,
                        flags,
                    });
                    pkts.push(pkt);
                }
                AskPacket::Data(pkt) => {
                    // Degraded no-aggregate packet: flush the pending batch
                    // to preserve ordering, then run it through the dedup
                    // gate individually without aggregation.
                    self.flush_data_batch(&mut pkts, &mut meta, ctx);
                    let m = DataMeta {
                        src,
                        dst,
                        channel: pkt.channel,
                        seq: pkt.seq,
                        ecn,
                        wire,
                        occupied_before: pkt.occupied(),
                        payload,
                        epoch,
                        flags,
                    };
                    self.noagg_relayed += 1;
                    let verdict = self.engine.process_data_no_aggregate(pkt);
                    self.emit_data_verdict(verdict, m, ctx);
                }
                other => {
                    self.flush_data_batch(&mut pkts, &mut meta, ctx);
                    self.handle_nondata(src, dst, other, payload, ecn, wire, ctx);
                }
            }
        }
        self.flush_data_batch(&mut pkts, &mut meta, ctx);
        self.batch_pkts = pkts;
        self.batch_meta = meta;
    }
}

impl Node for AskSwitch {
    /// Every frame runs the zero-materialization view datapath unless the
    /// scalar escape hatch ([`AskConfig::switch_scalar`] or
    /// `ASK_SWITCH_SCALAR=1`) pins the legacy materializing path. The two
    /// paths emit byte-identical traffic.
    fn on_frame(&mut self, _from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
        if self.scalar {
            self.on_frame_scalar(frame, ctx);
        } else {
            self.on_frame_view(frame, ctx);
        }
    }

    /// A restart after a scheduled node-down window is a crash/recovery
    /// cycle: the data plane comes back empty in a fresh epoch.
    fn on_restart(&mut self, _ctx: &mut Context<'_>) {
        self.crash();
    }

    /// Burst ingest, batched through the engine on whichever datapath is
    /// active; replies and forwards are emitted in input order either way.
    fn on_frames(&mut self, burst: &mut Vec<(NodeId, Frame)>, ctx: &mut Context<'_>) {
        if self.scalar {
            self.on_frames_scalar(burst, ctx);
        } else {
            self.on_frames_view(burst, ctx);
        }
    }
}
