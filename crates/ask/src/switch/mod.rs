//! The ASK switch: aggregation engine plus the network-facing node.

pub mod aggregator;

pub use aggregator::{AggregatorEngine, DataVerdict, Observation};

use crate::config::AskConfig;
use crate::stats::SwitchTaskStats;
use ask_simnet::frame::{Frame, NodeId};
use ask_simnet::network::{Context, Node};
use ask_wire::codec::{decode_envelope, encode_envelope, Envelope};
use ask_wire::packet::{AskPacket, ControlMsg, TaskId};
use bytes::Bytes;

/// The top-of-rack ASK switch as a simulated network node.
///
/// The switch is both the data plane (every frame between hosts traverses
/// it; data packets run through the [`AggregatorEngine`] pipeline) and the
/// controller (it grants and releases aggregator-array regions in response
/// to control messages, §3.1 steps ③ and ⑫).
#[derive(Debug)]
pub struct AskSwitch {
    engine: AggregatorEngine,
    /// Next-hop overrides: destinations not listed are assumed directly
    /// attached. Lets ToR switches route cross-rack traffic via a spine
    /// (§7 multi-rack deployment).
    routes: std::collections::HashMap<u32, NodeId>,
    /// Frames that could not be routed (no link to destination).
    unroutable: u64,
    /// Frames that failed to decode.
    undecodable: u64,
}

impl AskSwitch {
    /// Creates a switch with the given configuration.
    pub fn new(config: AskConfig) -> Self {
        AskSwitch {
            engine: AggregatorEngine::new(config),
            routes: std::collections::HashMap::new(),
            unroutable: 0,
            undecodable: 0,
        }
    }

    /// Routes frames for destination node `dst` via `next_hop` instead of
    /// assuming a direct link.
    pub fn set_route(&mut self, dst: u32, next_hop: NodeId) {
        self.routes.insert(dst, next_hop);
    }

    /// Restricts this switch's reliability state and aggregation to the
    /// given rack-local hosts (§7); see
    /// [`AggregatorEngine::set_local_hosts`].
    pub fn set_local_hosts(&mut self, hosts: impl IntoIterator<Item = u32>) {
        self.engine.set_local_hosts(hosts);
    }

    /// Per-task switch counters.
    pub fn task_stats(&self, task: TaskId) -> Option<SwitchTaskStats> {
        self.engine.task_stats(task)
    }

    /// Direct access to the aggregation engine (benchmarks, inspection).
    pub fn engine(&self) -> &AggregatorEngine {
        &self.engine
    }

    /// Mutable access to the aggregation engine.
    pub fn engine_mut(&mut self) -> &mut AggregatorEngine {
        &mut self.engine
    }

    /// Frames dropped because no link to the destination exists.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Frames dropped because they failed integrity or format checks
    /// (corrupted in transit, or not ASK traffic at all).
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    fn forward_ecn(&mut self, envelope: &Envelope, ecn: bool, ctx: &mut Context<'_>) {
        let layout = self.engine.config().layout;
        let bytes = encode_envelope(envelope, &layout);
        let wire = envelope.wire_bytes(&layout);
        self.forward_raw(envelope.dst, bytes, wire, ecn, ctx);
    }

    /// Relays already-encoded envelope bytes unchanged. Used for every
    /// packet the switch does not rewrite: the payload `Bytes` handle from
    /// the incoming frame is reused directly (an O(1) reference-count
    /// bump), skipping the per-hop re-encode and checksum entirely.
    fn forward_raw(&mut self, dst: u32, bytes: Bytes, wire: usize, ecn: bool, ctx: &mut Context<'_>) {
        let to = self
            .routes
            .get(&dst)
            .copied()
            .unwrap_or_else(|| NodeId::from_index(dst as usize));
        let mut frame = Frame::with_wire_bytes(bytes, wire);
        // Propagate a congestion-experienced mark across hops (IP ECN
        // semantics: once marked, stays marked).
        frame.set_ecn_marked(ecn);
        if ctx.send(to, frame).is_err() {
            self.unroutable += 1;
        }
    }

    fn reply(&mut self, dst: u32, packet: AskPacket, ctx: &mut Context<'_>) {
        let me = ctx.me().index() as u32;
        self.forward_ecn(&Envelope::new(me, dst, packet), false, ctx);
    }
}

impl Node for AskSwitch {
    fn on_frame(&mut self, _from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
        let ecn = frame.ecn_marked();
        let wire = frame.wire_bytes();
        // Keep the raw payload around: packets the switch relays unmodified
        // are re-sent from these very bytes instead of being re-encoded.
        let payload = frame.into_payload();
        let envelope = match decode_envelope(payload.clone()) {
            Ok(e) => e,
            Err(_) => {
                self.undecodable += 1;
                return;
            }
        };
        let Envelope { src, dst, packet } = envelope;
        match packet {
            AskPacket::Data(pkt) => {
                let (channel, seq) = (pkt.channel, pkt.seq);
                let occupied_before = pkt.occupied();
                match self.engine.process_data(pkt) {
                    DataVerdict::Stale => {}
                    DataVerdict::FullyAggregated => {
                        // The switch is the consuming endpoint: echo congestion
                        // marks back to the sender on the ACK.
                        let ack = AskPacket::Ack { channel, seq, ece: ecn };
                        self.reply(src, ack, ctx);
                    }
                    DataVerdict::Forward(residual) => {
                        if residual.occupied() == occupied_before {
                            // Nothing was aggregated out: the packet is
                            // byte-identical to what arrived, so relay the
                            // original frame payload without re-encoding.
                            self.forward_raw(dst, payload, wire, ecn, ctx);
                        } else {
                            let fwd = Envelope::new(src, dst, AskPacket::Data(residual));
                            self.forward_ecn(&fwd, ecn, ctx);
                        }
                    }
                }
            }
            AskPacket::LongKv { channel, seq, ref task, ref entries, .. } => {
                // Bypass traffic: keep the receive window dense, drop only
                // provably-acknowledged (stale) packets, forward the rest —
                // the receiver is the deduplicating endpoint.
                match self.engine.observe_bypass(channel, seq) {
                    Observation::Stale => {}
                    Observation::First | Observation::Duplicate => {
                        self.engine
                            .note_longkv_forwarded(*task, entries.len() as u64);
                        self.forward_raw(dst, payload, wire, ecn, ctx);
                    }
                }
            }
            AskPacket::Fin { channel, seq, .. } => {
                match self.engine.observe_bypass(channel, seq) {
                    Observation::Stale => {}
                    Observation::First | Observation::Duplicate => {
                        self.forward_raw(dst, payload, wire, ecn, ctx);
                    }
                }
            }
            AskPacket::Ack { .. } | AskPacket::FetchReply { .. } => {
                self.forward_raw(dst, payload, wire, false, ctx);
            }
            AskPacket::Swap { task } => {
                self.engine.swap(task);
            }
            AskPacket::FetchRequest {
                task,
                scope,
                fetch_seq,
            } => {
                let entries = self.engine.fetch(task, scope, fetch_seq);
                let reply = AskPacket::FetchReply {
                    task,
                    fetch_seq,
                    entries,
                };
                self.reply(src, reply, ctx);
            }
            AskPacket::Control(msg) => match msg {
                ControlMsg::RegionRequest { task, op } => {
                    let reply = match self.engine.register_task_with_op(task, src, op) {
                        Some(region) => ControlMsg::RegionGrant { task, region },
                        None => ControlMsg::RegionDeny { task },
                    };
                    self.reply(src, AskPacket::Control(reply), ctx);
                }
                ControlMsg::RegionRelease { task } => {
                    self.engine.release_task(task);
                }
                // Host-to-host control traffic transits the switch.
                ControlMsg::TaskAnnounce { .. }
                | ControlMsg::RegionGrant { .. }
                | ControlMsg::RegionDeny { .. } => {
                    self.forward_raw(dst, payload, wire, false, ctx)
                }
            },
        }
    }
}
