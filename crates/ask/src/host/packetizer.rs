//! Sender-assisted addressing and packet construction (§3.2.2, §3.2.3).
//!
//! The packetizer classifies each key as short / medium / long, assigns
//! short keys to one of the short slots and medium keys to one of the
//! medium groups by an *ordered key-space partition* (`hash(key) % N`), and
//! packs packets slot-by-slot so the same key always rides the same slot —
//! and therefore always meets the same aggregator array on the switch,
//! avoiding the single-key-multiple-spot problem.
//!
//! Long keys bypass the switch in dedicated batch packets.

use ask_wire::key::KeyClass;
use ask_wire::packet::{KvTuple, PacketLayout};
use ask_wire::pool::PacketPool;
use std::collections::VecDeque;

/// Output of packetizing one task's key-value stream.
#[derive(Debug, Clone, Default)]
pub struct PacketizedStream {
    /// Slot vectors for data packets, in send order.
    pub data_payloads: Vec<Vec<Option<KvTuple>>>,
    /// Long-key batches for bypass packets, in send order.
    pub long_batches: Vec<Vec<KvTuple>>,
}

impl PacketizedStream {
    /// Total packets (data + bypass).
    pub fn packet_count(&self) -> usize {
        self.data_payloads.len() + self.long_batches.len()
    }

    /// Total tuples across all packets.
    pub fn tuple_count(&self) -> usize {
        let in_data: usize = self
            .data_payloads
            .iter()
            .map(|p| p.iter().filter(|s| s.is_some()).count())
            .sum();
        let in_long: usize = self.long_batches.iter().map(|b| b.len()).sum();
        in_data + in_long
    }

    /// Mean occupied slots per data packet (Figure 8(b)'s metric).
    pub fn mean_occupancy(&self) -> f64 {
        if self.data_payloads.is_empty() {
            return 0.0;
        }
        let occupied: usize = self
            .data_payloads
            .iter()
            .map(|p| p.iter().filter(|s| s.is_some()).count())
            .sum();
        occupied as f64 / self.data_payloads.len() as f64
    }

    /// Per-packet occupied-slot counts (for occupancy CDFs).
    pub fn occupancies(&self) -> Vec<usize> {
        self.data_payloads
            .iter()
            .map(|p| p.iter().filter(|s| s.is_some()).count())
            .collect()
    }
}

/// Builds packets from key-value streams under a fixed [`PacketLayout`].
#[derive(Debug, Clone)]
pub struct Packetizer {
    layout: PacketLayout,
    long_kv_batch: usize,
}

impl Packetizer {
    /// Creates a packetizer.
    ///
    /// # Panics
    ///
    /// Panics if `long_kv_batch == 0`.
    pub fn new(layout: PacketLayout, long_kv_batch: usize) -> Self {
        assert!(long_kv_batch > 0, "long-kv batch must be positive");
        Packetizer {
            layout,
            long_kv_batch,
        }
    }

    /// The layout packets are built for.
    pub fn layout(&self) -> &PacketLayout {
        &self.layout
    }

    /// The slot a tuple's key maps to, or `None` if the key must bypass the
    /// switch (long keys, or no slot of the right class exists).
    pub fn slot_for(&self, tuple: &KvTuple) -> Option<usize> {
        let l = &self.layout;
        match tuple.key.class(l.medium_segments()) {
            KeyClass::Short if l.short_slots() > 0 => {
                Some((tuple.key.hash64() % l.short_slots() as u64) as usize)
            }
            KeyClass::Medium if l.medium_groups() > 0 => {
                Some(l.short_slots() + (tuple.key.hash64() % l.medium_groups() as u64) as usize)
            }
            _ => None,
        }
    }

    /// Packs a stream of tuples into packets.
    ///
    /// Tuples within each slot keep their stream order; a packet takes the
    /// next tuple from every non-empty slot queue, so skew shows up as blank
    /// slots rather than reordering (§5.3, Figure 8(b)).
    pub fn packetize<I>(&self, tuples: I) -> PacketizedStream
    where
        I: IntoIterator<Item = KvTuple>,
    {
        self.packetize_inner(tuples, None)
    }

    /// [`Packetizer::packetize`] drawing payload vectors from `pool` instead
    /// of allocating, so a steady-state sender recycles the same backing
    /// stores across packetize → encode → ACK cycles.
    pub fn packetize_pooled<I>(&self, tuples: I, pool: &mut PacketPool) -> PacketizedStream
    where
        I: IntoIterator<Item = KvTuple>,
    {
        self.packetize_inner(tuples, Some(pool))
    }

    /// Classifies a stream into per-slot queues but defers packet
    /// construction: each payload is drawn from the caller's [`PacketPool`]
    /// only when [`PendingStream::next_data_payload`] /
    /// [`PendingStream::next_long_batch`] is called. The packets produced are
    /// identical — contents and order — to [`Packetizer::packetize`]; only
    /// the allocation timing differs. This is what lets a sender keep at most
    /// a window's worth of payload vectors live (and therefore recyclable)
    /// instead of materializing the whole stream up front against a cold
    /// pool.
    pub fn begin_stream<I>(&self, tuples: I) -> PendingStream
    where
        I: IntoIterator<Item = KvTuple>,
    {
        let slots = self.layout.slot_count();
        let mut queues: Vec<VecDeque<KvTuple>> = vec![VecDeque::new(); slots];
        let mut long_queue: VecDeque<KvTuple> = VecDeque::new();
        for tuple in tuples {
            match self.slot_for(&tuple) {
                Some(s) => queues[s].push_back(tuple),
                None => long_queue.push_back(tuple),
            }
        }
        PendingStream {
            queues,
            long_queue,
            long_kv_batch: self.long_kv_batch,
        }
    }

    fn packetize_inner<I>(&self, tuples: I, mut pool: Option<&mut PacketPool>) -> PacketizedStream
    where
        I: IntoIterator<Item = KvTuple>,
    {
        let slots = self.layout.slot_count();
        let mut queues: Vec<VecDeque<KvTuple>> = vec![VecDeque::new(); slots];
        let mut long_queue: Vec<KvTuple> = Vec::new();
        for tuple in tuples {
            match self.slot_for(&tuple) {
                Some(s) => queues[s].push_back(tuple),
                None => long_queue.push(tuple),
            }
        }

        let mut out = PacketizedStream::default();
        while queues.iter().any(|q| !q.is_empty()) {
            let mut payload = match pool.as_deref_mut() {
                Some(p) => p.take_slots(slots),
                None => Vec::with_capacity(slots),
            };
            payload.extend(queues.iter_mut().map(|q| q.pop_front()));
            out.data_payloads.push(payload);
        }
        for chunk in long_queue.chunks(self.long_kv_batch) {
            let mut batch = match pool.as_deref_mut() {
                Some(p) => p.take_tuples(chunk.len()),
                None => Vec::with_capacity(chunk.len()),
            };
            batch.extend_from_slice(chunk);
            out.long_batches.push(batch);
        }
        out
    }
}

/// A classified stream whose packets are built lazily, one at a time, from a
/// caller-supplied [`PacketPool`]. Created by [`Packetizer::begin_stream`].
#[derive(Debug, Clone)]
pub struct PendingStream {
    queues: Vec<VecDeque<KvTuple>>,
    long_queue: VecDeque<KvTuple>,
    long_kv_batch: usize,
}

impl PendingStream {
    /// Builds the next data payload from the slot queues, or `None` when the
    /// data portion of the stream is exhausted.
    pub fn next_data_payload(&mut self, pool: &mut PacketPool) -> Option<Vec<Option<KvTuple>>> {
        if self.queues.iter().all(|q| q.is_empty()) {
            return None;
        }
        let mut payload = pool.take_slots(self.queues.len());
        payload.extend(self.queues.iter_mut().map(|q| q.pop_front()));
        Some(payload)
    }

    /// Builds the next long-key bypass batch, or `None` when none remain.
    pub fn next_long_batch(&mut self, pool: &mut PacketPool) -> Option<Vec<KvTuple>> {
        if self.long_queue.is_empty() {
            return None;
        }
        let n = self.long_queue.len().min(self.long_kv_batch);
        let mut batch = pool.take_tuples(n);
        batch.extend(self.long_queue.drain(..n));
        Some(batch)
    }

    /// Data packets this stream will still emit (the longest slot queue
    /// decides, since every packet takes one tuple from each non-empty
    /// queue). A size hint for pre-warming the sender's [`PacketPool`].
    pub fn data_packet_count(&self) -> usize {
        self.queues.iter().map(VecDeque::len).max().unwrap_or(0)
    }

    /// Long-key bypass batches this stream will still emit.
    pub fn long_batch_count(&self) -> usize {
        self.long_queue.len().div_ceil(self.long_kv_batch)
    }

    /// True when both the data and long-key portions are drained.
    pub fn is_empty(&self) -> bool {
        self.long_queue.is_empty() && self.queues.iter().all(|q| q.is_empty())
    }

    /// Tuples not yet emitted as packets.
    pub fn remaining_tuples(&self) -> usize {
        self.long_queue.len() + self.queues.iter().map(|q| q.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ask_wire::key::Key;

    fn kv(s: &str, v: u32) -> KvTuple {
        KvTuple::new(Key::from_str(s).unwrap(), v)
    }

    fn packetizer() -> Packetizer {
        Packetizer::new(PacketLayout::custom(4, 2, 2), 3)
    }

    #[test]
    fn same_key_always_same_slot() {
        let p = packetizer();
        let s1 = p.slot_for(&kv("cat", 1)).unwrap();
        let s2 = p.slot_for(&kv("cat", 99)).unwrap();
        assert_eq!(s1, s2);
        assert!(s1 < 4, "short keys go to short slots");
        let m = p.slot_for(&kv("maples", 1)).unwrap();
        assert!(m >= 4, "medium keys go to medium slots");
    }

    #[test]
    fn long_keys_bypass() {
        let p = packetizer();
        assert_eq!(p.slot_for(&kv("waytoolongkey", 1)), None);
        let out = p.packetize(vec![kv("waytoolongkey", 1); 7]);
        assert!(out.data_payloads.is_empty());
        assert_eq!(out.long_batches.len(), 3, "7 tuples in batches of 3");
        assert_eq!(out.tuple_count(), 7);
    }

    #[test]
    fn uniform_keys_fill_packets_densely() {
        let p = Packetizer::new(PacketLayout::short_only(8), 8);
        // Many distinct short keys spread uniformly over slots.
        let tuples: Vec<KvTuple> = (0..8000)
            .map(|i| KvTuple::new(Key::from_u64(i), 1))
            .collect();
        let out = p.packetize(tuples);
        assert!(
            out.mean_occupancy() > 7.0,
            "uniform stream should nearly fill the 8 slots, got {}",
            out.mean_occupancy()
        );
        assert_eq!(out.tuple_count(), 8000);
    }

    #[test]
    fn single_hot_key_leaves_blanks() {
        let p = Packetizer::new(PacketLayout::short_only(8), 8);
        let out = p.packetize(vec![kv("hot", 1); 100]);
        // All 100 tuples share one slot: 100 packets, each with 1 tuple.
        assert_eq!(out.data_payloads.len(), 100);
        assert!((out.mean_occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stream_order_preserved_within_slot() {
        let p = packetizer();
        let out = p.packetize(vec![kv("cat", 1), kv("cat", 2), kv("cat", 3)]);
        let slot = p.slot_for(&kv("cat", 0)).unwrap();
        let values: Vec<u32> = out
            .data_payloads
            .iter()
            .filter_map(|pl| pl[slot].as_ref().map(|t| t.value))
            .collect();
        assert_eq!(values, vec![1, 2, 3]);
    }

    #[test]
    fn short_keys_bypass_when_no_short_slots() {
        let p = Packetizer::new(PacketLayout::custom(0, 4, 2), 8);
        assert_eq!(p.slot_for(&kv("cat", 1)), None, "no short slots → bypass");
        assert!(p.slot_for(&kv("maples", 1)).is_some());
    }

    #[test]
    fn packet_count_sums() {
        let p = packetizer();
        let out = p.packetize(vec![kv("cat", 1), kv("waytoolongkey", 2)]);
        assert_eq!(out.packet_count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        let _ = Packetizer::new(PacketLayout::paper_default(), 0);
    }

    #[test]
    fn pooled_packetize_matches_plain_and_reuses_memory() {
        let p = packetizer();
        let tuples = || {
            vec![
                kv("cat", 1),
                kv("cat", 2),
                kv("dog", 3),
                kv("maples", 4),
                kv("waytoolongkey", 5),
            ]
        };
        let plain = p.packetize(tuples());
        let mut pool = PacketPool::new();
        let pooled = p.packetize_pooled(tuples(), &mut pool);
        assert_eq!(plain.data_payloads, pooled.data_payloads);
        assert_eq!(plain.long_batches, pooled.long_batches);

        // Recycle and repacketize: every payload now comes from the pool.
        for v in pooled.data_payloads {
            pool.recycle_slots(v);
        }
        for v in pooled.long_batches {
            pool.recycle_tuples(v);
        }
        let before_hits = pool.hits();
        let again = p.packetize_pooled(tuples(), &mut pool);
        assert_eq!(plain.data_payloads, again.data_payloads);
        assert!(pool.hits() > before_hits, "second round should hit the pool");
    }

    #[test]
    fn lazy_stream_matches_eager_packetize() {
        let p = packetizer();
        let tuples: Vec<KvTuple> = (0..40)
            .map(|i| KvTuple::new(Key::from_u64(i % 11), i as u32))
            .chain((0..7).map(|i| kv("waytoolongkey", i)))
            .collect();
        let eager = p.packetize(tuples.clone());
        let mut pool = PacketPool::new();
        let mut pending = p.begin_stream(tuples);
        assert_eq!(pending.remaining_tuples(), 47);
        let mut data = Vec::new();
        while let Some(payload) = pending.next_data_payload(&mut pool) {
            data.push(payload);
        }
        let mut long = Vec::new();
        while let Some(batch) = pending.next_long_batch(&mut pool) {
            long.push(batch);
        }
        assert!(pending.is_empty());
        assert_eq!(pending.remaining_tuples(), 0);
        assert_eq!(eager.data_payloads, data);
        assert_eq!(eager.long_batches, long);
    }

    #[test]
    fn lazy_stream_recycles_between_packets() {
        let p = Packetizer::new(PacketLayout::short_only(8), 8);
        let tuples: Vec<KvTuple> = vec![kv("hot", 1); 50];
        let mut pool = PacketPool::new();
        let mut pending = p.begin_stream(tuples);
        let mut built = 0u64;
        while let Some(payload) = pending.next_data_payload(&mut pool) {
            built += 1;
            pool.recycle_slots(payload);
        }
        assert_eq!(built, 50);
        // First take allocates; every later take reuses the recycled vector.
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 49);
    }
}
