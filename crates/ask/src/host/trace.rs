//! Protocol event tracing.
//!
//! When enabled ([`crate::config::AskConfig::trace_capacity`] > 0), each
//! daemon records its protocol-level actions into a bounded ring buffer —
//! the moral equivalent of the counters-plus-logging a production daemon
//! would expose. Tests use traces to assert *sequencing* properties the
//! aggregate counters cannot express (an ACK is always preceded by its
//! send; completion follows the region reply; retransmissions follow
//! timeouts).

use ask_simnet::time::SimTime;
use ask_wire::packet::{ChannelId, SeqNo, TaskId};
use std::collections::VecDeque;

/// One recorded protocol action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// First transmission of a sequenced packet.
    PacketSent {
        /// Sending channel.
        channel: ChannelId,
        /// Assigned sequence number.
        seq: SeqNo,
        /// The owning task.
        task: TaskId,
    },
    /// Timeout-driven retransmission.
    Retransmitted {
        /// Sending channel.
        channel: ChannelId,
        /// Retransmitted sequence number.
        seq: SeqNo,
    },
    /// An ACK retired an in-flight packet.
    AckReceived {
        /// Acknowledged channel.
        channel: ChannelId,
        /// Acknowledged sequence number.
        seq: SeqNo,
    },
    /// A data/long-kv/FIN packet was accepted by the receiver (first copy).
    Received {
        /// Originating channel.
        channel: ChannelId,
        /// Sequence number.
        seq: SeqNo,
    },
    /// A duplicate arrival was discarded by the receiver window.
    DuplicateDropped {
        /// Originating channel.
        channel: ChannelId,
        /// Sequence number.
        seq: SeqNo,
    },
    /// The controller granted (or denied) switch memory.
    RegionResolved {
        /// The task.
        task: TaskId,
        /// True for a grant, false for host-only fallback.
        granted: bool,
    },
    /// A shadow-copy swap notification went to the switch.
    SwapSent {
        /// The task whose copies swap.
        task: TaskId,
    },
    /// A fetch request went to the switch.
    FetchSent {
        /// The harvested task.
        task: TaskId,
        /// The fetch sequence number.
        fetch_seq: u32,
    },
    /// A fetch reply was merged into the residual table.
    FetchMerged {
        /// The harvested task.
        task: TaskId,
        /// Entries merged.
        entries: u64,
    },
    /// The aggregation task completed at this receiver.
    TaskCompleted {
        /// The finished task.
        task: TaskId,
    },
}

/// Bounded ring buffer of timestamped [`TraceEvent`]s.
#[derive(Debug, Default)]
pub struct TraceLog {
    ring: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// Creates a log keeping at most `capacity` events (0 disables).
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// True if recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event (dropping the oldest beyond capacity).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((at, event));
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.ring.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: u32) -> TraceEvent {
        TraceEvent::TaskCompleted { task: TaskId(task) }
    }

    #[test]
    fn ring_keeps_newest() {
        let mut log = TraceLog::new(3);
        for i in 0..5 {
            log.record(SimTime::from_nanos(i), ev(i as u32));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let tasks: Vec<u32> = log
            .events()
            .map(|(_, e)| match e {
                TraceEvent::TaskCompleted { task } => task.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tasks, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut log = TraceLog::new(0);
        log.record(SimTime::ZERO, ev(1));
        assert!(log.is_empty());
        assert!(!log.enabled());
        assert_eq!(log.dropped(), 0);
    }
}
