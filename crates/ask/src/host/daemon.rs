//! The per-host ASK daemon (§3.1): control + data channels, the reliable
//! sliding-window sender, the deduplicating receiver, and the aggregation
//! task lifecycle (setup → streaming → FIN → fetch → teardown).

use crate::config::AskConfig;
use crate::fasthash::FastMap;
use crate::host::backoff::{splitmix64, BackoffPolicy};
use crate::host::congestion::CongestionWindow;
use crate::host::packetizer::{Packetizer, PendingStream};
use crate::host::receiver::ReceiverWindow;
use crate::host::table::TaskTable;
use crate::host::trace::{TraceEvent, TraceLog};
use crate::host::window::SenderWindow;
use crate::stats::{burst_bucket, HostStats};
use crate::switch::aggregator::Observation;
use ask_simnet::frame::{Frame, NodeId};
use ask_simnet::network::{Context, Node};
use ask_simnet::time::{SimDuration, SimTime};
use ask_wire::codec::{decode_envelope_pooled, encode_envelope_parts, Envelope, FLAG_NO_AGGREGATE};
use ask_wire::pool::PacketPool;
use ask_wire::constants::PACKET_OVERHEAD;
use ask_wire::key::Key;
use ask_wire::packet::{
    AggregateOp, AskPacket, ChannelId, ControlMsg, DataPacket, FetchScope, KvTuple, SeqNo, TaskId,
};
use ask_wire::view::{DataPacketView, FrameView, PacketView};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

pub use ask_wire::packet::CHANNEL_STRIDE;

// Timer token kinds (packed into the token's top byte).
const TK_PUMP: u64 = 1;
const TK_RETX: u64 = 2;
const TK_FETCH: u64 = 3;
const TK_REGION: u64 = 4;
const TK_ANNOUNCE: u64 = 5;

fn token_pump(ch: usize) -> u64 {
    (TK_PUMP << 56) | ch as u64
}
fn token_retx(ch: usize, seq: u64) -> u64 {
    debug_assert!(seq < (1 << 48), "seq exceeds token space");
    (TK_RETX << 56) | ((ch as u64) << 48) | seq
}
fn token_fetch(task: TaskId, fetch_seq: u32) -> u64 {
    (TK_FETCH << 56) | ((task.0 as u64) << 24) | (fetch_seq as u64 & 0xff_ffff)
}
fn token_region(task: TaskId) -> u64 {
    (TK_REGION << 56) | task.0 as u64
}
fn token_announce(task: TaskId) -> u64 {
    (TK_ANNOUNCE << 56) | task.0 as u64
}

/// An item queued on a data channel, waiting for the window.
///
/// A stream stays classified-but-unpacketized until the window actually
/// admits each packet ([`PendingStream`]); that way at most a window's worth
/// of payload vectors is live at a time and ACK-recycled vectors flow
/// straight back into the next packet, instead of the whole stream being
/// materialized up front against a cold [`PacketPool`].
#[derive(Debug)]
enum QueuedItem {
    Stream {
        task: TaskId,
        dst: u32,
        stream: PendingStream,
    },
    Fin {
        task: TaskId,
        dst: u32,
    },
}

#[derive(Debug)]
struct ChannelState {
    id: ChannelId,
    window: SenderWindow,
    queue: VecDeque<QueuedItem>,
    busy_until: SimTime,
    pump_armed: bool,
    /// Unacked data/long-kv packets per task, gating the task's FIN.
    outstanding: FastMap<TaskId, u64>,
    /// Optional AIMD congestion window (§7 discussion), capped at `W`.
    cc: Option<CongestionWindow>,
}

/// State of the receiver's (reliable) fetch exchange with the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchState {
    Idle,
    Pending {
        fetch_seq: u32,
        scope: FetchScope,
        is_final: bool,
    },
}

/// Read-only view of one data channel's reliability state, for invariant
/// checks (the conformance harness proves `peak_in_flight <= window` and
/// that everything drains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelSnapshot {
    /// The channel's global id.
    pub channel: ChannelId,
    /// Next sequence number the sender will use.
    pub next_seq: u64,
    /// Unacknowledged packets right now.
    pub in_flight: usize,
    /// High-water mark of `in_flight` over the run.
    pub peak_in_flight: usize,
    /// Items still queued behind the window.
    pub queued: usize,
    /// Unacked FIN-gating packets summed over tasks.
    pub outstanding: u64,
}

/// Completed aggregation result, exposed to the application.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The finished task.
    pub task: TaskId,
    /// Aggregated key → value (wrapping 32-bit sums).
    pub entries: HashMap<Key, u32>,
    /// Simulated completion time.
    pub completed_at: SimTime,
}

#[derive(Debug)]
struct RecvTask {
    senders: HashSet<u32>,
    /// The task's aggregation operator (applied to residual merges too).
    op: AggregateOp,
    /// `Some(true)` once a region is granted, `Some(false)` on deny
    /// (host-only fallback), `None` while the controller RPC is in flight.
    ina: Option<bool>,
    residual: TaskTable,
    fins: HashSet<u32>,
    packets_since_swap: u64,
    fetch_seq: u32,
    fetch: FetchState,
    want_final: bool,
    result: Option<TaskResult>,
}

/// The ASK daemon running on one host, as a simulated network node.
///
/// A daemon plays both roles: *sender* for tasks submitted via
/// [`AskDaemon::submit_send_task`] and *receiver* for tasks submitted via
/// [`AskDaemon::submit_receive_task`]. All traffic goes through the directly
/// attached [`crate::switch::AskSwitch`].
#[derive(Debug)]
pub struct AskDaemon {
    config: AskConfig,
    switch: NodeId,
    me: Option<NodeId>,
    packetizer: Packetizer,
    channels: Vec<ChannelState>,
    /// Sender side: task → receiver node learned from TaskAnnounce.
    announced: FastMap<TaskId, u32>,
    /// Sender side: tuples waiting for a TaskAnnounce.
    pending_sends: FastMap<TaskId, Vec<KvTuple>>,
    /// Sender side: every dispatched stream, retained for replay when the
    /// switch restarts under a new epoch. A sender cannot know whether the
    /// receiver already banked its contribution (switch aggregators are
    /// wiped by the crash), so resynchronization replays conservatively;
    /// receivers dedup via the epoch gate and completion checks.
    sent_streams: FastMap<TaskId, (u32, Vec<KvTuple>)>,
    /// Sender side: tasks whose FIN has been acknowledged.
    send_done: FastMap<TaskId, SimTime>,
    /// Receiver side.
    recv_windows: FastMap<ChannelId, ReceiverWindow>,
    recv_tasks: FastMap<TaskId, RecvTask>,
    stats: HostStats,
    trace: TraceLog,
    cpu_busy: SimDuration,
    /// Tuples received for tasks this daemon never registered (misrouted).
    orphan_tuples: u64,
    /// Recycled packet bodies: decode and packetize draw from here; ACKed
    /// window entries and merged receive payloads flow back.
    pool: PacketPool,
    /// Highest switch epoch this daemon has seen. Frames from older epochs
    /// (pre-crash verdicts, ACKs, fetch replies) are dropped at ingress.
    known_epoch: u32,
    /// True while the retransmit escalation has declared the aggregation
    /// path suspect: fresh data packets are stamped no-aggregate. Cleared
    /// when the switch ACKs again or a new epoch resynchronizes.
    degraded: bool,
    /// Retransmission schedule (flat with default config).
    backoff: BackoffPolicy,
    /// When set, wall time spent classifying and building packets is
    /// accumulated into `packetize_ns` (the `--timing` phase breakdown).
    /// Purely observational: never read by the protocol.
    time_phases: bool,
    /// `Cell` so the hot send path can add to it while channel state is
    /// mutably borrowed.
    packetize_ns: std::cell::Cell<u64>,
    /// False on the default zero-materialization receive path; true when
    /// [`AskConfig::host_scalar`](crate::config::AskConfig) or
    /// `ASK_HOST_SCALAR=1` forces the legacy materializing path.
    scalar: bool,
    /// First-delivery data views awaiting a grouped residual merge (view
    /// path only). Each deferred view is a refcount on the frame bytes;
    /// flushing groups consecutive same-task views so task resolution
    /// amortizes over a burst. Always drained before any state that reads
    /// residual tables is touched and at the end of every delivery.
    merge_batch: Vec<DataPacketView>,
    /// Scratch for batched receive-window observations (view path only),
    /// kept across bursts to avoid reallocating.
    obs_scratch: Vec<Observation>,
}

impl AskDaemon {
    /// Creates a daemon whose uplink is the switch node `switch`.
    pub fn new(config: AskConfig, switch: NodeId) -> Self {
        config.validate();
        let packetizer = Packetizer::new(config.layout, config.long_kv_batch);
        let trace = TraceLog::new(config.trace_capacity);
        let backoff = BackoffPolicy::from_config(&config, 0);
        let scalar = config.host_scalar
            || std::env::var("ASK_HOST_SCALAR")
                .map(|v| v != "0")
                .unwrap_or(false);
        AskDaemon {
            config,
            switch,
            me: None,
            packetizer,
            channels: Vec::new(),
            announced: FastMap::default(),
            pending_sends: FastMap::default(),
            sent_streams: FastMap::default(),
            send_done: FastMap::default(),
            recv_windows: FastMap::default(),
            recv_tasks: FastMap::default(),
            trace,
            stats: HostStats::default(),
            cpu_busy: SimDuration::ZERO,
            orphan_tuples: 0,
            pool: PacketPool::new(),
            known_epoch: 0,
            degraded: false,
            backoff,
            time_phases: false,
            packetize_ns: std::cell::Cell::new(0),
            scalar,
            merge_batch: Vec::new(),
            obs_scratch: Vec::new(),
        }
    }

    /// Turns on packetize-phase wall-time accounting (the `--timing`
    /// breakdown). Off by default: the hot path must not pay for clock
    /// reads.
    pub fn enable_phase_timing(&mut self) {
        self.time_phases = true;
    }

    /// Nanoseconds spent classifying and building packets, when
    /// [`AskDaemon::enable_phase_timing`] was called.
    pub fn packetize_ns(&self) -> u64 {
        self.packetize_ns.get()
    }

    fn ensure_init(&mut self, ctx: &Context<'_>) {
        if self.me.is_some() {
            return;
        }
        let me = ctx.me();
        assert!(
            (self.config.data_channels as u32) <= CHANNEL_STRIDE,
            "too many data channels for the id stride"
        );
        self.me = Some(me);
        // Per-host jitter stream; irrelevant with the default jitter of 0.
        self.backoff.seed = splitmix64(0x6261_636b_6f66_6621 ^ me.index() as u64);
        self.channels = (0..self.config.data_channels)
            .map(|i| ChannelState {
                id: ChannelId(me.index() as u32 * CHANNEL_STRIDE + i as u32),
                window: SenderWindow::new(self.config.window),
                queue: VecDeque::new(),
                busy_until: SimTime::ZERO,
                pump_armed: false,
                outstanding: FastMap::default(),
                cc: self
                    .config
                    .congestion_control
                    .then(|| CongestionWindow::new(self.config.window)),
            })
            .collect();
    }

    fn my_index(&self) -> u32 {
        self.me.expect("daemon initialized").index() as u32
    }

    // ------------------------------------------------------------------
    // Application-facing API (call through `Network::with_node`).
    // ------------------------------------------------------------------

    /// Submits an aggregation task with this host as the receiver.
    ///
    /// `senders` are the raw node indices of the sending hosts (which may
    /// include this host for co-located senders). The daemon requests switch
    /// memory and announces the task to every sender (§3.1 steps ①–⑤).
    pub fn submit_receive_task(&mut self, task: TaskId, senders: &[u32], ctx: &mut Context<'_>) {
        self.submit_receive_task_with_op(task, senders, AggregateOp::Sum, ctx);
    }

    /// [`AskDaemon::submit_receive_task`] with an explicit aggregation
    /// operator, applied consistently by the switch ALU and the host's
    /// residual merges.
    pub fn submit_receive_task_with_op(
        &mut self,
        task: TaskId,
        senders: &[u32],
        op: AggregateOp,
        ctx: &mut Context<'_>,
    ) {
        self.ensure_init(ctx);
        assert!(
            !self.recv_tasks.contains_key(&task),
            "task {task} already submitted"
        );
        self.recv_tasks.insert(
            task,
            RecvTask {
                senders: senders.iter().copied().collect(),
                op,
                ina: None,
                residual: TaskTable::new(),
                fins: HashSet::new(),
                packets_since_swap: 0,
                fetch_seq: 0,
                fetch: FetchState::Idle,
                want_final: false,
                result: None,
            },
        );
        let req = AskPacket::Control(ControlMsg::RegionRequest { task, op });
        self.send_to(self.switch.index() as u32, req, ctx);
        ctx.set_timer(self.config.fetch_timeout, token_region(task));
    }

    /// Submits this host's key-value stream for `task`. The data is held
    /// until the receiver's announcement arrives (which may already have
    /// happened), then packetized onto a data channel.
    pub fn submit_send_task(&mut self, task: TaskId, tuples: Vec<KvTuple>, ctx: &mut Context<'_>) {
        self.ensure_init(ctx);
        if let Some(&receiver) = self.announced.get(&task) {
            self.dispatch_send(task, receiver, tuples, ctx);
        } else {
            self.pending_sends.entry(task).or_default().extend(tuples);
        }
    }

    /// The completed result of a receive task, if finished.
    pub fn task_result(&self, task: TaskId) -> Option<&TaskResult> {
        self.recv_tasks.get(&task)?.result.as_ref()
    }

    /// True once this host's FIN for `task` was acknowledged.
    pub fn send_complete(&self, task: TaskId) -> bool {
        self.send_done.contains_key(&task)
    }

    /// When this host's FIN for `task` was acknowledged (end of its sending
    /// phase), if it has been.
    pub fn send_complete_at(&self, task: TaskId) -> Option<SimTime> {
        self.send_done.get(&task).copied()
    }

    /// Aggregate daemon counters (pool hit/miss counters are folded in from
    /// the live packet pool).
    pub fn stats(&self) -> HostStats {
        let mut s = self.stats;
        s.pool_hits = self.pool.hits();
        s.pool_misses = self.pool.misses();
        s
    }

    /// The daemon's packet-memory pool.
    pub fn pool(&self) -> &PacketPool {
        &self.pool
    }

    /// Total CPU time consumed by packet IO and host-side aggregation.
    pub fn cpu_busy(&self) -> SimDuration {
        self.cpu_busy
    }

    /// Tuples that arrived for tasks this daemon never registered.
    pub fn orphan_tuples(&self) -> u64 {
        self.orphan_tuples
    }

    /// The protocol trace (empty unless
    /// [`AskConfig::trace_capacity`](crate::config::AskConfig) is set).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Snapshots every data channel's window state (empty before the daemon
    /// has started).
    pub fn channel_snapshots(&self) -> Vec<ChannelSnapshot> {
        self.channels
            .iter()
            .map(|ch| ChannelSnapshot {
                channel: ch.id,
                next_seq: ch.window.next_seq(),
                in_flight: ch.window.in_flight(),
                peak_in_flight: ch.window.peak_in_flight(),
                queued: ch.queue.len(),
                outstanding: ch.outstanding.values().sum(),
            })
            .collect()
    }

    /// The configured sliding-window limit `W`, in packets.
    pub fn window_limit(&self) -> usize {
        self.config.window
    }

    /// Highest sequence number the receiver window has observed on
    /// `channel`, if any packet arrived on it.
    pub fn receiver_max_seq(&self, channel: ChannelId) -> Option<u64> {
        self.recv_windows.get(&channel).map(|w| w.max_seq())
    }

    /// True while a fetch request for `task` is outstanding.
    pub fn fetch_pending(&self, task: TaskId) -> bool {
        matches!(
            self.recv_tasks.get(&task).map(|rt| rt.fetch),
            Some(FetchState::Pending { .. })
        )
    }

    /// The highest switch epoch this daemon has synchronized against.
    pub fn known_epoch(&self) -> u32 {
        self.known_epoch
    }

    /// True when this daemon receives through the legacy materializing
    /// (scalar) path instead of the zero-materialization view path.
    pub fn is_scalar(&self) -> bool {
        self.scalar
    }

    /// True while the daemon is in degraded no-aggregate pass-through mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Simulates the daemon restarting from its crash-consistent state
    /// (window contents and task tables survive; pacing and armed timers do
    /// not): every in-flight packet is retransmitted — the receiver's
    /// window dedups the ones whose originals got through — pump pacing is
    /// reset, and any pending fetch is re-requested. Deterministic: channels
    /// in index order, fetches in task-id order.
    pub fn recover(&mut self, ctx: &mut Context<'_>) {
        self.ensure_init(ctx);
        for ch_ix in 0..self.channels.len() {
            let seqs = {
                let ch = &mut self.channels[ch_ix];
                ch.pump_armed = false;
                ch.busy_until = SimTime::ZERO;
                ch.window.in_flight_seqs()
            };
            for seq in seqs {
                self.retransmit(ch_ix, seq, ctx);
            }
            self.pump(ch_ix, ctx);
        }
        let mut pending: Vec<(TaskId, u32, FetchScope)> = self
            .recv_tasks
            .iter()
            .filter_map(|(&task, rt)| match rt.fetch {
                FetchState::Pending {
                    fetch_seq, scope, ..
                } => Some((task, fetch_seq, scope)),
                FetchState::Idle => None,
            })
            .collect();
        pending.sort_unstable_by_key(|&(task, ..)| task.0);
        for (task, fetch_seq, scope) in pending {
            self.send_to(
                self.switch.index() as u32,
                AskPacket::FetchRequest {
                    task,
                    scope,
                    fetch_seq,
                },
                ctx,
            );
            ctx.set_timer(self.config.fetch_timeout, token_fetch(task, fetch_seq));
        }
    }

    /// Full resynchronization against a restarted switch (epoch `epoch`).
    ///
    /// Called the moment any frame with a newer epoch arrives, *before* that
    /// frame's payload is processed. The crash wiped every aggregator,
    /// dedup register, and task region on the switch, and the epoch gate
    /// guarantees nothing from the old epoch will ever be accepted again on
    /// either side — so both roles restart their protocol state from
    /// scratch under the new epoch:
    ///
    /// - sender: windows are drained and the per-channel sequence space
    ///   restarts at 0 (the switch's wiped even/odd dedup bitmaps only read
    ///   correctly for a zero-based sequence space); retained streams are
    ///   replayed in task order.
    /// - receiver: receive windows are cleared and every unfinished task
    ///   re-requests its switch region, dropping all partial residuals
    ///   (their content is re-delivered by the senders' replays).
    fn resync_to_epoch(&mut self, epoch: u32, ctx: &mut Context<'_>) {
        self.known_epoch = epoch;
        self.degraded = false;
        for ch in &mut self.channels {
            for e in ch.window.drain_reset() {
                match e.packet {
                    AskPacket::Data(pkt) => self.pool.recycle_slots(pkt.slots),
                    AskPacket::LongKv { entries, .. } => self.pool.recycle_tuples(entries),
                    _ => {}
                }
            }
            ch.queue.clear();
            ch.outstanding.clear();
            ch.pump_armed = false;
            ch.busy_until = SimTime::ZERO;
            ch.cc = self
                .config
                .congestion_control
                .then(|| CongestionWindow::new(self.config.window));
        }
        self.recv_windows.clear();
        let mut incomplete: Vec<TaskId> = self
            .recv_tasks
            .iter()
            .filter(|(_, rt)| rt.result.is_none())
            .map(|(&t, _)| t)
            .collect();
        incomplete.sort_unstable_by_key(|t| t.0);
        for task in incomplete {
            let rt = self.recv_tasks.get_mut(&task).expect("listed above");
            rt.ina = None;
            rt.residual.clear();
            rt.fins.clear();
            rt.packets_since_swap = 0;
            rt.fetch = FetchState::Idle;
            rt.want_final = false;
            let op = rt.op;
            self.send_to(
                self.switch.index() as u32,
                AskPacket::Control(ControlMsg::RegionRequest { task, op }),
                ctx,
            );
            ctx.set_timer(self.config.fetch_timeout, token_region(task));
        }
        let mut replay: Vec<(TaskId, u32, Vec<KvTuple>)> = self
            .sent_streams
            .iter()
            .map(|(&t, (r, tuples))| (t, *r, tuples.clone()))
            .collect();
        replay.sort_unstable_by_key(|&(t, ..)| t.0);
        for (task, receiver, tuples) in replay {
            if receiver == self.my_index()
                && self
                    .recv_tasks
                    .get(&task)
                    .is_some_and(|rt| rt.result.is_some())
            {
                continue; // co-located task already finished; nothing lost
            }
            self.send_done.remove(&task);
            self.dispatch_stream(task, receiver, tuples, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Sender side.
    // ------------------------------------------------------------------

    fn dispatch_send(
        &mut self,
        task: TaskId,
        receiver: u32,
        tuples: Vec<KvTuple>,
        ctx: &mut Context<'_>,
    ) {
        // Retain the stream for crash-epoch replay before dispatching it.
        let retained = self
            .sent_streams
            .entry(task)
            .or_insert_with(|| (receiver, Vec::new()));
        retained.0 = receiver;
        retained.1.extend(tuples.iter().cloned());
        self.dispatch_stream(task, receiver, tuples, ctx);
    }

    fn dispatch_stream(
        &mut self,
        task: TaskId,
        receiver: u32,
        tuples: Vec<KvTuple>,
        ctx: &mut Context<'_>,
    ) {
        if receiver == self.my_index() {
            // Co-located sender: aggregate straight into the receiver's
            // shared-memory table (§5.5 — "these mappers' data needs to be
            // aggregated by the local reducers").
            let n = tuples.len() as u64;
            self.cpu_busy += self.config.cpu_per_tuple.saturating_mul(n);
            self.stats.tuples_host_aggregated += n;
            let Some(rt) = self.recv_tasks.get_mut(&task) else {
                self.orphan_tuples += n;
                return;
            };
            let op = rt.op;
            for t in tuples {
                rt.residual.merge(&t.key, t.value, op);
            }
            rt.fins.insert(receiver);
            self.check_completion(task, ctx);
            return;
        }
        let t0 = self.time_phases.then(std::time::Instant::now);
        let stream = self.packetizer.begin_stream(tuples);
        // Pre-warm the pool from the stream-size hints. At most a window's
        // worth of payloads is ever live per channel, so topping the free
        // lists up to min(stream, W) lets even the *first* window's takes
        // hit the pool — the bulk-packetize cold spot from the pooled-memory
        // rework. Steady state is unaffected: recycled vectors already
        // satisfy the target and the top-up is a no-op.
        let window = self.config.window;
        self.pool.prewarm_slots(
            stream.data_packet_count().min(window),
            self.packetizer.layout().slot_count(),
        );
        self.pool.prewarm_tuples(
            stream.long_batch_count().min(window),
            self.config.long_kv_batch,
        );
        if let Some(t0) = t0 {
            self.packetize_ns
                .set(self.packetize_ns.get() + t0.elapsed().as_nanos() as u64);
        }
        let ch_ix = (task.0 as usize) % self.channels.len();
        {
            let ch = &mut self.channels[ch_ix];
            ch.queue.push_back(QueuedItem::Stream {
                task,
                dst: receiver,
                stream,
            });
            ch.queue.push_back(QueuedItem::Fin {
                task,
                dst: receiver,
            });
        }
        self.pump(ch_ix, ctx);
    }

    fn pump(&mut self, ch_ix: usize, ctx: &mut Context<'_>) {
        let now = ctx.now();
        loop {
            let ch = &mut self.channels[ch_ix];
            if ch.queue.is_empty() || !ch.window.can_send() {
                return;
            }
            if let Some(cc) = &ch.cc {
                if ch.window.in_flight() >= cc.window() {
                    return; // congestion-limited; an ACK will re-pump
                }
            }
            if ch.busy_until > now {
                if !ch.pump_armed {
                    ch.pump_armed = true;
                    ctx.set_timer(ch.busy_until - now, token_pump(ch_ix));
                }
                return;
            }
            // FIN gate: a task's FIN goes out only after all of its data
            // packets are acknowledged (§3.1 Task Teardown).
            if let Some(QueuedItem::Fin { task, .. }) = ch.queue.front() {
                if ch.outstanding.get(task).copied().unwrap_or(0) > 0 {
                    return; // an ACK will re-pump
                }
            }
            let channel = ch.id;
            let seq = SeqNo(ch.window.next_seq());
            // A stream builds its next packet here, drawing the payload from
            // the pool at the last moment; a drained stream is popped and the
            // loop retries with the next queued item.
            let (packet, dst, task, gates_fin) = match ch.queue.front_mut() {
                Some(QueuedItem::Stream { task, dst, stream }) => {
                    let (task, dst) = (*task, *dst);
                    let t0 = self.time_phases.then(std::time::Instant::now);
                    let built = if let Some(slots) = stream.next_data_payload(&mut self.pool) {
                        Some(AskPacket::Data(DataPacket {
                            task,
                            channel,
                            seq,
                            slots,
                        }))
                    } else {
                        stream
                            .next_long_batch(&mut self.pool)
                            .map(|entries| AskPacket::LongKv {
                                task,
                                channel,
                                seq,
                                entries,
                            })
                    };
                    if let Some(t0) = t0 {
                        self.packetize_ns
                            .set(self.packetize_ns.get() + t0.elapsed().as_nanos() as u64);
                    }
                    match built {
                        Some(packet) => (packet, dst, task, true),
                        None => {
                            ch.queue.pop_front();
                            continue;
                        }
                    }
                }
                Some(QueuedItem::Fin { task, dst }) => {
                    let (task, dst) = (*task, *dst);
                    ch.queue.pop_front();
                    (AskPacket::Fin { task, channel, seq }, dst, task, false)
                }
                None => unreachable!("queue checked non-empty"),
            };
            let ch = &mut self.channels[ch_ix];
            if gates_fin {
                *ch.outstanding.entry(task).or_insert(0) += 1;
            }
            let me = self.my_index();
            let layout = self.config.layout;
            let wire = packet.wire_bytes(&layout);
            let flags = if self.degraded && matches!(packet, AskPacket::Data(_)) {
                FLAG_NO_AGGREGATE
            } else {
                0
            };
            // One encode per packet: the window keeps the exact bytes the
            // frame carries, so retransmissions skip the codec entirely and
            // the packet itself moves into the window without a clone.
            let bytes = encode_envelope_parts(me, dst, self.known_epoch, flags, &packet, &layout);
            let ch = &mut self.channels[ch_ix];
            ch.window.register(packet, bytes.clone(), wire, dst, Some(task));
            ch.busy_until = now + self.config.cpu_per_packet;
            self.cpu_busy += self.config.cpu_per_packet;
            self.stats.packets_sent += 1;
            self.stats.bytes_sent += wire as u64;
            self.stats.goodput_bytes_sent += (wire - PACKET_OVERHEAD) as u64;
            self.trace
                .record(now, TraceEvent::PacketSent { channel, seq, task });
            let _ = ctx.send(self.switch, Frame::with_wire_bytes(bytes, wire));
            ctx.set_timer(self.config.retransmit_timeout, token_retx(ch_ix, seq.0));
        }
    }

    fn on_ack(&mut self, channel: ChannelId, seq: SeqNo, ece: bool, ctx: &mut Context<'_>) {
        let Some(ch_ix) = self.local_channel(channel) else {
            return; // not ours
        };
        let Some(inflight) = self.channels[ch_ix].window.ack(seq.0) else {
            return; // duplicate ACK
        };
        self.stats.acks_received += 1;
        self.trace
            .record(ctx.now(), TraceEvent::AckReceived { channel, seq });
        if ece {
            self.stats.ecn_echoes += 1;
        }
        if let Some(cc) = &mut self.channels[ch_ix].cc {
            cc.on_ack();
            if ece {
                cc.on_ecn();
            }
        }
        // The ACK retires the window entry, so its packet body is dead
        // memory — recycle the backing vectors into the pool.
        match inflight.packet {
            AskPacket::Data(pkt) => {
                if let Some(task) = inflight.task {
                    let ch = &mut self.channels[ch_ix];
                    let left = ch.outstanding.entry(task).or_insert(1);
                    *left = left.saturating_sub(1);
                }
                self.pool.recycle_slots(pkt.slots);
            }
            AskPacket::LongKv { entries, .. } => {
                if let Some(task) = inflight.task {
                    let ch = &mut self.channels[ch_ix];
                    let left = ch.outstanding.entry(task).or_insert(1);
                    *left = left.saturating_sub(1);
                }
                self.pool.recycle_tuples(entries);
            }
            AskPacket::Fin { task, .. } => {
                self.send_done.insert(task, ctx.now());
            }
            _ => {}
        }
        self.pump(ch_ix, ctx);
    }

    fn retransmit(&mut self, ch_ix: usize, seq: u64, ctx: &mut Context<'_>) {
        let me = self.my_index();
        let layout = self.config.layout;
        let epoch = self.known_epoch;
        let escalate_after = self.config.escalate_after;
        let mut escalated = false;
        // Resend the stored wire bytes verbatim — no re-encode, no clone of
        // the packet body — unless this attempt crosses the escalation
        // threshold, in which case data packets are re-encoded once with the
        // no-aggregate flag (degraded end-to-end pass-through).
        let Some((bytes, wire, attempt)) = self.channels[ch_ix].window.retransmit(seq).map(|e| {
            if let Some(k) = escalate_after {
                if !e.degraded && e.retransmits >= k {
                    e.degraded = true;
                    escalated = true;
                    if matches!(e.packet, AskPacket::Data(_)) {
                        e.encoded = encode_envelope_parts(
                            me,
                            e.dst,
                            epoch,
                            FLAG_NO_AGGREGATE,
                            &e.packet,
                            &layout,
                        );
                    }
                }
            }
            (e.encoded.clone(), e.wire, e.retransmits)
        }) else {
            return; // already acknowledged
        };
        if escalated {
            self.degraded = true;
            self.stats.degraded_entries += 1;
        }
        self.stats.retransmissions += 1;
        let channel = self.channels[ch_ix].id;
        self.trace.record(
            ctx.now(),
            TraceEvent::Retransmitted {
                channel,
                seq: SeqNo(seq),
            },
        );
        if let Some(cc) = &mut self.channels[ch_ix].cc {
            cc.on_timeout();
        }
        self.cpu_busy += self.config.cpu_per_packet;
        self.stats.bytes_sent += wire as u64;
        let _ = ctx.send(self.switch, Frame::with_wire_bytes(bytes, wire));
        let token = token_retx(ch_ix, seq);
        ctx.set_timer(self.backoff.delay(token, attempt), token);
    }

    fn local_channel(&self, channel: ChannelId) -> Option<usize> {
        let me = self.my_index();
        let base = me * CHANNEL_STRIDE;
        if channel.0 < base || channel.0 >= base + self.channels.len() as u32 {
            return None;
        }
        Some((channel.0 - base) as usize)
    }

    // ------------------------------------------------------------------
    // Receiver side.
    // ------------------------------------------------------------------

    fn observe(&mut self, channel: ChannelId, seq: SeqNo) -> Observation {
        let w = self.config.window;
        self.recv_windows
            .entry(channel)
            .or_insert_with(|| ReceiverWindow::new(w))
            .observe(seq.0)
    }

    fn merge_residual(&mut self, task: TaskId, tuples: impl IntoIterator<Item = KvTuple>) {
        let Some(rt) = self.recv_tasks.get_mut(&task) else {
            let n = tuples.into_iter().count() as u64;
            self.orphan_tuples += n;
            return;
        };
        let op = rt.op;
        let mut n = 0u64;
        for t in tuples {
            rt.residual.merge(&t.key, t.value, op);
            n += 1;
        }
        self.stats.tuples_host_aggregated += n;
        self.cpu_busy += self.config.cpu_per_tuple.saturating_mul(n);
    }

    fn reply_ack(
        &mut self,
        dst: u32,
        channel: ChannelId,
        seq: SeqNo,
        ece: bool,
        ctx: &mut Context<'_>,
    ) {
        self.cpu_busy += self.config.cpu_per_packet;
        self.send_to(dst, AskPacket::Ack { channel, seq, ece }, ctx);
    }

    fn maybe_swap(&mut self, task: TaskId, ctx: &mut Context<'_>) {
        let threshold = self.config.swap_threshold;
        if threshold == 0 {
            return;
        }
        let Some(rt) = self.recv_tasks.get_mut(&task) else {
            return;
        };
        if rt.ina != Some(true) || rt.packets_since_swap < threshold || rt.fetch != FetchState::Idle
        {
            return;
        }
        rt.packets_since_swap = 0;
        rt.fetch_seq += 1;
        let fetch_seq = rt.fetch_seq;
        rt.fetch = FetchState::Pending {
            fetch_seq,
            scope: FetchScope::Inactive,
            is_final: false,
        };
        let sw = self.switch.index() as u32;
        self.trace.record(ctx.now(), TraceEvent::SwapSent { task });
        self.trace
            .record(ctx.now(), TraceEvent::FetchSent { task, fetch_seq });
        self.send_to(sw, AskPacket::Swap { task }, ctx);
        self.send_to(
            sw,
            AskPacket::FetchRequest {
                task,
                scope: FetchScope::Inactive,
                fetch_seq,
            },
            ctx,
        );
        ctx.set_timer(self.config.fetch_timeout, token_fetch(task, fetch_seq));
    }

    fn check_completion(&mut self, task: TaskId, ctx: &mut Context<'_>) {
        let Some(rt) = self.recv_tasks.get_mut(&task) else {
            return;
        };
        if rt.result.is_some() || !rt.fins.is_superset(&rt.senders) {
            return;
        }
        match rt.ina {
            Some(true) => {
                if rt.fetch == FetchState::Idle {
                    self.begin_final_fetch(task, ctx);
                } else {
                    rt.want_final = true;
                }
            }
            Some(false) => self.complete(task, ctx),
            None => {
                // Region RPC still in flight; completion re-checked when the
                // grant/deny arrives.
                rt.want_final = true;
            }
        }
    }

    fn begin_final_fetch(&mut self, task: TaskId, ctx: &mut Context<'_>) {
        let Some(rt) = self.recv_tasks.get_mut(&task) else {
            return;
        };
        rt.fetch_seq += 1;
        let fetch_seq = rt.fetch_seq;
        rt.fetch = FetchState::Pending {
            fetch_seq,
            scope: FetchScope::All,
            is_final: true,
        };
        rt.want_final = false;
        self.trace
            .record(ctx.now(), TraceEvent::FetchSent { task, fetch_seq });
        self.send_to(
            self.switch.index() as u32,
            AskPacket::FetchRequest {
                task,
                scope: FetchScope::All,
                fetch_seq,
            },
            ctx,
        );
        ctx.set_timer(self.config.fetch_timeout, token_fetch(task, fetch_seq));
    }

    fn complete(&mut self, task: TaskId, ctx: &mut Context<'_>) {
        let now = ctx.now();
        self.trace.record(now, TraceEvent::TaskCompleted { task });
        let ina = {
            let rt = self.recv_tasks.get_mut(&task).expect("task present");
            debug_assert!(rt.result.is_none());
            rt.result = Some(TaskResult {
                task,
                entries: rt.residual.take_entries(),
                completed_at: now,
            });
            rt.ina == Some(true)
        };
        if ina {
            // Return the switch memory region (§3.1 step ⑫).
            self.send_to(
                self.switch.index() as u32,
                AskPacket::Control(ControlMsg::RegionRelease { task }),
                ctx,
            );
        }
    }

    fn on_fetch_reply(
        &mut self,
        task: TaskId,
        fetch_seq: u32,
        entries: Arc<Vec<KvTuple>>,
        ctx: &mut Context<'_>,
    ) {
        let Some(rt) = self.recv_tasks.get_mut(&task) else {
            return;
        };
        let FetchState::Pending {
            fetch_seq: pending,
            is_final,
            ..
        } = rt.fetch
        else {
            return; // stray or already-handled reply
        };
        if fetch_seq != pending {
            return;
        }
        rt.fetch = FetchState::Idle;
        let n = entries.len() as u64;
        self.trace
            .record(ctx.now(), TraceEvent::FetchMerged { task, entries: n });
        self.stats.tuples_fetched += n;
        // The decoded reply normally holds the only reference, so this is a
        // move; a deep copy happens only if something else still shares it.
        let entries = Arc::try_unwrap(entries).unwrap_or_else(|a| (*a).clone());
        self.merge_residual(task, entries);
        let rt = self.recv_tasks.get_mut(&task).expect("task present");
        let want_final = rt.want_final;
        if is_final {
            self.complete(task, ctx);
        } else if want_final {
            self.begin_final_fetch(task, ctx);
        }
    }

    fn on_fetch_timer(&mut self, task: TaskId, fetch_seq_low: u32, ctx: &mut Context<'_>) {
        let Some(rt) = self.recv_tasks.get(&task) else {
            return;
        };
        let FetchState::Pending {
            fetch_seq, scope, ..
        } = rt.fetch
        else {
            return;
        };
        if fetch_seq & 0xff_ffff != fetch_seq_low {
            return; // timer for an older fetch
        }
        self.send_to(
            self.switch.index() as u32,
            AskPacket::FetchRequest {
                task,
                scope,
                fetch_seq,
            },
            ctx,
        );
        ctx.set_timer(self.config.fetch_timeout, token_fetch(task, fetch_seq));
    }

    // ------------------------------------------------------------------
    // Control plane.
    // ------------------------------------------------------------------

    fn on_region_reply(&mut self, task: TaskId, granted: bool, ctx: &mut Context<'_>) {
        let mut senders: Vec<u32> = {
            let Some(rt) = self.recv_tasks.get_mut(&task) else {
                return;
            };
            if rt.ina.is_some() {
                return; // duplicate reply
            }
            rt.ina = Some(granted);
            self.trace
                .record(ctx.now(), TraceEvent::RegionResolved { task, granted });
            rt.senders.iter().copied().collect()
        };
        // Sorted so announce order (and thus the event schedule) does not
        // depend on HashSet iteration order, which varies per process.
        senders.sort_unstable();
        let me = self.my_index();
        for sender in senders {
            self.send_to(
                sender,
                AskPacket::Control(ControlMsg::TaskAnnounce { task, receiver: me }),
                ctx,
            );
        }
        // Announcements are not acknowledged; retry until the task finishes
        // (idempotent at the senders) so a lost announce cannot hang it.
        ctx.set_timer(
            self.config.retransmit_timeout.saturating_mul(8),
            token_announce(task),
        );
        // A co-located sender may already have recorded its FIN.
        self.check_completion(task, ctx);
    }

    fn on_region_timer(&mut self, task: TaskId, ctx: &mut Context<'_>) {
        let Some(rt) = self.recv_tasks.get(&task) else {
            return;
        };
        if rt.ina.is_some() {
            return; // reply arrived
        }
        let op = rt.op;
        self.send_to(
            self.switch.index() as u32,
            AskPacket::Control(ControlMsg::RegionRequest { task, op }),
            ctx,
        );
        ctx.set_timer(self.config.fetch_timeout, token_region(task));
    }

    fn on_announce_timer(&mut self, task: TaskId, ctx: &mut Context<'_>) {
        let me = self.my_index();
        let mut pending: Vec<u32> = {
            let Some(rt) = self.recv_tasks.get(&task) else {
                return;
            };
            if rt.result.is_some() {
                return; // task finished; stop retrying
            }
            rt.senders.difference(&rt.fins).copied().collect()
        };
        pending.sort_unstable(); // deterministic retry order (see on_region_reply)
        for sender in pending {
            self.send_to(
                sender,
                AskPacket::Control(ControlMsg::TaskAnnounce { task, receiver: me }),
                ctx,
            );
        }
        ctx.set_timer(
            self.config.retransmit_timeout.saturating_mul(8),
            token_announce(task),
        );
    }

    fn on_announce(&mut self, task: TaskId, receiver: u32, ctx: &mut Context<'_>) {
        self.announced.insert(task, receiver);
        if let Some(tuples) = self.pending_sends.remove(&task) {
            self.dispatch_send(task, receiver, tuples, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Plumbing.
    // ------------------------------------------------------------------

    fn send_to(&mut self, dst: u32, packet: AskPacket, ctx: &mut Context<'_>) {
        let layout = self.config.layout;
        let wire = packet.wire_bytes(&layout);
        let bytes =
            encode_envelope_parts(self.my_index(), dst, self.known_epoch, 0, &packet, &layout);
        // Everything leaves through the uplink to the switch.
        let _ = ctx.send(self.switch, Frame::with_wire_bytes(bytes, wire));
    }

    // ------------------------------------------------------------------
    // Scalar (materializing) receive path — the escape hatch, and the
    // fallback for frames the view path cannot serve.
    // ------------------------------------------------------------------

    /// The scalar receive path for one decoded envelope: epoch gate, then
    /// packet dispatch.
    fn handle_envelope_scalar(&mut self, ecn: bool, envelope: Envelope, ctx: &mut Context<'_>) {
        let src = envelope.src;
        // Epoch gate: a newer epoch means the switch restarted — resync
        // fully before processing this frame; an older epoch is a leftover
        // of a dead incarnation (late verdict, ACK, or fetch reply computed
        // against wiped switch state) and must not touch anything.
        if envelope.epoch != self.known_epoch {
            if envelope.epoch > self.known_epoch {
                self.resync_to_epoch(envelope.epoch, ctx);
            } else {
                self.stats.stale_epoch_drops += 1;
                match envelope.packet {
                    AskPacket::Data(pkt) => self.pool.recycle_slots(pkt.slots),
                    AskPacket::LongKv { entries, .. } => self.pool.recycle_tuples(entries),
                    _ => {}
                }
                return;
            }
        }
        self.handle_packet_scalar(src, ecn, envelope.packet, ctx);
    }

    /// Post-epoch-gate handling of one materialized packet. Shared by the
    /// scalar path and the view path's materializing fallback (long-kv
    /// bodies, foreign-layout data).
    fn handle_packet_scalar(
        &mut self,
        src: u32,
        ecn: bool,
        packet: AskPacket,
        ctx: &mut Context<'_>,
    ) {
        match packet {
            AskPacket::Ack { channel, seq, ece } => {
                if self.degraded && src == self.switch.index() as u32 {
                    // The switch is absorbing again; resume aggregation.
                    self.degraded = false;
                }
                self.on_ack(channel, seq, ece, ctx)
            }
            AskPacket::Data(mut pkt) => {
                self.cpu_busy += self.config.cpu_per_packet;
                match self.observe(pkt.channel, pkt.seq) {
                    Observation::Stale => {
                        self.pool.recycle_slots(pkt.slots);
                    }
                    Observation::Duplicate => {
                        self.stats.duplicates_dropped += 1;
                        self.trace.record(
                            ctx.now(),
                            TraceEvent::DuplicateDropped {
                                channel: pkt.channel,
                                seq: pkt.seq,
                            },
                        );
                        self.reply_ack(src, pkt.channel, pkt.seq, ecn, ctx);
                        self.pool.recycle_slots(pkt.slots);
                    }
                    Observation::First => {
                        self.stats.packets_received += 1;
                        self.trace.record(
                            ctx.now(),
                            TraceEvent::Received {
                                channel: pkt.channel,
                                seq: pkt.seq,
                            },
                        );
                        let task = pkt.task;
                        let mut slots = std::mem::take(&mut pkt.slots);
                        self.merge_residual(task, slots.drain(..).flatten());
                        self.pool.recycle_slots(slots);
                        self.reply_ack(src, pkt.channel, pkt.seq, ecn, ctx);
                        if let Some(rt) = self.recv_tasks.get_mut(&task) {
                            rt.packets_since_swap += 1;
                        }
                        self.maybe_swap(task, ctx);
                    }
                }
            }
            AskPacket::LongKv {
                task,
                channel,
                seq,
                mut entries,
            } => {
                self.cpu_busy += self.config.cpu_per_packet;
                match self.observe(channel, seq) {
                    Observation::Stale => {
                        self.pool.recycle_tuples(entries);
                    }
                    Observation::Duplicate => {
                        self.stats.duplicates_dropped += 1;
                        self.reply_ack(src, channel, seq, ecn, ctx);
                        self.pool.recycle_tuples(entries);
                    }
                    Observation::First => {
                        self.stats.packets_received += 1;
                        self.merge_residual(task, entries.drain(..));
                        self.pool.recycle_tuples(entries);
                        self.reply_ack(src, channel, seq, ecn, ctx);
                    }
                }
            }
            AskPacket::Fin { task, channel, seq } => {
                self.cpu_busy += self.config.cpu_per_packet;
                match self.observe(channel, seq) {
                    Observation::Stale => {}
                    Observation::Duplicate => {
                        self.reply_ack(src, channel, seq, ecn, ctx);
                    }
                    Observation::First => {
                        let sender_host = channel.host();
                        self.reply_ack(src, channel, seq, ecn, ctx);
                        if let Some(rt) = self.recv_tasks.get_mut(&task) {
                            rt.fins.insert(sender_host);
                        }
                        self.check_completion(task, ctx);
                    }
                }
            }
            AskPacket::FetchReply {
                task,
                fetch_seq,
                entries,
            } => self.on_fetch_reply(task, fetch_seq, entries, ctx),
            AskPacket::Control(ControlMsg::RegionGrant { task, .. }) => {
                self.on_region_reply(task, true, ctx)
            }
            AskPacket::Control(ControlMsg::RegionDeny { task }) => {
                self.on_region_reply(task, false, ctx)
            }
            AskPacket::Control(ControlMsg::TaskAnnounce { task, receiver }) => {
                self.on_announce(task, receiver, ctx)
            }
            // The epoch gate already did all the work for a notify.
            AskPacket::Control(ControlMsg::EpochNotify { .. }) => {}
            // Packets a daemon never receives (switch-bound kinds).
            AskPacket::Swap { .. }
            | AskPacket::FetchRequest { .. }
            | AskPacket::Control(
                ControlMsg::RegionRequest { .. } | ControlMsg::RegionRelease { .. },
            ) => {}
        }
    }

    /// The materializing burst path: the whole burst is decoded through the
    /// pool up front — one pool drain per burst instead of interleaving
    /// decode with handling — then handled in arrival order. Only
    /// pool-counter timing differs from per-frame decode; every protocol
    /// action is identical.
    fn on_frames_scalar(&mut self, burst: &mut Vec<(NodeId, Frame)>, ctx: &mut Context<'_>) {
        let mut decoded: Vec<(bool, Envelope)> = Vec::with_capacity(burst.len());
        for (_, frame) in burst.drain(..) {
            let ecn = frame.ecn_marked();
            if let Ok(env) = decode_envelope_pooled(frame.into_payload(), &mut self.pool) {
                decoded.push((ecn, env));
            }
        }
        for (ecn, env) in decoded {
            self.handle_envelope_scalar(ecn, env, ctx);
        }
    }

    // ------------------------------------------------------------------
    // Zero-materialization receive path (the default).
    //
    // Inbound frames parse once into borrowed `FrameView`s; matching-layout
    // data packets and fetch replies are consumed straight from the wire
    // bytes with zero pool traffic. First-delivery data views are deferred
    // into `merge_batch` and merged grouped-by-task — all aggregation
    // operators are commutative and the merges emit nothing, so deferral
    // cannot change a single sent byte. Everything that reads residual
    // state (fins, fetch replies, control, epoch resync, fallbacks)
    // flushes the batch first.
    // ------------------------------------------------------------------

    /// Epoch gate for a parsed view; `false` means drop the frame. Mirrors
    /// the scalar gate; a newer epoch flushes deferred merges before the
    /// resync wipes the tables they target, and a stale frame has no
    /// materialized body to recycle.
    fn admit_view(&mut self, view: &FrameView, ctx: &mut Context<'_>) -> bool {
        if view.epoch() == self.known_epoch {
            return true;
        }
        if view.epoch() > self.known_epoch {
            self.flush_merge_batch();
            self.resync_to_epoch(view.epoch(), ctx);
            true
        } else {
            self.stats.stale_epoch_drops += 1;
            false
        }
    }

    /// Protocol actions for one matching-layout data view whose
    /// receive-window observation is already known. Packet-IO CPU is
    /// charged by the caller (per frame on the single path, per run on the
    /// burst path).
    fn data_view_action(
        &mut self,
        src: u32,
        ecn: bool,
        d: &DataPacketView,
        obs: Observation,
        ctx: &mut Context<'_>,
    ) {
        match obs {
            Observation::Stale => {}
            Observation::Duplicate => {
                self.stats.duplicates_dropped += 1;
                self.trace.record(
                    ctx.now(),
                    TraceEvent::DuplicateDropped {
                        channel: d.channel(),
                        seq: d.seq(),
                    },
                );
                self.reply_ack(src, d.channel(), d.seq(), ecn, ctx);
            }
            Observation::First => {
                self.stats.packets_received += 1;
                self.trace.record(
                    ctx.now(),
                    TraceEvent::Received {
                        channel: d.channel(),
                        seq: d.seq(),
                    },
                );
                let task = d.task();
                self.stats.host_pure_view += 1;
                self.merge_batch.push(d.clone());
                self.reply_ack(src, d.channel(), d.seq(), ecn, ctx);
                if let Some(rt) = self.recv_tasks.get_mut(&task) {
                    rt.packets_since_swap += 1;
                }
                self.maybe_swap(task, ctx);
            }
        }
    }

    /// Applies every deferred first-delivery data view to its task's
    /// residual table, resolving each task once per consecutive same-task
    /// run. Counter and CPU totals match the scalar path exactly; only the
    /// (unobservable) merge timing moves.
    fn flush_merge_batch(&mut self) {
        if self.merge_batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.merge_batch);
        let mut merged = 0u64;
        let mut orphaned = 0u64;
        let mut i = 0;
        while i < batch.len() {
            let task = batch[i].task();
            let mut j = i;
            while j < batch.len() && batch[j].task() == task {
                j += 1;
            }
            match self.recv_tasks.get_mut(&task) {
                Some(rt) => {
                    let op = rt.op;
                    for d in &batch[i..j] {
                        for s in d.slots() {
                            rt.residual.merge_hashed(s.hash64(), s.key_bytes(), s.value(), op);
                            merged += 1;
                        }
                    }
                }
                None => {
                    for d in &batch[i..j] {
                        orphaned += d.occupied() as u64;
                    }
                }
            }
            i = j;
        }
        self.stats.tuples_host_aggregated += merged;
        self.cpu_busy += self.config.cpu_per_tuple.saturating_mul(merged);
        self.orphan_tuples += orphaned;
        // Keep the batch's capacity for the next burst.
        self.merge_batch = batch;
        self.merge_batch.clear();
    }

    /// Merges a fetch reply's entries straight off the frame bytes — no
    /// `Arc<Vec<KvTuple>>` is ever built for the body. State-machine
    /// behavior mirrors [`AskDaemon::on_fetch_reply`] exactly.
    fn on_fetch_reply_view(
        &mut self,
        task: TaskId,
        fetch_seq: u32,
        entry_count: u32,
        view: &FrameView,
        ctx: &mut Context<'_>,
    ) {
        let Some(rt) = self.recv_tasks.get_mut(&task) else {
            return;
        };
        let FetchState::Pending {
            fetch_seq: pending,
            is_final,
            ..
        } = rt.fetch
        else {
            return; // stray or already-handled reply
        };
        if fetch_seq != pending {
            return;
        }
        rt.fetch = FetchState::Idle;
        let n = entry_count as u64;
        self.trace
            .record(ctx.now(), TraceEvent::FetchMerged { task, entries: n });
        self.stats.tuples_fetched += n;
        self.stats.host_pure_view += 1;
        let rt = self.recv_tasks.get_mut(&task).expect("task present");
        let op = rt.op;
        for e in view.entries().expect("fetch replies carry entries") {
            rt.residual.merge_hashed(e.hash64(), e.key_bytes(), e.value(), op);
        }
        self.stats.tuples_host_aggregated += n;
        self.cpu_busy += self.config.cpu_per_tuple.saturating_mul(n);
        let rt = self.recv_tasks.get_mut(&task).expect("task present");
        let want_final = rt.want_final;
        if is_final {
            self.complete(task, ctx);
        } else if want_final {
            self.begin_final_fetch(task, ctx);
        }
    }

    /// Handles one parsed frame on the view path. Deferred merges are not
    /// flushed on exit — the caller flushes after the frame (or burst).
    fn on_frame_view(&mut self, ecn: bool, view: &FrameView, ctx: &mut Context<'_>) {
        if !self.admit_view(view, ctx) {
            return;
        }
        let src = view.src();
        match view.packet() {
            PacketView::Ack { channel, seq, ece } => {
                if self.degraded && src == self.switch.index() as u32 {
                    // The switch is absorbing again; resume aggregation.
                    self.degraded = false;
                }
                self.on_ack(*channel, *seq, *ece, ctx)
            }
            PacketView::Data(d) => {
                if d.matches_layout(&self.config.layout) {
                    self.cpu_busy += self.config.cpu_per_packet;
                    let obs = self.observe(d.channel(), d.seq());
                    self.data_view_action(src, ecn, d, obs, ctx);
                } else {
                    // Foreign layout: materialize through the pool and take
                    // the scalar data arm.
                    self.flush_merge_batch();
                    self.stats.host_view_fallbacks += 1;
                    let envelope = view.materialize_pooled(&mut self.pool);
                    self.handle_packet_scalar(src, ecn, envelope.packet, ctx);
                }
            }
            PacketView::LongKv { .. } => {
                // Long-key bypass bodies merge as owned tuples; materialize
                // through the pool and take the scalar long-kv arm.
                self.flush_merge_batch();
                self.stats.host_view_fallbacks += 1;
                let envelope = view.materialize_pooled(&mut self.pool);
                self.handle_packet_scalar(src, ecn, envelope.packet, ctx);
            }
            PacketView::Fin { task, channel, seq } => {
                self.flush_merge_batch();
                self.cpu_busy += self.config.cpu_per_packet;
                match self.observe(*channel, *seq) {
                    Observation::Stale => {}
                    Observation::Duplicate => {
                        self.reply_ack(src, *channel, *seq, ecn, ctx);
                    }
                    Observation::First => {
                        let sender_host = channel.host();
                        self.reply_ack(src, *channel, *seq, ecn, ctx);
                        if let Some(rt) = self.recv_tasks.get_mut(task) {
                            rt.fins.insert(sender_host);
                        }
                        self.check_completion(*task, ctx);
                    }
                }
            }
            PacketView::FetchReply {
                task,
                fetch_seq,
                entry_count,
            } => {
                self.flush_merge_batch();
                self.on_fetch_reply_view(*task, *fetch_seq, *entry_count, view, ctx);
            }
            PacketView::Control(ControlMsg::RegionGrant { task, .. }) => {
                self.flush_merge_batch();
                self.on_region_reply(*task, true, ctx)
            }
            PacketView::Control(ControlMsg::RegionDeny { task }) => {
                self.flush_merge_batch();
                self.on_region_reply(*task, false, ctx)
            }
            PacketView::Control(ControlMsg::TaskAnnounce { task, receiver }) => {
                // A co-located announce merges and may complete the task.
                self.flush_merge_batch();
                self.on_announce(*task, *receiver, ctx)
            }
            // The epoch gate already did all the work for a notify.
            PacketView::Control(ControlMsg::EpochNotify { .. }) => {}
            // Packets a daemon never receives (switch-bound kinds).
            PacketView::Swap { .. }
            | PacketView::FetchRequest { .. }
            | PacketView::Control(
                ControlMsg::RegionRequest { .. } | ControlMsg::RegionRelease { .. },
            ) => {}
        }
    }

    /// Ingests a run of same-channel, matching-layout data views from one
    /// burst: the receive window resolves once for the whole run, every
    /// sequence number is observed into the reusable scratch buffer,
    /// packet-IO CPU is charged in one multiply, and the per-frame protocol
    /// actions replay in arrival order.
    fn ingest_data_run(&mut self, run: &[(bool, FrameView)], ctx: &mut Context<'_>) {
        debug_assert!(!run.is_empty());
        let mut obs = std::mem::take(&mut self.obs_scratch);
        obs.clear();
        {
            let PacketView::Data(first) = run[0].1.packet() else {
                unreachable!("runs contain only data views");
            };
            let w = self.config.window;
            let window = self
                .recv_windows
                .entry(first.channel())
                .or_insert_with(|| ReceiverWindow::new(w));
            for (_, view) in run {
                let PacketView::Data(d) = view.packet() else {
                    unreachable!("runs contain only data views");
                };
                obs.push(window.observe(d.seq().0));
            }
        }
        self.cpu_busy += self.config.cpu_per_packet.saturating_mul(run.len() as u64);
        for ((ecn, view), ob) in run.iter().zip(obs.iter()) {
            let PacketView::Data(d) = view.packet() else {
                unreachable!("runs contain only data views");
            };
            self.data_view_action(view.src(), *ecn, d, *ob, ctx);
        }
        self.obs_scratch = obs;
    }

    /// The zero-materialization burst path: the burst parses once into
    /// borrowed views, consecutive same-channel data frames ingest as runs,
    /// and the deferred merge batch drains exactly once at the end.
    fn on_frames_view(&mut self, burst: &mut Vec<(NodeId, Frame)>, ctx: &mut Context<'_>) {
        let mut frames: Vec<(bool, FrameView)> = Vec::with_capacity(burst.len());
        for (_, frame) in burst.drain(..) {
            let ecn = frame.ecn_marked();
            if let Ok(view) = FrameView::parse(frame.into_payload()) {
                frames.push((ecn, view));
            }
        }
        let mut i = 0;
        while i < frames.len() {
            let view = &frames[i].1;
            // A frame joins a run only when it needs no epoch action and
            // aggregates in place; everything else dispatches singly (and
            // may resync, ending the grouping epoch).
            let run_channel = match view.packet() {
                PacketView::Data(d)
                    if view.epoch() == self.known_epoch
                        && d.matches_layout(&self.config.layout) =>
                {
                    Some(d.channel())
                }
                _ => None,
            };
            let Some(channel) = run_channel else {
                self.on_frame_view(frames[i].0, &frames[i].1, ctx);
                i += 1;
                continue;
            };
            let mut j = i + 1;
            while j < frames.len() {
                let v = &frames[j].1;
                match v.packet() {
                    PacketView::Data(d)
                        if v.epoch() == self.known_epoch
                            && d.matches_layout(&self.config.layout)
                            && d.channel() == channel =>
                    {
                        j += 1;
                    }
                    _ => break,
                }
            }
            self.ingest_data_run(&frames[i..j], ctx);
            i = j;
        }
        self.flush_merge_batch();
    }
}

impl Node for AskDaemon {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.ensure_init(ctx);
    }

    fn on_frame(&mut self, _from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
        self.ensure_init(ctx);
        let ecn = frame.ecn_marked();
        if self.scalar {
            let Ok(envelope) = decode_envelope_pooled(frame.into_payload(), &mut self.pool) else {
                return;
            };
            self.handle_envelope_scalar(ecn, envelope, ctx);
        } else {
            let Ok(view) = FrameView::parse(frame.into_payload()) else {
                return;
            };
            self.on_frame_view(ecn, &view, ctx);
            self.flush_merge_batch();
        }
    }

    fn on_frames(&mut self, burst: &mut Vec<(NodeId, Frame)>, ctx: &mut Context<'_>) {
        self.ensure_init(ctx);
        self.stats.burst_len[burst_bucket(burst.len() as u64)] += 1;
        if self.scalar {
            self.on_frames_scalar(burst, ctx);
        } else {
            self.on_frames_view(burst, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        self.ensure_init(ctx);
        match token >> 56 {
            TK_PUMP => {
                let ch_ix = (token & 0xffff_ffff) as usize;
                self.channels[ch_ix].pump_armed = false;
                self.pump(ch_ix, ctx);
            }
            TK_RETX => {
                let ch_ix = ((token >> 48) & 0xff) as usize;
                let seq = token & 0xffff_ffff_ffff;
                self.retransmit(ch_ix, seq, ctx);
            }
            TK_FETCH => {
                let task = TaskId(((token >> 24) & 0xffff_ffff) as u32);
                let fetch_seq_low = (token & 0xff_ffff) as u32;
                self.on_fetch_timer(task, fetch_seq_low, ctx);
            }
            TK_REGION => {
                self.on_region_timer(TaskId((token & 0xffff_ffff) as u32), ctx);
            }
            TK_ANNOUNCE => {
                self.on_announce_timer(TaskId((token & 0xffff_ffff) as u32), ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_pack_and_unpack() {
        let t = token_retx(3, 0x1234_5678);
        assert_eq!(t >> 56, TK_RETX);
        assert_eq!((t >> 48) & 0xff, 3);
        assert_eq!(t & 0xffff_ffff_ffff, 0x1234_5678);

        let t = token_fetch(TaskId(7), 42);
        assert_eq!(t >> 56, TK_FETCH);
        assert_eq!((t >> 24) & 0xffff_ffff, 7);
        assert_eq!(t & 0xff_ffff, 42);

        let t = token_pump(5);
        assert_eq!(t >> 56, TK_PUMP);
        assert_eq!(t & 0xffff_ffff, 5);
    }

    #[test]
    fn channel_ids_are_per_host_unique() {
        // host 3, 4 channels → ids 3*256 .. 3*256+3
        let base = 3 * CHANNEL_STRIDE;
        for i in 0..4 {
            let id = ChannelId(base + i);
            assert_eq!(id.0 / CHANNEL_STRIDE, 3, "host recoverable from id");
        }
    }
}
