//! The host receiver's dedup window (§3.3 "Host Receiver").
//!
//! The *switch* uses the memory-compact even/odd `seen` bitmap because every
//! sequenced packet of a flow traverses it, keeping the observed sequence
//! numbers dense — the parity trick depends on that density. The *receiver*
//! cannot reuse it: the switch consumes fully-aggregated packets, so the
//! receiver observes a sparse subsequence, and a skipped sequence number
//! would leave a bit with stale parity and misclassify a later first
//! arrival as a duplicate.
//!
//! Host memory is not scarce, so the receiver window stores the actual
//! sequence number per slot (`W` × 8 bytes): slot `seq % W` remembers the
//! last sequence observed there. Within the `(max_seq - W, max_seq]` window
//! at most one live sequence maps to each slot, and anything older is
//! rejected by the same `max_seq` stale guard the switch uses.

use crate::switch::aggregator::Observation;

/// Per-channel receive window for duplicate elimination.
#[derive(Debug, Clone)]
pub struct ReceiverWindow {
    /// `slots[r]` holds `seq + 1` of the last observation with
    /// `seq % W == r` (0 = never observed).
    slots: Vec<u64>,
    w: u64,
    max_seq: u64,
}

impl ReceiverWindow {
    /// Creates a window of `w` packets.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Self {
        assert!(w > 0, "window must be positive");
        ReceiverWindow {
            slots: vec![0; w],
            w: w as u64,
            max_seq: 0,
        }
    }

    /// Classifies one arrival and records it.
    pub fn observe(&mut self, seq: u64) -> Observation {
        self.max_seq = self.max_seq.max(seq);
        if seq + self.w <= self.max_seq {
            return Observation::Stale;
        }
        let r = (seq % self.w) as usize;
        if self.slots[r] == seq + 1 {
            Observation::Duplicate
        } else {
            self.slots[r] = seq + 1;
            Observation::First
        }
    }

    /// Highest sequence number observed so far (0 before any arrival).
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_then_duplicate() {
        let mut w = ReceiverWindow::new(8);
        assert_eq!(w.observe(0), Observation::First);
        assert_eq!(w.observe(0), Observation::Duplicate);
        assert_eq!(w.observe(1), Observation::First);
        assert_eq!(w.max_seq(), 1);
    }

    #[test]
    fn in_order_stream_is_all_first() {
        let mut w = ReceiverWindow::new(8);
        for seq in 0..1000 {
            assert_eq!(w.observe(seq), Observation::First, "seq {seq}");
        }
    }

    #[test]
    fn sparse_subsequence_is_all_first() {
        // The critical property the switch's compact bitmap cannot provide:
        // when the switch absorbs most packets, the receiver sees arbitrary
        // gaps, and every unseen sequence must still classify as First.
        let mut w = ReceiverWindow::new(8);
        for seq in [0u64, 3, 9, 10, 24, 25, 31, 40, 41, 55, 100, 101] {
            assert_eq!(w.observe(seq), Observation::First, "seq {seq}");
        }
    }

    #[test]
    fn stale_behind_window() {
        let mut w = ReceiverWindow::new(8);
        for seq in 0..20 {
            w.observe(seq);
        }
        // Window is (19-8, 19] = (11, 19]; 11 and below are stale.
        assert_eq!(w.observe(11), Observation::Stale);
        assert_eq!(w.observe(12), Observation::Duplicate);
    }

    #[test]
    fn out_of_order_within_window() {
        let mut w = ReceiverWindow::new(8);
        assert_eq!(w.observe(3), Observation::First);
        assert_eq!(w.observe(1), Observation::First);
        assert_eq!(w.observe(2), Observation::First);
        assert_eq!(w.observe(1), Observation::Duplicate);
        assert_eq!(w.observe(4), Observation::First);
    }

    #[test]
    fn slot_reuse_across_segments() {
        let mut w = ReceiverWindow::new(4);
        // seq 1 then seq 5 share slot 1; both are first arrivals, and the
        // overwritten seq 1 becomes stale rather than duplicate.
        assert_eq!(w.observe(1), Observation::First);
        assert_eq!(w.observe(5), Observation::First);
        assert_eq!(w.observe(1), Observation::Stale);
        assert_eq!(w.observe(5), Observation::Duplicate);
    }

    #[test]
    fn matches_switch_classification_on_dense_arrivals() {
        // On a *dense* arrival process (every seq reaches the observer, as
        // at the switch), the software window and the hardware compact
        // bitmap classify identically.
        use crate::config::AskConfig;
        use crate::switch::aggregator::AggregatorEngine;
        use ask_wire::packet::{ChannelId, SeqNo};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let cfg = AskConfig::tiny();
        let w = cfg.window;
        let mut engine = AggregatorEngine::new(cfg);
        let mut soft = ReceiverWindow::new(w);
        let mut rng = StdRng::seed_from_u64(11);

        // In-order delivery of every sequence, with bounded-lookback
        // duplicates (a sender only retransmits unacked in-window seqs).
        let mut head = 0u64;
        for _ in 0..5000 {
            let seq = if rng.gen_bool(0.8) {
                let s = head;
                head += 1;
                s
            } else {
                head.saturating_sub(rng.gen_range(1..w as u64 / 2))
            };
            let hw = engine.observe_bypass(ChannelId(0), SeqNo(seq));
            let sw = soft.observe(seq);
            assert_eq!(hw, sw, "divergence at seq {seq}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = ReceiverWindow::new(0);
    }
}
