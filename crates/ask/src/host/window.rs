//! The sender's sliding window (§3.3 "Host Sender").
//!
//! The sender keeps at most `W` unacknowledged packets in flight. ACKs —
//! from the switch or from the receiver host — retire entries and allow new
//! sends. Out-of-order ACKs never trigger retransmission (the two ACK
//! sources naturally reorder); only the fine-grained timeout does.

use ask_wire::packet::{AskPacket, TaskId};
use bytes::Bytes;
use std::collections::BTreeMap;

/// One unacknowledged packet.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// The packet, kept for ACK bookkeeping (task/FIN dispatch).
    pub packet: AskPacket,
    /// The envelope as it went on the wire. Retransmissions resend these
    /// bytes directly (an O(1) refcount bump) instead of re-encoding.
    pub encoded: Bytes,
    /// On-wire size of the frame carrying `encoded`.
    pub wire: usize,
    /// Destination node index.
    pub dst: u32,
    /// The task the packet belongs to (for FIN gating), if any.
    pub task: Option<TaskId>,
    /// Number of retransmissions so far.
    pub retransmits: u32,
}

/// Sliding send window over one data channel's sequence space.
#[derive(Debug)]
pub struct SenderWindow {
    w: u64,
    next_seq: u64,
    inflight: BTreeMap<u64, InFlight>,
}

impl SenderWindow {
    /// Creates a window of size `w` packets.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Self {
        assert!(w > 0, "window must be positive");
        SenderWindow {
            w: w as u64,
            next_seq: 0,
            inflight: BTreeMap::new(),
        }
    }

    /// True if the window permits transmitting the next sequence number:
    /// `next_seq < oldest_unacked + W`.
    pub fn can_send(&self) -> bool {
        match self.inflight.keys().next() {
            Some(&oldest) => self.next_seq < oldest + self.w,
            None => true,
        }
    }

    /// Number of unacknowledged packets.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The sequence number the next send will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Registers a fresh transmission, consuming the next sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the window is full ([`SenderWindow::can_send`] is false).
    pub fn register(
        &mut self,
        packet: AskPacket,
        encoded: Bytes,
        wire: usize,
        dst: u32,
        task: Option<TaskId>,
    ) -> u64 {
        assert!(self.can_send(), "window full");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight.insert(
            seq,
            InFlight {
                packet,
                encoded,
                wire,
                dst,
                task,
                retransmits: 0,
            },
        );
        seq
    }

    /// Retires `seq`; returns the entry if it was in flight (`None` for
    /// duplicate ACKs).
    pub fn ack(&mut self, seq: u64) -> Option<InFlight> {
        self.inflight.remove(&seq)
    }

    /// Looks up an in-flight packet (for retransmission), bumping its
    /// retransmit counter.
    pub fn retransmit(&mut self, seq: u64) -> Option<&InFlight> {
        let entry = self.inflight.get_mut(&seq)?;
        entry.retransmits += 1;
        Some(&*entry)
    }

    /// True once every transmission has been acknowledged.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ask_wire::packet::{ChannelId, SeqNo};

    fn dummy_packet(seq: u64) -> AskPacket {
        AskPacket::Ack {
            channel: ChannelId(0),
            seq: SeqNo(seq),
            ece: false,
        }
    }

    #[test]
    fn window_blocks_at_w_unacked() {
        let mut w = SenderWindow::new(4);
        for i in 0..4 {
            assert!(w.can_send());
            assert_eq!(w.register(dummy_packet(i), Bytes::new(), 0, 1, None), i);
        }
        assert!(!w.can_send());
        assert_eq!(w.in_flight(), 4);
    }

    #[test]
    fn acking_oldest_slides_window() {
        let mut w = SenderWindow::new(2);
        w.register(dummy_packet(0), Bytes::new(), 0, 1, None);
        w.register(dummy_packet(1), Bytes::new(), 0, 1, None);
        assert!(!w.can_send());
        // Acking the *newest* does not slide (oldest still pins the window).
        assert!(w.ack(1).is_some());
        assert!(!w.can_send(), "seq 2 >= 0 + 2");
        assert!(w.ack(0).is_some());
        assert!(w.can_send());
        assert!(w.is_idle());
    }

    #[test]
    fn duplicate_ack_returns_none() {
        let mut w = SenderWindow::new(2);
        w.register(dummy_packet(0), Bytes::new(), 0, 1, None);
        assert!(w.ack(0).is_some());
        assert!(w.ack(0).is_none());
    }

    #[test]
    fn retransmit_counts() {
        let mut w = SenderWindow::new(2);
        w.register(dummy_packet(0), Bytes::new(), 0, 7, Some(TaskId(3)));
        assert_eq!(w.retransmit(0).unwrap().retransmits, 1);
        assert_eq!(w.retransmit(0).unwrap().retransmits, 2);
        let e = w.ack(0).unwrap();
        assert_eq!(e.retransmits, 2);
        assert_eq!(e.dst, 7);
        assert_eq!(e.task, Some(TaskId(3)));
        assert!(w.retransmit(0).is_none(), "acked packets are gone");
    }

    #[test]
    #[should_panic(expected = "window full")]
    fn register_past_full_panics() {
        let mut w = SenderWindow::new(1);
        w.register(dummy_packet(0), Bytes::new(), 0, 1, None);
        w.register(dummy_packet(1), Bytes::new(), 0, 1, None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = SenderWindow::new(0);
    }
}
