//! The sender's sliding window (§3.3 "Host Sender").
//!
//! The sender keeps at most `W` unacknowledged packets in flight. ACKs —
//! from the switch or from the receiver host — retire entries and allow new
//! sends. Out-of-order ACKs never trigger retransmission (the two ACK
//! sources naturally reorder); only the fine-grained timeout does.

use ask_wire::packet::{AskPacket, TaskId};
use bytes::Bytes;
use std::collections::BTreeMap;

/// One unacknowledged packet.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// The packet, kept for ACK bookkeeping (task/FIN dispatch).
    pub packet: AskPacket,
    /// The envelope as it went on the wire. Retransmissions resend these
    /// bytes directly (an O(1) refcount bump) instead of re-encoding.
    pub encoded: Bytes,
    /// On-wire size of the frame carrying `encoded`.
    pub wire: usize,
    /// Destination node index.
    pub dst: u32,
    /// The task the packet belongs to (for FIN gating), if any.
    pub task: Option<TaskId>,
    /// Number of retransmissions so far.
    pub retransmits: u32,
    /// Entry was escalated to degraded no-aggregate pass-through after the
    /// configured retransmission budget ran out.
    pub degraded: bool,
}

/// Sliding send window over one data channel's sequence space.
///
/// Sequence numbers are modular (`u64` wrapping): all window arithmetic is
/// phrased as wrapping distances from `next_seq`, so the window keeps
/// working across the `u64::MAX → 0` wraparound. An in-flight sequence `s`
/// is always within `W` behind `next_seq`, which makes
/// `next_seq.wrapping_sub(s) ∈ [1, W]` the age of `s`.
#[derive(Debug)]
pub struct SenderWindow {
    w: u64,
    next_seq: u64,
    inflight: BTreeMap<u64, InFlight>,
    peak_inflight: usize,
}

impl SenderWindow {
    /// Creates a window of size `w` packets.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Self {
        Self::with_start_seq(w, 0)
    }

    /// Creates a window whose first transmission will use sequence number
    /// `start` — lets tests start the sequence space anywhere, notably just
    /// below the `u64` wraparound.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn with_start_seq(w: usize, start: u64) -> Self {
        assert!(w > 0, "window must be positive");
        SenderWindow {
            w: w as u64,
            next_seq: start,
            inflight: BTreeMap::new(),
            peak_inflight: 0,
        }
    }

    /// True if the window permits transmitting the next sequence number:
    /// the oldest unacknowledged packet is less than `W` behind `next_seq`
    /// (in wrapping distance).
    pub fn can_send(&self) -> bool {
        match self.oldest_unacked() {
            Some(oldest) => self.next_seq.wrapping_sub(oldest) < self.w,
            None => true,
        }
    }

    /// The oldest (logically, not numerically) unacknowledged sequence.
    ///
    /// In-flight sequences live in the half-open modular interval
    /// `[next_seq - W, next_seq)`; keys numerically `>= next_seq` are the
    /// pre-wrap tail of that interval and therefore older than any key
    /// below `next_seq`.
    pub fn oldest_unacked(&self) -> Option<u64> {
        self.inflight
            .range(self.next_seq..)
            .next()
            .map(|(&s, _)| s)
            .or_else(|| self.inflight.keys().next().copied())
    }

    /// Number of unacknowledged packets.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// High-water mark of [`SenderWindow::in_flight`] over the window's
    /// lifetime — the invariant `peak_in_flight ≤ W` is what a conformance
    /// harness checks to prove the sender never overran its window.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_inflight
    }

    /// The in-flight sequence numbers, oldest first (wraparound-aware).
    pub fn in_flight_seqs(&self) -> Vec<u64> {
        let mut seqs: Vec<u64> = self.inflight.range(self.next_seq..).map(|(&s, _)| s).collect();
        seqs.extend(self.inflight.range(..self.next_seq).map(|(&s, _)| s));
        seqs
    }

    /// The sequence number the next send will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Registers a fresh transmission, consuming the next sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the window is full ([`SenderWindow::can_send`] is false).
    pub fn register(
        &mut self,
        packet: AskPacket,
        encoded: Bytes,
        wire: usize,
        dst: u32,
        task: Option<TaskId>,
    ) -> u64 {
        assert!(self.can_send(), "window full");
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.peak_inflight = self.peak_inflight.max(self.inflight.len() + 1);
        self.inflight.insert(
            seq,
            InFlight {
                packet,
                encoded,
                wire,
                dst,
                task,
                retransmits: 0,
                degraded: false,
            },
        );
        seq
    }

    /// Retires `seq`; returns the entry if it was in flight (`None` for
    /// duplicate ACKs).
    pub fn ack(&mut self, seq: u64) -> Option<InFlight> {
        self.inflight.remove(&seq)
    }

    /// Looks up an in-flight packet (for retransmission), bumping its
    /// retransmit counter. The entry is mutable so the caller can swap in a
    /// re-encoded frame (degraded-mode escalation).
    pub fn retransmit(&mut self, seq: u64) -> Option<&mut InFlight> {
        let entry = self.inflight.get_mut(&seq)?;
        entry.retransmits += 1;
        Some(entry)
    }

    /// True once every transmission has been acknowledged.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Empties the window and restarts the sequence space at 0, returning
    /// the abandoned entries (newest-epoch resynchronization: the switch's
    /// dedup registers were wiped, and their even/odd phase encoding only
    /// reads correctly for a sequence space that starts from zero). The
    /// peak-in-flight high-water mark is preserved across the reset.
    pub fn drain_reset(&mut self) -> Vec<InFlight> {
        self.next_seq = 0;
        std::mem::take(&mut self.inflight).into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ask_wire::packet::{ChannelId, SeqNo};

    fn dummy_packet(seq: u64) -> AskPacket {
        AskPacket::Ack {
            channel: ChannelId(0),
            seq: SeqNo(seq),
            ece: false,
        }
    }

    #[test]
    fn window_blocks_at_w_unacked() {
        let mut w = SenderWindow::new(4);
        for i in 0..4 {
            assert!(w.can_send());
            assert_eq!(w.register(dummy_packet(i), Bytes::new(), 0, 1, None), i);
        }
        assert!(!w.can_send());
        assert_eq!(w.in_flight(), 4);
    }

    #[test]
    fn acking_oldest_slides_window() {
        let mut w = SenderWindow::new(2);
        w.register(dummy_packet(0), Bytes::new(), 0, 1, None);
        w.register(dummy_packet(1), Bytes::new(), 0, 1, None);
        assert!(!w.can_send());
        // Acking the *newest* does not slide (oldest still pins the window).
        assert!(w.ack(1).is_some());
        assert!(!w.can_send(), "seq 2 >= 0 + 2");
        assert!(w.ack(0).is_some());
        assert!(w.can_send());
        assert!(w.is_idle());
    }

    #[test]
    fn duplicate_ack_returns_none() {
        let mut w = SenderWindow::new(2);
        w.register(dummy_packet(0), Bytes::new(), 0, 1, None);
        assert!(w.ack(0).is_some());
        assert!(w.ack(0).is_none());
    }

    #[test]
    fn retransmit_counts() {
        let mut w = SenderWindow::new(2);
        w.register(dummy_packet(0), Bytes::new(), 0, 7, Some(TaskId(3)));
        assert_eq!(w.retransmit(0).unwrap().retransmits, 1);
        assert_eq!(w.retransmit(0).unwrap().retransmits, 2);
        let e = w.ack(0).unwrap();
        assert_eq!(e.retransmits, 2);
        assert_eq!(e.dst, 7);
        assert_eq!(e.task, Some(TaskId(3)));
        assert!(w.retransmit(0).is_none(), "acked packets are gone");
    }

    #[test]
    fn drain_reset_restarts_sequence_space() {
        let mut w = SenderWindow::with_start_seq(4, 1000);
        w.register(dummy_packet(0), Bytes::new(), 0, 1, Some(TaskId(3)));
        w.register(dummy_packet(0), Bytes::new(), 0, 1, None);
        assert_eq!(w.peak_in_flight(), 2);
        let drained = w.drain_reset();
        assert_eq!(drained.len(), 2);
        assert!(w.is_idle());
        assert_eq!(w.next_seq(), 0, "sequence space restarts at zero");
        assert_eq!(w.peak_in_flight(), 2, "high-water mark survives the reset");
        assert_eq!(w.register(dummy_packet(0), Bytes::new(), 0, 1, None), 0);
    }

    #[test]
    #[should_panic(expected = "window full")]
    fn register_past_full_panics() {
        let mut w = SenderWindow::new(1);
        w.register(dummy_packet(0), Bytes::new(), 0, 1, None);
        w.register(dummy_packet(1), Bytes::new(), 0, 1, None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = SenderWindow::new(0);
    }

    #[test]
    fn window_slides_across_u64_wraparound() {
        // Start two packets shy of u64::MAX and stream 16 packets through a
        // window of 4: sequence numbers wrap through 0 and the window keeps
        // sliding (the old `oldest + w` arithmetic overflowed here).
        let mut w = SenderWindow::with_start_seq(4, u64::MAX - 2);
        let mut expected = u64::MAX - 2;
        for _ in 0..16 {
            assert!(w.can_send());
            let seq = w.register(dummy_packet(0), Bytes::new(), 0, 1, None);
            assert_eq!(seq, expected);
            assert!(w.ack(seq).is_some());
            expected = expected.wrapping_add(1);
        }
        assert!(w.is_idle());
        assert_eq!(w.peak_in_flight(), 1);
    }

    #[test]
    fn oldest_unacked_is_wraparound_aware() {
        let mut w = SenderWindow::with_start_seq(4, u64::MAX - 1);
        let a = w.register(dummy_packet(0), Bytes::new(), 0, 1, None); // MAX-1
        let b = w.register(dummy_packet(0), Bytes::new(), 0, 1, None); // MAX
        let c = w.register(dummy_packet(0), Bytes::new(), 0, 1, None); // 0
        assert_eq!((a, b, c), (u64::MAX - 1, u64::MAX, 0));
        // Numerically the smallest key is 0, but logically MAX-1 is oldest.
        assert_eq!(w.oldest_unacked(), Some(u64::MAX - 1));
        assert_eq!(w.in_flight_seqs(), vec![u64::MAX - 1, u64::MAX, 0]);
        assert!(w.can_send(), "3 of 4 slots used");
        w.register(dummy_packet(0), Bytes::new(), 0, 1, None); // 1
        assert!(!w.can_send(), "window full across the wrap");
        assert!(w.ack(u64::MAX - 1).is_some());
        assert!(w.can_send(), "acking the oldest slides the window");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        proptest! {
            /// For any start point — including just below the u64 wrap —
            /// and any interleaving of sends and (possibly duplicate) ACKs,
            /// the window behaves exactly like an ideal model over
            /// non-wrapping virtual positions: same sequence assignment,
            /// same can-send verdict, and never more than `W` in flight.
            #[test]
            fn wraparound_matches_unwrapped_model(
                seed in any::<u64>(),
                w in 1usize..12,
                // Bias starts around the wrap point and a few "plain" spots.
                start_back in 0u64..40,
                plain_start in prop_oneof![Just(false), Just(true)],
                steps in 32usize..200,
            ) {
                let start = if plain_start {
                    start_back // near zero
                } else {
                    u64::MAX.wrapping_sub(start_back) // near the wrap
                };
                let mut sw = SenderWindow::with_start_seq(w, start);
                let mut rng = StdRng::seed_from_u64(seed);
                // Model: virtual (non-wrapping) positions of in-flight sends.
                let mut inflight_virt: Vec<u64> = Vec::new();
                let mut next_virt: u64 = 0;
                for _ in 0..steps {
                    let model_can_send = match inflight_virt.first() {
                        Some(&oldest) => next_virt - oldest < w as u64,
                        None => true,
                    };
                    prop_assert_eq!(sw.can_send(), model_can_send);
                    prop_assert!(sw.in_flight() <= w);
                    if model_can_send && (inflight_virt.is_empty() || rng.gen_bool(0.6)) {
                        let seq = sw.register(dummy_packet(0), Bytes::new(), 0, 1, None);
                        prop_assert_eq!(seq, start.wrapping_add(next_virt));
                        inflight_virt.push(next_virt);
                        next_virt += 1;
                    } else if !inflight_virt.is_empty() {
                        // Ack a random in-flight packet (ACKs reorder freely);
                        // occasionally replay an old ACK to model duplicates.
                        let ix = rng.gen_range(0..inflight_virt.len());
                        let virt = inflight_virt.remove(ix);
                        let seq = start.wrapping_add(virt);
                        prop_assert!(sw.ack(seq).is_some());
                        if rng.gen_bool(0.3) {
                            prop_assert!(sw.ack(seq).is_none(), "duplicate ACK");
                        }
                    }
                    prop_assert_eq!(sw.in_flight(), inflight_virt.len());
                    let model_oldest =
                        inflight_virt.first().map(|&v| start.wrapping_add(v));
                    prop_assert_eq!(sw.oldest_unacked(), model_oldest);
                }
                prop_assert!(sw.peak_in_flight() <= w);
            }

            /// Retransmit/ACK lifecycle under duplicate ACKs: a duplicate
            /// ACK never resurrects a packet, never unblocks extra sends,
            /// and a retransmission after a duplicate ACK is a no-op for
            /// acked packets while unacked ones keep counting attempts.
            #[test]
            fn retransmit_after_duplicate_ack(
                seed in any::<u64>(),
                w in 2usize..10,
                steps in 20usize..120,
            ) {
                let mut sw = SenderWindow::new(w);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut live: Vec<(u64, u32)> = Vec::new(); // (seq, retransmits)
                let mut acked: Vec<u64> = Vec::new();
                for _ in 0..steps {
                    match rng.gen_range(0..4u8) {
                        0 if sw.can_send() => {
                            let seq =
                                sw.register(dummy_packet(0), Bytes::new(), 0, 1, None);
                            live.push((seq, 0));
                        }
                        1 if !live.is_empty() => {
                            let ix = rng.gen_range(0..live.len());
                            let (seq, retx) = live.remove(ix);
                            let entry = sw.ack(seq);
                            prop_assert!(entry.is_some());
                            prop_assert_eq!(entry.unwrap().retransmits, retx);
                            acked.push(seq);
                        }
                        2 if !live.is_empty() => {
                            // Timeout fires for an in-flight packet.
                            let ix = rng.gen_range(0..live.len());
                            live[ix].1 += 1;
                            let seq = live[ix].0;
                            let got = sw.retransmit(seq);
                            prop_assert!(got.is_some());
                            prop_assert_eq!(got.unwrap().retransmits, live[ix].1);
                        }
                        _ if !acked.is_empty() => {
                            // Duplicate ACK, then a late timeout for the same
                            // sequence: both must be inert.
                            let seq = acked[rng.gen_range(0..acked.len())];
                            let before = sw.in_flight();
                            prop_assert!(sw.ack(seq).is_none());
                            prop_assert!(sw.retransmit(seq).is_none());
                            prop_assert_eq!(sw.in_flight(), before);
                        }
                        _ => {}
                    }
                    prop_assert!(sw.in_flight() <= w);
                }
                prop_assert_eq!(sw.in_flight(), live.len());
            }
        }
    }
}
