//! Loss-based AIMD congestion window for data channels.
//!
//! The paper's §7 discussion notes ASK is compatible with loss-based INA
//! congestion control (à la ATP), with one constraint: the congestion
//! window must never exceed the reliability mechanism's maximum window `W`,
//! or the switch's compact `seen` bitmap would misclassify packets.
//!
//! This is a minimal additive-increase / multiplicative-decrease controller
//! driven by the signals the reliable sender already has: ACKs (increase)
//! and retransmission timeouts (decrease).

/// AIMD congestion window, bounded by `[1, max_window]`.
#[derive(Debug, Clone)]
pub struct CongestionWindow {
    cwnd: f64,
    max_window: usize,
    /// Slow-start threshold; below it the window grows by 1 per ACK.
    ssthresh: f64,
    timeouts: u64,
    /// ACKs since the last ECN-driven decrease (rate-limits reactions to
    /// one per window, as DCTCP does per RTT).
    acks_since_ecn: u64,
    ecn_events: u64,
}

impl CongestionWindow {
    /// Creates a controller capped at the reliability window `max_window`.
    ///
    /// # Panics
    ///
    /// Panics if `max_window == 0`.
    pub fn new(max_window: usize) -> Self {
        assert!(max_window > 0, "window must be positive");
        CongestionWindow {
            cwnd: 2.0_f64.min(max_window as f64),
            max_window,
            ssthresh: max_window as f64 / 2.0,
            timeouts: 0,
            acks_since_ecn: 0,
            ecn_events: 0,
        }
    }

    /// Current window size in packets (≥ 1, ≤ `max_window`).
    pub fn window(&self) -> usize {
        (self.cwnd as usize).clamp(1, self.max_window)
    }

    /// Timeouts observed so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// ECN-driven decreases applied so far.
    pub fn ecn_events(&self) -> u64 {
        self.ecn_events
    }

    /// ECN echo received: gentle multiplicative decrease (×0.8), at most
    /// once per window's worth of ACKs — a coarse DCTCP (§7's ECN-based
    /// congestion control for INA).
    pub fn on_ecn(&mut self) {
        if self.acks_since_ecn < self.window() as u64 {
            return;
        }
        self.acks_since_ecn = 0;
        self.ecn_events += 1;
        self.cwnd = (self.cwnd * 0.8).max(1.0);
        self.ssthresh = self.cwnd;
    }

    /// ACK received: slow-start below `ssthresh`, then additive increase.
    pub fn on_ack(&mut self) {
        self.acks_since_ecn += 1;
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
        self.cwnd = self.cwnd.min(self.max_window as f64);
    }

    /// Retransmission timeout: multiplicative decrease.
    pub fn on_timeout(&mut self) {
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2.0).max(1.0);
        self.cwnd = self.ssthresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_then_additive() {
        let mut c = CongestionWindow::new(256);
        assert_eq!(c.window(), 2);
        for _ in 0..126 {
            c.on_ack();
        }
        assert_eq!(c.window(), 128, "slow start: +1 per ACK");
        let before = c.window();
        for _ in 0..3 * before {
            c.on_ack();
        }
        // Congestion avoidance: ~+1 per window's worth of ACKs.
        assert!(
            c.window() >= before + 2 && c.window() <= before + 4,
            "got {} from {before}",
            c.window()
        );
    }

    #[test]
    fn timeout_halves() {
        let mut c = CongestionWindow::new(256);
        for _ in 0..200 {
            c.on_ack();
        }
        let before = c.window();
        c.on_timeout();
        assert!(c.window() <= before / 2 + 1);
        assert_eq!(c.timeouts(), 1);
    }

    #[test]
    fn never_exceeds_reliability_window() {
        let mut c = CongestionWindow::new(8);
        for _ in 0..1000 {
            c.on_ack();
        }
        assert_eq!(c.window(), 8);
    }

    #[test]
    fn never_below_one() {
        let mut c = CongestionWindow::new(64);
        for _ in 0..20 {
            c.on_timeout();
        }
        assert_eq!(c.window(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = CongestionWindow::new(0);
    }
}
