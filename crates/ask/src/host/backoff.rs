//! Bounded-exponential retransmission backoff.
//!
//! The paper's prototype retransmits on a flat fine-grained 100 µs timer
//! (§3.3), which is the right call when the switch is healthy: losses are
//! rare and isolated, and a quick resend keeps the window moving. When the
//! switch *crashes*, every in-flight packet on every channel times out at
//! once, and a flat timer turns the outage into a synchronized retransmit
//! storm against a dead port. [`BackoffPolicy`] generalizes the timer: the
//! k-th retransmission of a packet waits
//! `min(base * factor^k, cap)`, optionally perturbed by deterministic
//! per-packet jitter so the storm de-synchronizes.
//!
//! With the default configuration (`factor = 1`, `jitter = 0`) the policy
//! degenerates to exactly the paper's flat timer, so enabling the machinery
//! costs nothing on healthy runs and leaves committed goldens untouched.
//!
//! Determinism: the jitter is a pure function of `(seed, key, attempt)` via
//! splitmix64 — no shared RNG stream, no dependence on event order. Two runs
//! with the same seeds produce bit-identical schedules.

use ask_simnet::time::SimDuration;

use crate::config::AskConfig;

/// Deterministic bounded-exponential backoff schedule.
///
/// # Examples
///
/// ```
/// use ask::host::backoff::BackoffPolicy;
/// use ask_simnet::time::SimDuration;
///
/// let p = BackoffPolicy {
///     base: SimDuration::from_micros(100),
///     factor: 2,
///     cap: SimDuration::from_micros(350),
///     jitter_permille: 0,
///     seed: 1,
/// };
/// assert_eq!(p.delay(7, 0), SimDuration::from_micros(100));
/// assert_eq!(p.delay(7, 1), SimDuration::from_micros(200));
/// assert_eq!(p.delay(7, 2), SimDuration::from_micros(350)); // capped
/// ```
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// Delay before the first retransmission (attempt 0).
    pub base: SimDuration,
    /// Per-attempt multiplier; `1` keeps the delay flat.
    pub factor: u32,
    /// Ceiling on the nominal (pre-jitter) delay.
    pub cap: SimDuration,
    /// Jitter amplitude in permille of the nominal delay (`0..=1000`).
    pub jitter_permille: u32,
    /// Seed mixed into the per-packet jitter stream.
    pub seed: u64,
}

/// The splitmix64 finalizer: a cheap, well-distributed 64-bit mix.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl BackoffPolicy {
    /// Builds the policy a daemon uses, from its config and a per-host seed.
    pub fn from_config(config: &AskConfig, seed: u64) -> Self {
        BackoffPolicy {
            base: config.retransmit_timeout,
            factor: config.backoff_factor,
            cap: config.backoff_cap,
            jitter_permille: config.backoff_jitter_permille,
            seed,
        }
    }

    /// Nominal delay for the given attempt: `min(base * factor^attempt, cap)`.
    fn nominal_nanos(&self, attempt: u32) -> u64 {
        let cap = self.cap.as_nanos();
        let mut d = self.base.as_nanos().min(cap);
        for _ in 0..attempt {
            d = d.saturating_mul(u64::from(self.factor));
            if d >= cap {
                return cap;
            }
        }
        d
    }

    /// Delay before retransmission number `attempt` (0-based) of the packet
    /// identified by `key`. Jitter shifts the nominal delay by at most
    /// `nominal * jitter_permille / 1000` in either direction; the result is
    /// clamped to at least 1 ns so a timer always moves time forward.
    pub fn delay(&self, key: u64, attempt: u32) -> SimDuration {
        let nominal = self.nominal_nanos(attempt);
        if self.jitter_permille == 0 {
            return SimDuration::from_nanos(nominal.max(1));
        }
        let amplitude = nominal / 1000 * u64::from(self.jitter_permille)
            + nominal % 1000 * u64::from(self.jitter_permille) / 1000;
        let r = splitmix64(self.seed ^ splitmix64(key ^ (u64::from(attempt) << 32)));
        // Uniform offset in [-amplitude, +amplitude].
        let span = amplitude.saturating_mul(2).saturating_add(1);
        let offset = r % span;
        let jittered = nominal - amplitude + offset;
        SimDuration::from_nanos(jittered.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn policy(factor: u32, cap_us: u64, jitter: u32, seed: u64) -> BackoffPolicy {
        BackoffPolicy {
            base: SimDuration::from_micros(100),
            factor,
            cap: SimDuration::from_micros(cap_us),
            jitter_permille: jitter,
            seed,
        }
    }

    #[test]
    fn flat_policy_reproduces_fixed_timer() {
        let p = policy(1, 6_400, 0, 9);
        for attempt in 0..40 {
            assert_eq!(p.delay(3, attempt), SimDuration::from_micros(100));
        }
    }

    #[test]
    fn doubling_reaches_cap_and_stays() {
        let p = policy(2, 800, 0, 9);
        let expect = [100u64, 200, 400, 800, 800, 800];
        for (attempt, us) in expect.iter().enumerate() {
            assert_eq!(p.delay(0, attempt as u32), SimDuration::from_micros(*us));
        }
    }

    #[test]
    fn huge_attempt_saturates_instead_of_overflowing() {
        let p = policy(1000, 1_000_000, 0, 9);
        assert_eq!(p.delay(0, 1_000), SimDuration::from_micros(1_000_000));
    }

    #[test]
    fn jitter_never_yields_zero() {
        let p = BackoffPolicy {
            base: SimDuration::from_nanos(1),
            factor: 1,
            cap: SimDuration::from_nanos(1),
            jitter_permille: 1000,
            seed: 5,
        };
        for key in 0..64 {
            assert!(p.delay(key, 0) >= SimDuration::from_nanos(1));
        }
    }

    proptest! {
        /// Without jitter the schedule is monotone non-decreasing in the
        /// attempt number and never exceeds the cap.
        #[test]
        fn prop_monotone_and_capped(
            factor in 1u32..8,
            cap_us in 100u64..10_000,
            key in any::<u64>(),
        ) {
            let p = policy(factor, cap_us, 0, 1);
            let mut prev = SimDuration::ZERO;
            for attempt in 0..24 {
                let d = p.delay(key, attempt);
                prop_assert!(d >= prev, "attempt {attempt}: {d:?} < {prev:?}");
                prop_assert!(d <= p.cap);
                prev = d;
            }
        }

        /// With factor 2 the delay exactly doubles until it hits the cap.
        #[test]
        fn prop_doubles_until_cap(cap_us in 100u64..100_000, key in any::<u64>()) {
            let p = policy(2, cap_us, 0, 1);
            for attempt in 0..20u32 {
                let nominal = 100_000u64
                    .saturating_mul(1u64 << attempt)
                    .min(p.cap.as_nanos());
                prop_assert_eq!(p.delay(key, attempt).as_nanos(), nominal);
            }
        }

        /// Jitter stays within the configured permille bound of the nominal
        /// delay.
        #[test]
        fn prop_jitter_bounded(
            jitter in 0u32..=1000,
            seed in any::<u64>(),
            key in any::<u64>(),
            attempt in 0u32..16,
        ) {
            let nominal = policy(2, 3_200, 0, seed).delay(key, attempt).as_nanos();
            let jittered = policy(2, 3_200, jitter, seed).delay(key, attempt).as_nanos();
            let bound = nominal as u128 * u128::from(jitter) / 1000;
            let diff = nominal.abs_diff(jittered);
            prop_assert!(
                u128::from(diff) <= bound + 1,
                "nominal {nominal} jittered {jittered} bound {bound}"
            );
        }

        /// The schedule is a pure function of (seed, key, attempt).
        #[test]
        fn prop_deterministic_per_seed(
            seed in any::<u64>(),
            key in any::<u64>(),
            attempt in 0u32..16,
        ) {
            let a = policy(2, 3_200, 500, seed).delay(key, attempt);
            let b = policy(2, 3_200, 500, seed).delay(key, attempt);
            prop_assert_eq!(a, b);
        }
    }
}
