//! Host-side components: daemon, packetizer, sliding windows.

pub mod backoff;
pub mod congestion;
pub mod daemon;
pub mod packetizer;
pub mod receiver;
pub mod table;
pub mod trace;
pub mod window;

pub use backoff::BackoffPolicy;
pub use congestion::CongestionWindow;
pub use trace::{TraceEvent, TraceLog};

pub use daemon::{AskDaemon, ChannelSnapshot, TaskResult, CHANNEL_STRIDE};
pub use packetizer::{PacketizedStream, Packetizer, PendingStream};
pub use receiver::ReceiverWindow;
pub use table::TaskTable;
pub use window::{InFlight, SenderWindow};
