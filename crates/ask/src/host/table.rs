//! The receiver's residual merge table: open-addressed, arena-backed.
//!
//! Every tuple the switch could not absorb lands here — residual slots the
//! view path reads straight off the wire, long-key bypass tuples, fetch
//! replies, and co-located sender streams. The paper's host daemon (§4)
//! merges these into a shared-memory table at line rate, so the structure
//! is built for the merge loop, not for general map workloads:
//!
//! - **Open addressing, linear probing, power-of-two capacity.** One flat
//!   slot array, no per-entry boxes, no bucket chains; the common miss
//!   costs one cache line.
//! - **Wire-computed hashes.** [`TaskTable::merge_hashed`] takes the 64-bit
//!   FNV-1a hash the view layer already produced per slot
//!   ([`ask_wire::view::SlotView::hash64`]), so the hot path never re-reads
//!   key bytes to hash them.
//! - **Inline short keys, arena for long ones.** Keys up to
//!   [`INLINE_CAP`] bytes live inside the slot; longer keys are
//!   bump-allocated into one contiguous arena and the slot stores an
//!   offset. Rehashing moves slots only — arena offsets are stable — and
//!   [`TaskTable::clear`] (the epoch-resync wipe) truncates the arena
//!   without releasing its capacity.
//! - **Amortized sorted harvest.** Nothing stays ordered during merges;
//!   [`TaskTable::sorted_entries`] sorts once at harvest time, which is how
//!   report output stays byte-identical to the old `HashMap` + sort.
//!
//! All aggregation operators are commutative and associative
//! ([`AggregateOp::combine`]), so merge order never changes the values.

use ask_wire::key::Key;
use ask_wire::packet::AggregateOp;
use bytes::Bytes;
use std::collections::HashMap;

/// Key bytes stored inline in a slot. Together with the hash, value, and
/// bookkeeping this keeps a slot at 40 bytes — comfortably under a cache
/// line, with two slots per line.
pub const INLINE_CAP: usize = 20;

/// Smallest allocated capacity (power of two).
const MIN_CAPACITY: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u64,
    value: u32,
    /// Key length in bytes; `0` marks a vacant slot (wire keys are
    /// validated non-empty, so no live entry can collide with the marker).
    key_len: u32,
    /// The key bytes when `key_len <= INLINE_CAP`.
    inline: [u8; INLINE_CAP],
    /// Arena offset of the key bytes when `key_len > INLINE_CAP`.
    arena_off: u32,
}

const VACANT: Slot = Slot {
    hash: 0,
    value: 0,
    key_len: 0,
    inline: [0; INLINE_CAP],
    arena_off: 0,
};

/// Open-addressed residual table for one receive task. See the module
/// documentation for the layout rationale.
#[derive(Debug, Default)]
pub struct TaskTable {
    slots: Vec<Slot>,
    /// `slots.len() - 1`; capacity is always a power of two.
    mask: usize,
    len: usize,
    /// Backing store for keys longer than [`INLINE_CAP`] bytes.
    arena: Vec<u8>,
}

impl TaskTable {
    /// An empty table. Allocates nothing until the first merge.
    pub fn new() -> Self {
        TaskTable::default()
    }

    /// Number of distinct keys merged.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key has been merged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_key(&self, ix: usize) -> &[u8] {
        let s = &self.slots[ix];
        let len = s.key_len as usize;
        if len <= INLINE_CAP {
            &s.inline[..len]
        } else {
            &self.arena[s.arena_off as usize..s.arena_off as usize + len]
        }
    }

    /// Merges `value` under the key whose bytes are `key` and whose FNV-1a
    /// hash is `hash` — the wire-computed hash from
    /// [`ask_wire::view::SlotView::hash64`] /
    /// [`ask_wire::view::EntryView::hash64`], which equals
    /// [`Key::hash64`] of the materialized key.
    pub fn merge_hashed(&mut self, hash: u64, key: &[u8], value: u32, op: AggregateOp) {
        debug_assert!(!key.is_empty(), "wire keys are validated non-empty");
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.mask;
        let mut ix = (hash as usize) & mask;
        loop {
            let s = &self.slots[ix];
            if s.key_len == 0 {
                break; // vacant: insert here
            }
            if s.hash == hash && s.key_len as usize == key.len() && self.slot_key(ix) == key {
                let v = &mut self.slots[ix].value;
                *v = op.combine(*v, value);
                return;
            }
            ix = (ix + 1) & mask;
        }
        let arena_off = if key.len() > INLINE_CAP {
            let off = self.arena.len() as u32;
            self.arena.extend_from_slice(key);
            off
        } else {
            0
        };
        let s = &mut self.slots[ix];
        s.hash = hash;
        s.value = value;
        s.key_len = key.len() as u32;
        s.arena_off = arena_off;
        if key.len() <= INLINE_CAP {
            s.inline[..key.len()].copy_from_slice(key);
        }
        self.len += 1;
    }

    /// Merges `value` under `key`, hashing it first — the fallback paths
    /// (materialized tuples, co-located streams) where no wire hash exists.
    pub fn merge(&mut self, key: &Key, value: u32, op: AggregateOp) {
        self.merge_hashed(key.hash64(), key.as_bytes(), value, op);
    }

    /// Doubles capacity and reinserts every live slot. Arena offsets are
    /// untouched: only slots move.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![VACANT; new_cap]);
        self.mask = new_cap - 1;
        for s in old {
            if s.key_len == 0 {
                continue;
            }
            let mut ix = (s.hash as usize) & self.mask;
            while self.slots[ix].key_len != 0 {
                ix = (ix + 1) & self.mask;
            }
            self.slots[ix] = s;
        }
    }

    /// Empties the table, keeping slot and arena capacity — the
    /// epoch-resync wipe: partial residuals are dropped and the senders'
    /// replays repopulate the same allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.key_len = 0;
        }
        self.len = 0;
        self.arena.clear();
    }

    fn materialize_key(&self, ix: usize) -> Key {
        Key::new(Bytes::copy_from_slice(self.slot_key(ix)))
            .expect("table keys come from validated wire bytes")
    }

    /// Drains the table into the `HashMap` the application-facing
    /// [`TaskResult`](crate::host::daemon::TaskResult) exposes, leaving the
    /// table empty (capacity retained).
    pub fn take_entries(&mut self) -> HashMap<Key, u32> {
        let mut out = HashMap::with_capacity(self.len);
        for ix in 0..self.slots.len() {
            if self.slots[ix].key_len == 0 {
                continue;
            }
            out.insert(self.materialize_key(ix), self.slots[ix].value);
        }
        self.clear();
        out
    }

    /// Harvests every entry sorted by key bytes — the amortized sorted
    /// harvest: merge order is arbitrary, the sort happens once here, and
    /// the output is byte-identical to collecting the old `HashMap` and
    /// sorting it.
    pub fn sorted_entries(&self) -> Vec<(Key, u32)> {
        let mut out: Vec<(Key, u32)> = (0..self.slots.len())
            .filter(|&ix| self.slots[ix].key_len != 0)
            .map(|ix| (self.materialize_key(ix), self.slots[ix].value))
            .collect();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasthash::FastMap;

    fn keys() -> Vec<Key> {
        // Short inline keys, boundary-length keys, and arena-backed long
        // keys, with deliberate length variety around INLINE_CAP.
        let mut ks = Vec::new();
        for i in 0..40u64 {
            ks.push(Key::from_u64(i + 1));
        }
        ks.push(Key::from_str(&"x".repeat(INLINE_CAP)).unwrap());
        ks.push(Key::from_str(&"y".repeat(INLINE_CAP + 1)).unwrap());
        ks.push(Key::from_str("a-long-key-clearly-beyond-the-inline-cap").unwrap());
        ks.push(Key::from_str(&"z".repeat(100)).unwrap());
        ks
    }

    fn reference_merge(
        stream: &[(Key, u32)],
        op: AggregateOp,
    ) -> FastMap<Key, u32> {
        // The exact structure and merge expression the daemon used before
        // the open-addressed table.
        let mut map: FastMap<Key, u32> = FastMap::default();
        for (k, v) in stream {
            map.entry(k.clone())
                .and_modify(|cur| *cur = op.combine(*cur, *v))
                .or_insert(*v);
        }
        map
    }

    fn stream() -> Vec<(Key, u32)> {
        let ks = keys();
        let mut s = Vec::new();
        // Deterministic pseudo-random repetition so most keys merge several
        // times and values exercise wrapping sums.
        let mut x = 0x1234_5678_9abc_def0u64;
        for round in 0..7 {
            for (i, k) in ks.iter().enumerate() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (x >> 33) % 3 == round % 3 {
                    s.push((k.clone(), (x >> 7) as u32 | (i as u32) << 24));
                }
            }
        }
        s
    }

    #[test]
    fn merge_matches_hashmap_reference() {
        for op in [AggregateOp::Sum, AggregateOp::Max, AggregateOp::Min] {
            let s = stream();
            let want: HashMap<Key, u32> = reference_merge(&s, op).into_iter().collect();
            let mut table = TaskTable::new();
            for (k, v) in &s {
                table.merge(k, *v, op);
            }
            assert_eq!(table.len(), want.len());
            assert_eq!(table.take_entries(), want);
        }
    }

    #[test]
    fn wire_hash_and_key_hash_merge_identically() {
        let op = AggregateOp::Sum;
        let s = stream();
        let mut by_key = TaskTable::new();
        let mut by_hash = TaskTable::new();
        for (k, v) in &s {
            by_key.merge(k, *v, op);
            by_hash.merge_hashed(k.hash64(), k.as_bytes(), *v, op);
        }
        assert_eq!(by_key.take_entries(), by_hash.take_entries());
    }

    #[test]
    fn sorted_harvest_is_byte_identical_to_hashmap_sort() {
        // The old daemon's report path: collect the HashMap, sort by key.
        // The pinning is literal — both harvests are rendered to bytes and
        // compared as strings, long-key arena entries included, across an
        // epoch-resync clear.
        let op = AggregateOp::Sum;
        let s = stream();
        let mut table = TaskTable::new();
        for (k, v) in &s {
            table.merge(k, *v, op);
        }
        let mut want: Vec<(Key, u32)> = reference_merge(&s, op).into_iter().collect();
        want.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(format!("{:?}", table.sorted_entries()), format!("{want:?}"));

        // Epoch resync clears the table (and truncates the arena); a
        // replayed, different stream must harvest exactly as a fresh map.
        table.clear();
        assert!(table.is_empty());
        let replay: Vec<(Key, u32)> = s.iter().rev().cloned().collect();
        for (k, v) in &replay {
            table.merge(k, *v, op);
        }
        let mut want2: Vec<(Key, u32)> = reference_merge(&replay, op).into_iter().collect();
        want2.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(format!("{:?}", table.sorted_entries()), format!("{want2:?}"));
    }

    #[test]
    fn take_entries_leaves_the_table_empty() {
        let mut table = TaskTable::new();
        table.merge(&Key::from_u64(1), 5, AggregateOp::Sum);
        assert_eq!(table.len(), 1);
        assert_eq!(table.take_entries().len(), 1);
        assert!(table.is_empty());
        assert!(table.take_entries().is_empty());
        // The table stays usable after the drain.
        table.merge(&Key::from_u64(2), 9, AggregateOp::Sum);
        assert_eq!(table.sorted_entries(), vec![(Key::from_u64(2), 9)]);
    }

    #[test]
    fn growth_rehash_keeps_arena_backed_keys() {
        let op = AggregateOp::Sum;
        let mut table = TaskTable::new();
        let long_a = Key::from_str(&"a".repeat(50)).unwrap();
        let long_b = Key::from_str(&"b".repeat(50)).unwrap();
        table.merge(&long_a, 1, op);
        table.merge(&long_b, 2, op);
        // Force several growth rounds past MIN_CAPACITY.
        for i in 0..200u64 {
            table.merge(&Key::from_u64(i + 1), 1, op);
        }
        table.merge(&long_a, 10, op);
        let entries = table.take_entries();
        assert_eq!(entries[&long_a], 11);
        assert_eq!(entries[&long_b], 2);
        assert_eq!(entries.len(), 202);
    }
}
