//! # ask — a generic in-network aggregation service for key-value streams
//!
//! A from-scratch Rust reproduction of **ASK** (He et al., ASPLOS 2023): a
//! switch–host co-designed service that aggregates key-value streams inside
//! a programmable top-of-rack switch, with
//!
//! - **vectorized multi-key packets** (§3.2): one packet carries one tuple
//!   per aggregator array; the sender's ordered key-space partition pins
//!   every key to a single slot/array, and coalesced groups of adjacent
//!   arrays handle variable-length keys;
//! - **a lightweight reliability mechanism for asynchronous aggregation**
//!   (§3.3): a sliding-window sender with a fine-grained timeout, a compact
//!   per-flow `seen` bitmap on the switch built from atomic
//!   `set_bit`/`clr_bitc`, a `max_seq` stale guard, and per-packet
//!   `PktState` bitmaps so retransmitted partially-aggregated packets are
//!   deduplicated tuple-by-tuple;
//! - **hot-key agnostic prioritization** (§3.4): every aggregator array is
//!   split into two shadow copies that the receiver periodically swaps and
//!   harvests, giving hot keys fresh chances to claim switch memory.
//!
//! The switch program runs on a PISA model ([`ask_pisa`]) that enforces the
//! real hardware's one-access-per-register-array-per-pass restriction, and
//! hosts talk over a deterministic discrete-event network ([`ask_simnet`]).
//!
//! ## Quick start
//!
//! ```
//! use ask::prelude::*;
//!
//! let mut service = AskServiceBuilder::new(3).config(AskConfig::tiny()).build();
//! let hosts = service.hosts().to_vec();
//! let task = TaskId(1);
//!
//! // hosts[0] receives; hosts[1] and hosts[2] send.
//! service.submit_task(task, hosts[0], &[hosts[1], hosts[2]]);
//! for sender in &hosts[1..] {
//!     let stream = vec![
//!         KvTuple::new(Key::from_str("apple")?, 1),
//!         KvTuple::new(Key::from_str("pie")?, 2),
//!     ];
//!     service.submit_stream(task, *sender, stream);
//! }
//! service.run_until_complete(task, hosts[0], 1_000_000)?;
//! let result = service.result(task, hosts[0]).expect("completed");
//! assert_eq!(result[&Key::from_str("apple")?], 2);
//! assert_eq!(result[&Key::from_str("pie")?], 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod fasthash;
pub mod host;
pub mod multirack;
pub mod service;
pub mod stats;
pub mod switch;
pub mod valuestream;

#[cfg(test)]
mod engine_proptests {
    //! Engine-level property tests: the switch program plus a software
    //! receiver window, driven directly (no event simulation), must
    //! aggregate exactly once for arbitrary workloads, retransmission
    //! patterns, and shadow-copy swap schedules.

    use crate::config::AskConfig;
    use crate::host::packetizer::Packetizer;
    use crate::host::receiver::ReceiverWindow;
    use crate::service::reference_aggregate;
    use crate::switch::aggregator::{AggregatorEngine, DataVerdict, Observation};
    use ask_wire::key::Key;
    use ask_wire::packet::{ChannelId, DataPacket, FetchScope, KvTuple, SeqNo, TaskId};
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// switch memory + receiver residual == reference aggregation, for
        /// any tuple stream, any bounded retransmission pattern, and any
        /// swap cadence.
        #[test]
        fn exactly_once_under_retransmission(
            seed in any::<u64>(),
            n_tuples in 1usize..600,
            distinct in 1u64..120,
            dup_rate in 0.0f64..0.4,
            swap_every in prop_oneof![Just(0u64), Just(7u64), Just(64u64)],
            region in prop_oneof![Just(2usize), Just(16usize), Just(64usize)],
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);

            let mut cfg = AskConfig::tiny();
            cfg.region_aggregators = region.min(cfg.aggregators_per_aa);
            let window = cfg.window;
            let task = TaskId(1);
            let channel = ChannelId(0);

            let tuples: Vec<KvTuple> = (0..n_tuples)
                .map(|_| KvTuple::new(Key::from_u64(rng.gen_range(0..distinct)), rng.gen_range(1..50)))
                .collect();
            let expected = reference_aggregate(tuples.iter().cloned());

            let mut engine = AggregatorEngine::new(cfg.clone());
            engine.register_task(task, 0).expect("region");
            let packetizer = Packetizer::new(cfg.layout, cfg.long_kv_batch);
            let stream = packetizer.packetize(tuples);

            let mut receiver = ReceiverWindow::new(window);
            let mut residual: HashMap<Key, u32> = HashMap::new();
            let receive = |pkt: &DataPacket, receiver: &mut ReceiverWindow,
                               residual: &mut HashMap<Key, u32>| {
                if receiver.observe(pkt.seq.0) == Observation::First {
                    for t in pkt.slots.iter().flatten() {
                        let slot = residual.entry(t.key.clone()).or_insert(0);
                        *slot = slot.wrapping_add(t.value);
                    }
                }
            };

            // Long keys bypass: the receiver ingests them directly (with
            // their own dedup), sharing the channel's sequence space.
            let mut seq = 0u64;
            let mut recent: Vec<DataPacket> = Vec::new();
            let mut fetch_seq = 0u32;
            let process = |pkt: DataPacket,
                               engine: &mut AggregatorEngine,
                               receiver: &mut ReceiverWindow,
                               residual: &mut HashMap<Key, u32>| {
                match engine.process_data(pkt) {
                    DataVerdict::FullyAggregated | DataVerdict::Stale => {}
                    DataVerdict::Forward(residual_pkt) => {
                        receive(&residual_pkt, receiver, residual);
                    }
                }
            };

            for payload in stream.data_payloads {
                let pkt = DataPacket { task, channel, seq: SeqNo(seq), slots: payload };
                seq += 1;
                process(pkt.clone(), &mut engine, &mut receiver, &mut residual);
                recent.push(pkt);
                if recent.len() > window / 2 {
                    recent.remove(0);
                }
                // Retransmit a random recent (in-window) packet.
                if !recent.is_empty() && rng.gen_bool(dup_rate) {
                    let dup = recent[rng.gen_range(0..recent.len())].clone();
                    process(dup, &mut engine, &mut receiver, &mut residual);
                }
                if swap_every > 0 && seq.is_multiple_of(swap_every) {
                    engine.swap(task);
                    fetch_seq += 1;
                    for t in engine.fetch(task, FetchScope::Inactive, fetch_seq).iter() {
                        let slot = residual.entry(t.key.clone()).or_insert(0);
                        *slot = slot.wrapping_add(t.value);
                    }
                }
            }
            for batch in stream.long_batches {
                let pkt_seq = seq;
                seq += 1;
                // Long-kv packets share the seq space; dedup at receiver.
                if engine.observe_bypass(channel, SeqNo(pkt_seq)) != Observation::Stale
                    && receiver.observe(pkt_seq) == Observation::First
                {
                    for t in batch {
                        let slot = residual.entry(t.key).or_insert(0);
                        *slot = slot.wrapping_add(t.value);
                    }
                }
            }
            fetch_seq += 1;
            for t in engine.fetch(task, FetchScope::All, fetch_seq).iter() {
                let slot = residual.entry(t.key.clone()).or_insert(0);
                *slot = slot.wrapping_add(t.value);
            }
            residual.retain(|_, v| *v != 0);
            let mut expected = expected;
            expected.retain(|_, v| *v != 0);
            prop_assert_eq!(residual, expected);
        }

        /// Task isolation: interleaved packets from two tasks on separate
        /// channels never contaminate each other's regions.
        #[test]
        fn tasks_never_interfere(
            seed in any::<u64>(),
            n in 1usize..200,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cfg = AskConfig::tiny();
            cfg.region_aggregators = 16;
            let layout = cfg.layout;
            let mut engine = AggregatorEngine::new(cfg);
            engine.register_task(TaskId(1), 0).expect("t1");
            engine.register_task(TaskId(2), 0).expect("t2");
            let packetizer = Packetizer::new(layout, 8);

            let mut seqs = [0u64, 0];
            let mut totals = [0u64, 0];
            for _ in 0..n {
                let which = rng.gen_range(0..2usize);
                let value = rng.gen_range(1..10u32);
                let tuple = KvTuple::new(Key::from_u64(rng.gen_range(0..8)), value);
                let stream = packetizer.packetize(vec![tuple]);
                for payload in stream.data_payloads {
                    let pkt = DataPacket {
                        task: TaskId(1 + which as u32),
                        channel: ChannelId(which as u32),
                        seq: SeqNo(seqs[which]),
                        slots: payload,
                    };
                    seqs[which] += 1;
                    match engine.process_data(pkt) {
                        DataVerdict::FullyAggregated => totals[which] += value as u64,
                        DataVerdict::Forward(_) => {}
                        DataVerdict::Stale => unreachable!(),
                    }
                }
            }
            for (ix, task) in [TaskId(1), TaskId(2)].into_iter().enumerate() {
                let fetched: u64 = engine
                    .fetch(task, FetchScope::All, 1)
                    .iter()
                    .map(|t| t.value as u64)
                    .sum();
                prop_assert_eq!(fetched, totals[ix], "task {} mass", ix + 1);
            }
        }
    }
}

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::config::AskConfig;
    pub use crate::host::daemon::{AskDaemon, TaskResult};
    pub use crate::host::packetizer::{PacketizedStream, Packetizer};
    pub use crate::multirack::{MultiRackBuilder, MultiRackService};
    pub use crate::service::{
        reference_aggregate, reference_aggregate_op, AskService, AskServiceBuilder, RunError,
    };
    pub use crate::stats::{HostStats, SwitchTaskStats};
    pub use crate::switch::{AggregatorEngine, AskSwitch, DataVerdict};
    pub use crate::valuestream::{decode_vector, encode_vector, DecodeVectorError};
    pub use ask_wire::key::{Key, KeyClass};
    pub use ask_wire::packet::{AggregateOp, KvTuple, PacketLayout, TaskId};
}
