//! Value-stream adapters (§2.1.2 / §5.6 backward compatibility).
//!
//! Value-stream aggregation — gradient tensors, `MPI_Reduce` vectors — is
//! the special case of key-value aggregation where keys are dense element
//! indices. These helpers convert between plain vectors and the key-value
//! streams the service aggregates, so integrations like the BytePS plugin
//! don't hand-roll index encoding.

use ask_wire::key::Key;
use ask_wire::packet::KvTuple;
use std::collections::HashMap;

/// Encodes a dense vector as an index-keyed tuple stream.
///
/// # Examples
///
/// ```
/// use ask::valuestream::{decode_vector, encode_vector};
///
/// let stream = encode_vector(&[5, 0, 7]);
/// assert_eq!(stream.len(), 3);
/// ```
pub fn encode_vector(values: &[u32]) -> Vec<KvTuple> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| KvTuple::new(Key::from_u64(i as u64), v))
        .collect()
}

/// Error decoding an aggregated map back into a dense vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeVectorError {
    /// A key did not decode to an element index.
    NotAnIndex,
    /// A decoded index fell outside `0..len`.
    IndexOutOfRange {
        /// The offending index.
        index: u64,
        /// The expected vector length.
        len: usize,
    },
    /// An index in `0..len` had no entry in the map.
    MissingIndex {
        /// The first missing index.
        index: usize,
    },
}

impl core::fmt::Display for DecodeVectorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeVectorError::NotAnIndex => write!(f, "key is not an element index"),
            DecodeVectorError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            DecodeVectorError::MissingIndex { index } => {
                write!(f, "no aggregated value for index {index}")
            }
        }
    }
}

impl std::error::Error for DecodeVectorError {}

/// Decodes an aggregated `key → value` map (the task result) back into a
/// dense vector of length `len`.
///
/// # Errors
///
/// Returns [`DecodeVectorError`] if keys are not indices, indices exceed
/// `len`, or any element of `0..len` is missing.
///
/// # Examples
///
/// ```
/// use ask::valuestream::{decode_vector, encode_vector};
/// use ask::service::reference_aggregate;
///
/// let sum = reference_aggregate(
///     encode_vector(&[1, 2, 3]).into_iter().chain(encode_vector(&[10, 20, 30])),
/// );
/// assert_eq!(decode_vector(&sum, 3)?, vec![11, 22, 33]);
/// # Ok::<(), ask::valuestream::DecodeVectorError>(())
/// ```
pub fn decode_vector(map: &HashMap<Key, u32>, len: usize) -> Result<Vec<u32>, DecodeVectorError> {
    let mut out = vec![None; len];
    for (key, &value) in map {
        let index = key.to_u64().ok_or(DecodeVectorError::NotAnIndex)?;
        if index >= len as u64 {
            return Err(DecodeVectorError::IndexOutOfRange { index, len });
        }
        out[index as usize] = Some(value);
    }
    out.into_iter()
        .enumerate()
        .map(|(index, v)| v.ok_or(DecodeVectorError::MissingIndex { index }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let stream = encode_vector(&v);
        let map: HashMap<Key, u32> = stream.into_iter().map(|t| (t.key, t.value)).collect();
        assert_eq!(decode_vector(&map, 1000).unwrap(), v);
    }

    #[test]
    fn missing_index_detected() {
        let map: HashMap<Key, u32> = encode_vector(&[1, 2])
            .into_iter()
            .map(|t| (t.key, t.value))
            .collect();
        assert_eq!(
            decode_vector(&map, 3).unwrap_err(),
            DecodeVectorError::MissingIndex { index: 2 }
        );
    }

    #[test]
    fn out_of_range_detected() {
        let map: HashMap<Key, u32> = encode_vector(&[1, 2, 3])
            .into_iter()
            .map(|t| (t.key, t.value))
            .collect();
        assert_eq!(
            decode_vector(&map, 2).unwrap_err(),
            DecodeVectorError::IndexOutOfRange { index: 2, len: 2 }
        );
    }

    #[test]
    fn foreign_keys_rejected() {
        let mut map = HashMap::new();
        // A key containing a NUL-adjacent... any valid key decodes as *some*
        // integer unless it overflows; build an overflowing 16-byte key.
        let big = Key::new(bytes::Bytes::from(vec![255u8; 16])).unwrap();
        map.insert(big, 1);
        assert_eq!(
            decode_vector(&map, 1).unwrap_err(),
            DecodeVectorError::NotAnIndex
        );
    }

    #[test]
    fn errors_display() {
        assert!(!DecodeVectorError::NotAnIndex.to_string().is_empty());
    }
}
