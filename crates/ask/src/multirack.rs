//! Multi-rack deployment (§7 "Deployment in Multi-rack networks").
//!
//! Topology: a spine switch interconnects per-rack top-of-rack (ToR) ASK
//! switches; hosts hang off their ToR. Each ToR provides the aggregation
//! service *only to its own rack* — it keeps reliability state for local
//! data channels and aggregates tasks whose receiver lives in the rack —
//! while cross-rack traffic passes through every switch as plain
//! forwarding and is aggregated at the receiving host. This bounds switch
//! state exactly as the paper prescribes: no switch ever tracks another
//! rack's channels.

use crate::config::AskConfig;
use crate::host::daemon::{AskDaemon, TaskResult};
use crate::stats::SwitchTaskStats;
use crate::switch::AskSwitch;
use ask_simnet::frame::NodeId;
use ask_simnet::link::LinkConfig;
use ask_simnet::network::{Network, NetworkBuilder, StopReason};
use ask_simnet::time::{SimDuration, SimTime};
use ask_wire::packet::{KvTuple, TaskId};

/// Builder for a [`MultiRackService`].
#[derive(Debug)]
pub struct MultiRackBuilder {
    hosts_per_rack: Vec<usize>,
    config: AskConfig,
    access_link: LinkConfig,
    spine_link: LinkConfig,
    seed: u64,
}

impl MultiRackBuilder {
    /// Starts a deployment with `hosts_per_rack[r]` hosts in rack `r`.
    pub fn new(hosts_per_rack: &[usize]) -> Self {
        MultiRackBuilder {
            hosts_per_rack: hosts_per_rack.to_vec(),
            config: AskConfig::paper_default(),
            access_link: LinkConfig::new(100e9, SimDuration::from_micros(1)),
            spine_link: LinkConfig::new(400e9, SimDuration::from_micros(2)),
            seed: 1,
        }
    }

    /// Overrides the ASK configuration (applied to every switch and host).
    pub fn config(mut self, config: AskConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the host↔ToR access links.
    pub fn access_link(mut self, link: LinkConfig) -> Self {
        self.access_link = link;
        self
    }

    /// Overrides the ToR↔spine links.
    pub fn spine_link(mut self, link: LinkConfig) -> Self {
        self.spine_link = link;
        self
    }

    /// Seeds the simulation RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the deployment.
    ///
    /// # Panics
    ///
    /// Panics if there are no racks or an empty rack.
    pub fn build(self) -> MultiRackService {
        assert!(!self.hosts_per_rack.is_empty(), "need at least one rack");
        assert!(
            self.hosts_per_rack.iter().all(|&h| h > 0),
            "racks must be non-empty"
        );
        let mut b = NetworkBuilder::new(self.seed);
        let spine = b.add_node(AskSwitch::new(self.config.clone()));
        let mut tors = Vec::new();
        let mut racks: Vec<Vec<NodeId>> = Vec::new();
        for &n in &self.hosts_per_rack {
            let tor = b.add_node(AskSwitch::new(self.config.clone()));
            b.connect(tor, spine, self.spine_link.clone());
            let hosts: Vec<NodeId> = (0..n)
                .map(|_| {
                    let h = b.add_node(AskDaemon::new(self.config.clone(), tor));
                    b.connect(h, tor, self.access_link.clone());
                    h
                })
                .collect();
            tors.push(tor);
            racks.push(hosts);
        }
        let mut network = b.build();

        // Program routing and rack locality.
        for (r, tor) in tors.iter().enumerate() {
            let local: Vec<u32> = racks[r].iter().map(|h| h.index() as u32).collect();
            let sw: &mut AskSwitch = network.node_mut(*tor);
            sw.set_local_hosts(local.clone());
            for (other, rack) in racks.iter().enumerate() {
                if other != r {
                    for h in rack {
                        sw.set_route(h.index() as u32, spine);
                    }
                }
            }
        }
        {
            let sw: &mut AskSwitch = network.node_mut(spine);
            sw.set_local_hosts(std::iter::empty()); // spine never aggregates
            for (r, rack) in racks.iter().enumerate() {
                for h in rack {
                    sw.set_route(h.index() as u32, tors[r]);
                }
            }
        }
        MultiRackService {
            network,
            spine,
            tors,
            racks,
        }
    }
}

/// A running multi-rack deployment.
#[derive(Debug)]
pub struct MultiRackService {
    network: Network,
    spine: NodeId,
    tors: Vec<NodeId>,
    racks: Vec<Vec<NodeId>>,
}

impl MultiRackService {
    /// Host node ids of rack `r`.
    ///
    /// # Panics
    ///
    /// Panics if the rack index is out of range.
    pub fn rack(&self, r: usize) -> &[NodeId] {
        &self.racks[r]
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks.len()
    }

    /// ToR switch node id of rack `r`.
    pub fn tor(&self, r: usize) -> NodeId {
        self.tors[r]
    }

    /// The spine switch node id.
    pub fn spine(&self) -> NodeId {
        self.spine
    }

    /// Submits an aggregation task (receiver and senders may live in any
    /// racks; only rack-local senders of the receiver's rack get INA).
    pub fn submit_task(&mut self, task: TaskId, receiver: NodeId, senders: &[NodeId]) {
        let sender_ixs: Vec<u32> = senders.iter().map(|s| s.index() as u32).collect();
        self.network
            .with_node::<AskDaemon, _>(receiver, |daemon, ctx| {
                daemon.submit_receive_task(task, &sender_ixs, ctx);
            });
    }

    /// Supplies one sender's stream for `task`.
    pub fn submit_stream(&mut self, task: TaskId, sender: NodeId, tuples: Vec<KvTuple>) {
        self.network
            .with_node::<AskDaemon, _>(sender, |daemon, ctx| {
                daemon.submit_send_task(task, tuples, ctx);
            });
    }

    /// Runs until `task` completes at `receiver`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::service::RunError`] if the simulation goes idle or
    /// exhausts `max_events` first.
    pub fn run_until_complete(
        &mut self,
        task: TaskId,
        receiver: NodeId,
        max_events: u64,
    ) -> Result<SimTime, crate::service::RunError> {
        loop {
            if let Some(result) = self.network.node::<AskDaemon>(receiver).task_result(task) {
                return Ok(result.completed_at);
            }
            // Coarse chunks: `run_chunk` only checks the budget at safe-
            // window boundaries, which lets the windowed parallel executor
            // engage. This loop only reads state between chunks, so the
            // exact pause points are unobservable.
            match self.network.run_chunk(max_events.min(100_000)) {
                StopReason::Idle => {
                    return self
                        .network
                        .node::<AskDaemon>(receiver)
                        .task_result(task)
                        .map(|r| r.completed_at)
                        .ok_or(crate::service::RunError::Stalled);
                }
                StopReason::EventBudget => {
                    if self.network.events_processed() >= max_events {
                        return Err(crate::service::RunError::EventBudgetExhausted);
                    }
                }
                StopReason::Deadline => unreachable!("no deadline set"),
            }
        }
    }

    /// The completed [`TaskResult`] at `receiver`.
    pub fn task_result(&self, task: TaskId, receiver: NodeId) -> Option<TaskResult> {
        self.network
            .node::<AskDaemon>(receiver)
            .task_result(task)
            .cloned()
    }

    /// Switch counters for `task` from whichever switch served it.
    pub fn switch_stats(&self, task: TaskId) -> Option<SwitchTaskStats> {
        self.tors
            .iter()
            .chain(std::iter::once(&self.spine))
            .find_map(|&sw| self.network.node::<AskSwitch>(sw).task_stats(task))
    }

    /// Direct access to the underlying network.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::reference_aggregate;
    use ask_wire::key::Key;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn stream(seed: u64, n: usize) -> Vec<KvTuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| KvTuple::new(Key::from_u64(rng.gen_range(0..64)), rng.gen_range(1..9)))
            .collect()
    }

    fn run(
        service: &mut MultiRackService,
        task: TaskId,
        receiver: NodeId,
        streams: Vec<(NodeId, Vec<KvTuple>)>,
    ) {
        let senders: Vec<NodeId> = streams.iter().map(|(s, _)| *s).collect();
        let expected = reference_aggregate(streams.iter().flat_map(|(_, s)| s.iter().cloned()));
        service.submit_task(task, receiver, &senders);
        for (sender, s) in streams {
            service.submit_stream(task, sender, s);
        }
        service
            .run_until_complete(task, receiver, 50_000_000)
            .expect("completes");
        let got = service.task_result(task, receiver).expect("result").entries;
        assert_eq!(got, expected);
    }

    #[test]
    fn intra_rack_task_gets_ina() {
        let mut svc = MultiRackBuilder::new(&[3, 2])
            .config(AskConfig::tiny())
            .build();
        let rack0 = svc.rack(0).to_vec();
        run(
            &mut svc,
            TaskId(1),
            rack0[0],
            vec![(rack0[1], stream(1, 500)), (rack0[2], stream(2, 500))],
        );
        let stats = svc.switch_stats(TaskId(1)).expect("tor served it");
        assert!(
            stats.tuples_aggregated > 0,
            "rack-local senders aggregate at the ToR"
        );
    }

    #[test]
    fn cross_rack_task_bypasses_switch_aggregation() {
        let mut svc = MultiRackBuilder::new(&[2, 2])
            .config(AskConfig::tiny())
            .build();
        let (r0, r1) = (svc.rack(0).to_vec(), svc.rack(1).to_vec());
        // Receiver in rack 0; both senders in rack 1 → pure forwarding.
        run(
            &mut svc,
            TaskId(1),
            r0[0],
            vec![(r1[0], stream(3, 400)), (r1[1], stream(4, 400))],
        );
        let stats = svc.switch_stats(TaskId(1)).expect("region granted");
        assert_eq!(
            stats.tuples_aggregated, 0,
            "cross-rack channels are not tracked by the receiver's ToR"
        );
    }

    #[test]
    fn mixed_rack_senders_split_ina_and_bypass() {
        let mut svc = MultiRackBuilder::new(&[2, 2])
            .config(AskConfig::tiny())
            .build();
        let (r0, r1) = (svc.rack(0).to_vec(), svc.rack(1).to_vec());
        run(
            &mut svc,
            TaskId(1),
            r0[0],
            vec![(r0[1], stream(5, 600)), (r1[0], stream(6, 600))],
        );
        let stats = svc.switch_stats(TaskId(1)).expect("stats");
        assert!(stats.tuples_aggregated > 0, "local sender gets INA");
        // The remote sender's ~600 tuples were never switch-aggregated.
        assert!(
            stats.tuples_aggregated + stats.tuples_forwarded <= 600,
            "only the local sender's tuples enter the aggregation path"
        );
    }

    #[test]
    fn cross_rack_under_faults_is_still_exact() {
        use ask_simnet::faults::FaultModel;
        let access = LinkConfig::new(100e9, SimDuration::from_micros(1)).with_faults(
            FaultModel::reliable()
                .with_loss(0.04)
                .with_duplication(0.03),
        );
        let mut svc = MultiRackBuilder::new(&[2, 2])
            .config(AskConfig::tiny())
            .access_link(access)
            .seed(9)
            .build();
        let (r0, r1) = (svc.rack(0).to_vec(), svc.rack(1).to_vec());
        run(
            &mut svc,
            TaskId(1),
            r0[0],
            vec![(r0[1], stream(7, 700)), (r1[0], stream(8, 700))],
        );
    }

    #[test]
    fn concurrent_tasks_in_different_racks() {
        let mut svc = MultiRackBuilder::new(&[2, 2, 2])
            .config(AskConfig::tiny())
            .build();
        let racks: Vec<Vec<NodeId>> = (0..3).map(|r| svc.rack(r).to_vec()).collect();
        let t = [TaskId(1), TaskId(2), TaskId(3)];
        let mut expected = Vec::new();
        for r in 0..3 {
            let s = stream(10 + r as u64, 300);
            expected.push(reference_aggregate(s.iter().cloned()));
            svc.submit_task(t[r], racks[r][0], &[racks[r][1]]);
            svc.submit_stream(t[r], racks[r][1], s);
        }
        for r in 0..3 {
            svc.run_until_complete(t[r], racks[r][0], 50_000_000)
                .expect("completes");
            let got = svc.task_result(t[r], racks[r][0]).unwrap().entries;
            assert_eq!(got, expected[r], "rack {r}");
            // Each rack's ToR aggregated its own task.
            let stats = svc.switch_stats(t[r]).unwrap();
            assert!(stats.tuples_aggregated > 0, "rack {r}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rack_rejected() {
        let _ = MultiRackBuilder::new(&[2, 0]).build();
    }
}
