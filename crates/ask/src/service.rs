//! End-to-end harness: a rack of hosts around one ASK switch.
//!
//! [`AskService`] assembles the star topology the paper evaluates (§5.1:
//! hosts on 100 Gbps links to one programmable ToR switch), exposes the
//! task-submission API, and drives the simulation until tasks complete.

use crate::config::AskConfig;
use crate::host::daemon::{AskDaemon, TaskResult};
use crate::stats::{HostStats, SwitchTaskStats};
use crate::switch::AskSwitch;
use ask_simnet::frame::NodeId;
use ask_simnet::link::LinkConfig;
use ask_simnet::network::{Network, NetworkBuilder, StopReason};
use ask_simnet::time::{SimDuration, SimTime};
use ask_wire::key::Key;
use ask_wire::packet::{AggregateOp, KvTuple, TaskId};
use std::collections::HashMap;

/// Builder for an [`AskService`] deployment.
#[derive(Debug)]
pub struct AskServiceBuilder {
    config: AskConfig,
    hosts: usize,
    link: LinkConfig,
    seed: u64,
    fault_seed: Option<u64>,
}

impl AskServiceBuilder {
    /// Starts a deployment with `hosts` hosts (≥ 1).
    pub fn new(hosts: usize) -> Self {
        AskServiceBuilder {
            config: AskConfig::paper_default(),
            hosts,
            link: LinkConfig::new(100e9, SimDuration::from_micros(1)),
            seed: 1,
            fault_seed: None,
        }
    }

    /// Overrides the ASK configuration.
    pub fn config(mut self, config: AskConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the host↔switch link (bandwidth, latency, faults).
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Seeds the simulation RNG (fault draws).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Seeds the fault-model RNG separately from the simulation seed, so a
    /// chaos sweep can explore fault patterns while everything else stays
    /// pinned. Defaults to the simulation seed.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }

    /// Builds the deployment.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn build(self) -> AskService {
        assert!(self.hosts > 0, "need at least one host");
        let mut b = NetworkBuilder::new(self.seed);
        if let Some(fault_seed) = self.fault_seed {
            b.set_fault_seed(fault_seed);
        }
        let switch = b.add_node(AskSwitch::new(self.config.clone()));
        let hosts: Vec<NodeId> = (0..self.hosts)
            .map(|_| {
                let id = b.add_node(AskDaemon::new(self.config.clone(), switch));
                b.connect(id, switch, self.link.clone());
                id
            })
            .collect();
        AskService {
            network: b.build(),
            switch,
            hosts,
            config: self.config,
        }
    }
}

/// A running ASK deployment: one switch, N hosts, and the simulation clock.
#[derive(Debug)]
pub struct AskService {
    network: Network,
    switch: NodeId,
    hosts: Vec<NodeId>,
    config: AskConfig,
}

impl AskService {
    /// Node ids of the hosts, in creation order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// The switch's node id.
    pub fn switch_id(&self) -> NodeId {
        self.switch
    }

    /// The service configuration.
    pub fn config(&self) -> &AskConfig {
        &self.config
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.network.now()
    }

    /// Direct access to the underlying network (advanced instrumentation).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Read-only access to a host's daemon (traces, detailed state).
    ///
    /// # Panics
    ///
    /// Panics if `host` is not a host of this deployment.
    pub fn daemon(&self, host: NodeId) -> &AskDaemon {
        assert!(self.hosts.contains(&host), "unknown host {host}");
        self.network.node(host)
    }

    /// Read-only access to the switch node (engine counters, violation
    /// journal).
    pub fn switch_ref(&self) -> &AskSwitch {
        self.network.node(self.switch)
    }

    /// Mutable access to the switch node (chaos injection hooks).
    pub fn switch_mut(&mut self) -> &mut AskSwitch {
        self.network.node_mut(self.switch)
    }

    /// Schedules a switch outage: the switch drops off the network at
    /// `down_at` (frames and timers addressed to it are discarded) and
    /// comes back at `up_at` through [`AskSwitch::crash`] — empty data
    /// plane, next epoch. Hosts detect the outage through retransmit
    /// timeouts and resynchronize against the restarted switch.
    ///
    /// # Panics
    ///
    /// Panics if `up_at <= down_at`.
    pub fn schedule_switch_outage(&mut self, down_at: SimTime, up_at: SimTime) {
        assert!(up_at > down_at, "outage must end after it starts");
        self.network.schedule_node_down(self.switch, down_at);
        self.network.schedule_node_up(self.switch, up_at);
    }

    /// The switch's current incarnation number (starts at 0, +1 per crash).
    pub fn switch_epoch(&self) -> u32 {
        self.switch_ref().epoch()
    }

    /// Restarts `host`'s daemon mid-run ([`AskDaemon::recover`]): in-flight
    /// packets are retransmitted from the crash-consistent window and
    /// pending fetches re-driven.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not a host of this deployment.
    pub fn recover_host(&mut self, host: NodeId) {
        assert!(self.hosts.contains(&host), "unknown host {host}");
        self.network
            .with_node::<AskDaemon, _>(host, |daemon, ctx| daemon.recover(ctx));
    }

    /// Submits an aggregation task: `receiver` collects the streams of all
    /// `senders` (which may include the receiver itself for co-located
    /// mappers).
    ///
    /// # Panics
    ///
    /// Panics if `receiver` or any sender is not a host of this deployment.
    pub fn submit_task(&mut self, task: TaskId, receiver: NodeId, senders: &[NodeId]) {
        self.submit_task_with_op(task, receiver, senders, AggregateOp::Sum);
    }

    /// [`AskService::submit_task`] with an explicit aggregation operator
    /// (`SUM`/`MAX`/`MIN`), applied by the switch ALU and host merges alike.
    ///
    /// # Panics
    ///
    /// Panics if `receiver` or any sender is not a host of this deployment.
    pub fn submit_task_with_op(
        &mut self,
        task: TaskId,
        receiver: NodeId,
        senders: &[NodeId],
        op: AggregateOp,
    ) {
        assert!(
            self.hosts.contains(&receiver),
            "unknown receiver {receiver}"
        );
        let sender_ixs: Vec<u32> = senders
            .iter()
            .map(|s| {
                assert!(self.hosts.contains(s), "unknown sender {s}");
                s.index() as u32
            })
            .collect();
        self.network
            .with_node::<AskDaemon, _>(receiver, |daemon, ctx| {
                daemon.submit_receive_task_with_op(task, &sender_ixs, op, ctx);
            });
    }

    /// Supplies one sender's key-value stream for `task`.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is not a host of this deployment.
    pub fn submit_stream(&mut self, task: TaskId, sender: NodeId, tuples: Vec<KvTuple>) {
        assert!(self.hosts.contains(&sender), "unknown sender {sender}");
        self.network
            .with_node::<AskDaemon, _>(sender, |daemon, ctx| {
                daemon.submit_send_task(task, tuples, ctx);
            });
    }

    /// Runs the simulation until `task` completes at `receiver` or the
    /// event horizon passes. Returns the completion time on success.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the simulation goes idle or hits the event
    /// budget before the task finishes.
    pub fn run_until_complete(
        &mut self,
        task: TaskId,
        receiver: NodeId,
        max_events: u64,
    ) -> Result<SimTime, RunError> {
        loop {
            if let Some(result) = self.network.node::<AskDaemon>(receiver).task_result(task) {
                return Ok(result.completed_at);
            }
            // Coarse chunks: `run_chunk` only checks the budget at safe-
            // window boundaries, which lets the windowed parallel executor
            // engage. This loop only reads state between chunks, so the
            // exact pause points are unobservable.
            match self.network.run_chunk(max_events.min(100_000)) {
                StopReason::Idle => {
                    return match self.network.node::<AskDaemon>(receiver).task_result(task) {
                        Some(r) => Ok(r.completed_at),
                        None => Err(RunError::Stalled),
                    };
                }
                StopReason::EventBudget => {
                    if self.network.events_processed() >= max_events {
                        return Err(RunError::EventBudgetExhausted);
                    }
                }
                StopReason::Deadline => unreachable!("no deadline set"),
            }
        }
    }

    /// Runs until every queued event is processed.
    pub fn run_to_idle(&mut self) {
        self.network.run_to_idle();
    }

    /// The completed result of `task` at `receiver`, as a plain map.
    pub fn result(&self, task: TaskId, receiver: NodeId) -> Option<HashMap<Key, u32>> {
        self.network
            .node::<AskDaemon>(receiver)
            .task_result(task)
            .map(|r| r.entries.clone())
    }

    /// The completed [`TaskResult`] of `task` at `receiver`.
    pub fn task_result(&self, task: TaskId, receiver: NodeId) -> Option<TaskResult> {
        self.network
            .node::<AskDaemon>(receiver)
            .task_result(task)
            .cloned()
    }

    /// Switch counters for `task`.
    pub fn switch_stats(&self, task: TaskId) -> Option<SwitchTaskStats> {
        self.network.node::<AskSwitch>(self.switch).task_stats(task)
    }

    /// Host counters for one host.
    pub fn host_stats(&self, host: NodeId) -> HostStats {
        self.network.node::<AskDaemon>(host).stats()
    }

    /// CPU time one host daemon has burned.
    pub fn host_cpu_busy(&self, host: NodeId) -> SimDuration {
        self.network.node::<AskDaemon>(host).cpu_busy()
    }

    /// Wire/goodput counters of the directed link `host → switch`.
    pub fn uplink_stats(&self, host: NodeId) -> ask_simnet::link::LinkStats {
        self.network.link_stats(host, self.switch)
    }

    /// Wire/goodput counters of the directed link `switch → host`.
    pub fn downlink_stats(&self, host: NodeId) -> ask_simnet::link::LinkStats {
        self.network.link_stats(self.switch, host)
    }

    /// Turns on wall-time phase accounting (the `--timing` breakdown).
    /// Purely observational — simulation behavior and every report stay
    /// byte-identical — but the clock reads cost real time, so this is off
    /// by default.
    pub fn enable_phase_timing(&mut self) {
        self.network.enable_dispatch_timing();
        for host in self.hosts.clone() {
            self.network
                .node_mut::<AskDaemon>(host)
                .enable_phase_timing();
        }
    }

    /// Wall-time attribution across simulator phases, when
    /// [`AskService::enable_phase_timing`] was called before running.
    ///
    /// `drain` is the run time not spent inside any node handler: event
    /// queue operations, link/fault modeling, frame delivery, and (in
    /// windowed-parallel mode) window collection and merge.
    pub fn phase_timing(&self) -> PhaseTiming {
        let switch_ns = self.network.dispatch_ns(self.switch);
        let mut host_dispatch_ns = 0u64;
        let mut packetize_ns = 0u64;
        for &host in &self.hosts {
            host_dispatch_ns += self.network.dispatch_ns(host);
            packetize_ns += self.network.node::<AskDaemon>(host).packetize_ns();
        }
        let total_ns = self.network.run_wall_ns();
        PhaseTiming {
            packetize_ns,
            switch_ns,
            host_ns: host_dispatch_ns.saturating_sub(packetize_ns),
            drain_ns: total_ns.saturating_sub(switch_ns + host_dispatch_ns),
            total_ns,
        }
    }
}

/// Per-phase wall-time breakdown of a run (see
/// [`AskService::phase_timing`]). All figures are nanoseconds of host wall
/// time, not simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Classifying tuples and building packet payloads in the senders.
    pub packetize_ns: u64,
    /// Switch node dispatch (decode, aggregate, verdicts, fetch drain).
    pub switch_ns: u64,
    /// Host daemon dispatch minus the packetize share.
    pub host_ns: u64,
    /// Everything outside node handlers: queue ops, links, delivery, merge.
    pub drain_ns: u64,
    /// Total wall time spent inside `Network::run`.
    pub total_ns: u64,
}

impl PhaseTiming {
    /// Folds another run's breakdown into this one.
    pub fn absorb(&mut self, other: &PhaseTiming) {
        self.packetize_ns += other.packetize_ns;
        self.switch_ns += other.switch_ns;
        self.host_ns += other.host_ns;
        self.drain_ns += other.drain_ns;
        self.total_ns += other.total_ns;
    }
}

/// Why [`AskService::run_until_complete`] gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The event queue drained without the task completing (protocol stall).
    Stalled,
    /// The event budget ran out (likely too small for the workload).
    EventBudgetExhausted,
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunError::Stalled => write!(f, "simulation went idle before task completion"),
            RunError::EventBudgetExhausted => write!(f, "event budget exhausted"),
        }
    }
}

impl std::error::Error for RunError {}

/// Reference aggregation: what the distributed result must equal.
///
/// # Examples
///
/// ```
/// use ask::service::reference_aggregate;
/// use ask_wire::prelude::*;
///
/// let tuples = vec![
///     KvTuple::new(Key::from_str("a")?, 1),
///     KvTuple::new(Key::from_str("a")?, 2),
/// ];
/// let agg = reference_aggregate(tuples.iter().cloned());
/// assert_eq!(agg[&Key::from_str("a")?], 3);
/// # Ok::<(), ask_wire::key::KeyError>(())
/// ```
pub fn reference_aggregate(tuples: impl IntoIterator<Item = KvTuple>) -> HashMap<Key, u32> {
    reference_aggregate_op(tuples, AggregateOp::Sum)
}

/// Reference aggregation with an explicit operator — what the distributed
/// result of [`AskService::submit_task_with_op`] must equal.
pub fn reference_aggregate_op(
    tuples: impl IntoIterator<Item = KvTuple>,
    op: AggregateOp,
) -> HashMap<Key, u32> {
    let mut out: HashMap<Key, u32> = HashMap::new();
    for t in tuples {
        out.entry(t.key)
            .and_modify(|v| *v = op.combine(*v, t.value))
            .or_insert(t.value);
    }
    out
}
