//! # ask-apps — applications executing on the ASK service
//!
//! The paper integrates ASK with Spark and BytePS through thin plugins
//! (§4). This crate provides the equivalent integrations for the
//! reproduction, *actually executing* on the simulated stack:
//!
//! - [`mapreduce`]: a MapReduce engine whose shuffle+reduce is the ASK
//!   service — mappers emit tuples, reduce partitions are ASK aggregation
//!   tasks, and the switch merges most of the shuffle in flight;
//! - [`streaming`]: tumbling-window aggregation of unbounded streams, one
//!   ASK task per window over the persistent data channels — the
//!   asynchronous real-time scenario that motivates key-value INA;
//! - [`training`]: synchronous data-parallel SGD whose per-step gradient
//!   all-reduce runs through ASK in value-stream mode, with quantized
//!   arithmetic making the distributed run bit-identical to a sequential
//!   reference.
//!
//! ```
//! use ask_apps::mapreduce::{run_mapreduce, wordcount_mapper, MapReduceConfig};
//!
//! let inputs = vec![
//!     vec!["a b a".to_string()],
//!     vec!["b c".to_string()],
//!     vec!["a".to_string()],
//! ];
//! let out = run_mapreduce(&MapReduceConfig::small(), inputs, wordcount_mapper);
//! assert_eq!(out.result.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod mapreduce;
pub mod streaming;
pub mod training;

/// Convenient glob import.
pub mod prelude {
    pub use crate::mapreduce::{run_mapreduce, wordcount_mapper, MapReduceConfig, MapReduceOutput};
    pub use crate::streaming::{run_windows, StreamingConfig, WindowResult};
    pub use crate::training::{
        train_distributed, train_sequential, RegressionData, TrainerConfig, TrainingRun,
    };
}
