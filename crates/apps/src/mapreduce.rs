//! A MapReduce engine whose shuffle+reduce runs *through* the ASK service —
//! the executing analog of the paper's Spark plugin (§4: "This plugin can
//! convert data formats between the application and ASK").
//!
//! Mappers run on every machine and emit key-value tuples; the tuples are
//! hash-partitioned over `reducers` reduce tasks, each of which is one ASK
//! aggregation task received by a (round-robin assigned) reducer machine.
//! The switch merges most tuples in flight; reducers only merge residuals
//! and co-located data, and the final tables come back through the
//! reliable fetch path.

use ask::prelude::*;
use ask_simnet::frame::NodeId;
use ask_simnet::time::SimTime;
use ask_wire::key::Key;
use std::collections::HashMap;

/// Configuration of a MapReduce job over ASK.
#[derive(Debug, Clone)]
pub struct MapReduceConfig {
    /// Machines in the cluster (each runs mappers; reducers are assigned
    /// round-robin over them).
    pub machines: usize,
    /// Parallel reduce tasks (each one ASK aggregation task).
    pub reducers: usize,
    /// The ASK service configuration.
    pub ask: AskConfig,
    /// Simulation seed.
    pub seed: u64,
}

impl MapReduceConfig {
    /// The same deployment with in-network aggregation disabled: the
    /// controller denies every region, the shuffle crosses the network
    /// untouched, and reducers aggregate everything on the host — the
    /// executing "no-INA" baseline, identical in every other respect.
    pub fn host_only(mut self) -> Self {
        self.ask.force_host_only = true;
        self
    }

    /// A small default: 3 machines, 4 reduce tasks.
    pub fn small() -> Self {
        let mut ask = AskConfig::paper_default();
        // Four concurrent reduce tasks share the switch region space.
        ask.region_aggregators = ask.aggregators_per_aa / 4;
        MapReduceConfig {
            machines: 3,
            reducers: 4,
            ask,
            seed: 17,
        }
    }

    fn validate(&self) {
        assert!(self.machines > 0, "need at least one machine");
        assert!(self.reducers > 0, "need at least one reducer");
        // Reduce tasks beyond the switch's memory plan are *allowed*: the
        // controller denies them a region and they degrade to host-only
        // aggregation, which is ASK's intended best-effort behaviour.
    }
}

/// Result of a MapReduce run.
#[derive(Debug, Clone)]
pub struct MapReduceOutput {
    /// The aggregated table, merged across all reduce partitions.
    pub result: HashMap<Key, u32>,
    /// Job completion time (last reduce task done).
    pub jct: SimTime,
    /// Switch counters merged over all reduce tasks.
    pub switch: SwitchTaskStats,
}

/// Runs a MapReduce job: `mapper(machine, record)` is applied to every
/// record of `inputs[machine]`, and the emitted tuples are aggregated by
/// key through the ASK service.
///
/// # Panics
///
/// Panics if `inputs.len() != config.machines`, the configuration is
/// inconsistent, or the simulation stalls.
pub fn run_mapreduce<I, M>(
    config: &MapReduceConfig,
    inputs: Vec<Vec<I>>,
    mapper: M,
) -> MapReduceOutput
where
    M: Fn(usize, &I) -> Vec<KvTuple>,
{
    config.validate();
    assert_eq!(inputs.len(), config.machines, "one input shard per machine");

    let mut service = AskServiceBuilder::new(config.machines)
        .config(config.ask.clone())
        .seed(config.seed)
        .build();
    let hosts = service.hosts().to_vec();

    // Submit one receive task per reduce partition, receivers round-robin.
    let tasks: Vec<(TaskId, NodeId)> = (0..config.reducers)
        .map(|r| (TaskId(r as u32), hosts[r % hosts.len()]))
        .collect();
    for &(task, receiver) in &tasks {
        service.submit_task(task, receiver, &hosts);
    }

    // Map phase: run the mappers and hash-partition their output.
    for (machine, shard) in inputs.into_iter().enumerate() {
        let mut partitions: Vec<Vec<KvTuple>> = vec![Vec::new(); config.reducers];
        for record in &shard {
            for tuple in mapper(machine, record) {
                let r = (tuple.key.hash64() >> 32) as usize % config.reducers;
                partitions[r].push(tuple);
            }
        }
        for (r, part) in partitions.into_iter().enumerate() {
            service.submit_stream(tasks[r].0, hosts[machine], part);
        }
    }

    // Reduce phase: drive the simulation until every partition completes.
    let mut jct = SimTime::ZERO;
    for &(task, receiver) in &tasks {
        let done = service
            .run_until_complete(task, receiver, u64::MAX)
            .unwrap_or_else(|e| panic!("reduce task {task} stalled: {e}"));
        jct = jct.max(done);
    }

    let mut result = HashMap::new();
    let mut switch = SwitchTaskStats::default();
    for &(task, receiver) in &tasks {
        for (k, v) in service.result(task, receiver).expect("completed") {
            // Partitions are disjoint by construction.
            let prev = result.insert(k, v);
            debug_assert!(prev.is_none(), "partitions must not overlap");
        }
        if let Some(s) = service.switch_stats(task) {
            switch.merge(&s);
        }
    }
    MapReduceOutput {
        result,
        jct,
        switch,
    }
}

/// The classic WordCount mapper: splits a line into words and emits
/// `(word, 1)` for every word that forms a valid key.
///
/// The `&String` parameter matches the `Fn(usize, &I)` mapper signature for
/// `I = String` exactly (a `&str` function would not satisfy that bound).
#[allow(clippy::ptr_arg)]
pub fn wordcount_mapper(_machine: usize, line: &String) -> Vec<KvTuple> {
    line.split_whitespace()
        .filter_map(|w| Key::from_str(w).ok())
        .map(|k| KvTuple::new(k, 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ask::service::reference_aggregate;

    fn lines(machine: usize) -> Vec<String> {
        vec![
            format!("the quick brown fox machine{machine}"),
            "the lazy dog and the quick cat".to_string(),
            "supercalifragilistic words are long words".to_string(),
        ]
    }

    #[test]
    fn wordcount_matches_reference() {
        let config = MapReduceConfig::small();
        let inputs: Vec<Vec<String>> = (0..3).map(lines).collect();
        let expected = reference_aggregate(
            inputs
                .iter()
                .enumerate()
                .flat_map(|(m, shard)| shard.iter().flat_map(move |l| wordcount_mapper(m, l))),
        );
        let out = run_mapreduce(&config, inputs, wordcount_mapper);
        assert_eq!(out.result, expected);
        assert_eq!(out.result[&Key::from_str("the").unwrap()], 9);
        assert_eq!(out.result[&Key::from_str("words").unwrap()], 6);
        assert!(out.jct > SimTime::ZERO);
    }

    #[test]
    fn partitions_cover_all_keys_disjointly() {
        let config = MapReduceConfig {
            reducers: 7,
            ..MapReduceConfig::small()
        };
        let inputs: Vec<Vec<String>> = (0..3).map(lines).collect();
        let out = run_mapreduce(&config, inputs.clone(), wordcount_mapper);
        let expected = reference_aggregate(
            inputs
                .iter()
                .enumerate()
                .flat_map(|(m, shard)| shard.iter().flat_map(move |l| wordcount_mapper(m, l))),
        );
        assert_eq!(out.result.len(), expected.len());
    }

    #[test]
    fn switch_participates_in_the_shuffle() {
        let config = MapReduceConfig::small();
        // A bigger synthetic input so the switch sees real traffic.
        let inputs: Vec<Vec<String>> = (0..3)
            .map(|m| {
                (0..200)
                    .map(|i| format!("w{} w{} w{}", i % 50, (i + m) % 50, i % 7))
                    .collect()
            })
            .collect();
        let out = run_mapreduce(&config, inputs, wordcount_mapper);
        assert!(
            out.switch.tuples_aggregated > 0,
            "the shuffle must be in-network"
        );
        // With co-located reducers, part of the data never hits the wire at
        // all, and the rest is mostly absorbed.
        assert!(out.switch.tuple_aggregation_ratio() > 0.5);
    }

    #[test]
    fn single_machine_single_reducer_degenerate_case() {
        let mut config = MapReduceConfig::small();
        config.machines = 1;
        config.reducers = 1;
        config.ask.region_aggregators = config.ask.aggregators_per_aa;
        let out = run_mapreduce(&config, vec![lines(0)], wordcount_mapper);
        assert_eq!(out.result[&Key::from_str("the").unwrap()], 3);
    }

    #[test]
    fn host_only_backend_matches_ask_backend() {
        let inputs: Vec<Vec<String>> = (0..3)
            .map(|m| {
                (0..100)
                    .map(|i| format!("k{} k{} k{}", i % 40, (i + m) % 40, i % 9))
                    .collect()
            })
            .collect();
        let with_ina = run_mapreduce(&MapReduceConfig::small(), inputs.clone(), wordcount_mapper);
        let host_only = run_mapreduce(
            &MapReduceConfig::small().host_only(),
            inputs,
            wordcount_mapper,
        );
        assert_eq!(
            with_ina.result, host_only.result,
            "backends must agree exactly"
        );
        assert!(with_ina.switch.tuples_aggregated > 0);
        assert_eq!(
            host_only.switch.tuples_aggregated, 0,
            "host-only backend never touches switch memory"
        );
        // (At this scale JCT is dominated by fixed round-trips, so the
        // throughput benefit of INA is benchmarked at volume in
        // `ask-bench`, not asserted here.)
    }

    #[test]
    #[should_panic(expected = "one input shard per machine")]
    fn shard_count_mismatch_rejected() {
        let config = MapReduceConfig::small();
        let _ = run_mapreduce(&config, vec![lines(0)], wordcount_mapper);
    }
}
