//! Data-parallel SGD through ASK — the executing analog of the paper's
//! BytePS plugin (§5.6): gradients are value streams whose keys are tensor
//! indices, aggregated in-network every step.
//!
//! The trainer solves a linear-regression problem with synchronous SGD:
//! each worker computes a gradient over its data shard, quantizes it to
//! the switch's 32-bit integer domain, and contributes it to one ASK
//! aggregation task per step; the parameter server dequantizes the sum,
//! applies the update, and redistributes the model. Quantized arithmetic
//! makes the distributed run *bit-identical* to a sequential reference —
//! which is exactly the correctness property in-network aggregation must
//! preserve.

use ask::prelude::*;
use ask::valuestream::{decode_vector, encode_vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fixed-point scale for gradient quantization.
const QUANT: f32 = 65536.0;

fn quantize(g: f32) -> u32 {
    (g * QUANT).round() as i32 as u32
}

fn dequantize(v: u32) -> f32 {
    (v as i32) as f32 / QUANT
}

/// A synthetic linear-regression dataset, sharded across workers.
#[derive(Debug, Clone)]
pub struct RegressionData {
    /// `shards[w]` is worker `w`'s list of `(features, target)` rows.
    pub shards: Vec<Vec<(Vec<f32>, f32)>>,
    /// The ground-truth weights the targets were generated from.
    pub truth: Vec<f32>,
}

impl RegressionData {
    /// Generates `rows_per_worker` noisy rows per worker for a `dims`-dim
    /// ground-truth model.
    pub fn synthetic(seed: u64, workers: usize, dims: usize, rows_per_worker: usize) -> Self {
        assert!(workers > 0 && dims > 0 && rows_per_worker > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<f32> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let shards = (0..workers)
            .map(|_| {
                (0..rows_per_worker)
                    .map(|_| {
                        let x: Vec<f32> = (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect();
                        let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum::<f32>()
                            + rng.gen_range(-0.01f32..0.01);
                        (x, y)
                    })
                    .collect()
            })
            .collect();
        RegressionData { shards, truth }
    }
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// SGD steps to run.
    pub steps: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// ASK service configuration.
    pub ask: AskConfig,
    /// Simulation seed.
    pub seed: u64,
}

impl TrainerConfig {
    /// A small default configuration.
    pub fn small() -> Self {
        TrainerConfig {
            steps: 30,
            learning_rate: 0.3,
            ask: AskConfig::paper_default(),
            seed: 23,
        }
    }
}

/// Output of a training run.
#[derive(Debug, Clone)]
pub struct TrainingRun {
    /// Final model weights.
    pub weights: Vec<f32>,
    /// Mean-squared-error after each step.
    pub losses: Vec<f32>,
    /// Total simulated time spent in gradient synchronization.
    pub sync_time: ask_simnet::time::SimTime,
    /// Fraction of gradient elements aggregated on the switch.
    pub switch_absorption: f64,
}

fn mse(weights: &[f32], data: &RegressionData) -> f32 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for shard in &data.shards {
        for (x, y) in shard {
            let pred: f32 = x.iter().zip(weights).map(|(a, b)| a * b).sum();
            acc += (pred - y) * (pred - y);
            n += 1;
        }
    }
    acc / n as f32
}

/// One worker's quantized gradient of the MSE loss over its shard.
fn local_gradient(weights: &[f32], shard: &[(Vec<f32>, f32)]) -> Vec<u32> {
    let dims = weights.len();
    let mut grad = vec![0.0f32; dims];
    for (x, y) in shard {
        let err: f32 = x.iter().zip(weights).map(|(a, b)| a * b).sum::<f32>() - y;
        for d in 0..dims {
            grad[d] += err * x[d];
        }
    }
    grad.iter().map(|g| quantize(*g)).collect()
}

/// Applies one aggregated (summed, quantized) gradient.
fn apply(weights: &mut [f32], summed: &[u32], lr: f32, total_rows: usize) {
    for (w, &q) in weights.iter_mut().zip(summed) {
        *w -= lr * dequantize(q) / total_rows as f32;
    }
}

/// Trains through the ASK service: one aggregation task per step, each
/// worker a sender, worker cluster plus one parameter-server host.
///
/// # Panics
///
/// Panics if the simulation stalls.
pub fn train_distributed(config: &TrainerConfig, data: &RegressionData) -> TrainingRun {
    let workers = data.shards.len();
    let dims = data.truth.len();
    let total_rows: usize = data.shards.iter().map(|s| s.len()).sum();

    let mut service = AskServiceBuilder::new(workers + 1)
        .config(config.ask.clone())
        .seed(config.seed)
        .build();
    let hosts = service.hosts().to_vec();
    let ps = hosts[0];

    let mut weights = vec![0.0f32; dims];
    let mut losses = Vec::with_capacity(config.steps);
    let mut absorbed = 0u64;
    let mut eligible = 0u64;
    for step in 0..config.steps {
        let task = TaskId(step as u32);
        service.submit_task(task, ps, &hosts[1..]);
        for (w, worker) in hosts[1..].iter().enumerate() {
            let grad = local_gradient(&weights, &data.shards[w]);
            service.submit_stream(task, *worker, encode_vector(&grad));
        }
        service
            .run_until_complete(task, ps, u64::MAX)
            .unwrap_or_else(|e| panic!("step {step} stalled: {e}"));
        let summed = service.result(task, ps).expect("completed");
        let vec_sum = decode_vector(&summed, dims).expect("dense gradient");
        apply(&mut weights, &vec_sum, config.learning_rate, total_rows);
        losses.push(mse(&weights, data));
        if let Some(s) = service.switch_stats(task) {
            absorbed += s.tuples_aggregated;
            eligible += s.tuples_aggregated + s.tuples_forwarded;
        }
    }
    TrainingRun {
        weights,
        losses,
        sync_time: service.now(),
        switch_absorption: if eligible == 0 {
            0.0
        } else {
            absorbed as f64 / eligible as f64
        },
    }
}

/// Sequential reference: identical arithmetic without any network.
pub fn train_sequential(config: &TrainerConfig, data: &RegressionData) -> TrainingRun {
    let dims = data.truth.len();
    let total_rows: usize = data.shards.iter().map(|s| s.len()).sum();
    let mut weights = vec![0.0f32; dims];
    let mut losses = Vec::with_capacity(config.steps);
    for _ in 0..config.steps {
        let mut summed = vec![0u32; dims];
        for shard in &data.shards {
            for (d, q) in local_gradient(&weights, shard).into_iter().enumerate() {
                summed[d] = summed[d].wrapping_add(q);
            }
        }
        apply(&mut weights, &summed, config.learning_rate, total_rows);
        losses.push(mse(&weights, data));
    }
    TrainingRun {
        weights,
        losses,
        sync_time: ask_simnet::time::SimTime::ZERO,
        switch_absorption: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TrainerConfig, RegressionData) {
        (
            TrainerConfig::small(),
            RegressionData::synthetic(1, 3, 24, 40),
        )
    }

    #[test]
    fn distributed_matches_sequential_bit_for_bit() {
        let (config, data) = setup();
        let dist = train_distributed(&config, &data);
        let seq = train_sequential(&config, &data);
        assert_eq!(dist.weights, seq.weights, "INA must not perturb training");
        assert_eq!(dist.losses, seq.losses);
    }

    #[test]
    fn training_converges_toward_truth() {
        let (config, data) = setup();
        let run = train_distributed(&config, &data);
        let first = run.losses[0];
        let last = *run.losses.last().unwrap();
        assert!(last < first / 10.0, "loss {first} → {last}");
        let err: f32 = run
            .weights
            .iter()
            .zip(&data.truth)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(err < 0.2, "max weight error {err}");
    }

    #[test]
    fn gradients_aggregate_on_switch() {
        let (config, data) = setup();
        let run = train_distributed(&config, &data);
        assert!(
            run.switch_absorption > 0.9,
            "dense-index value streams aggregate in-network: {}",
            run.switch_absorption
        );
        assert!(run.sync_time > ask_simnet::time::SimTime::ZERO);
    }

    #[test]
    fn quantization_roundtrips() {
        for g in [-3.5f32, -0.001, 0.0, 0.25, 7.75] {
            let q = quantize(g);
            assert!((dequantize(q) - g).abs() < 1.0 / QUANT);
        }
    }
}
