//! Stream processing over ASK: tumbling-window aggregation of an unbounded
//! key-value stream — the real-time streaming scenario the paper's
//! introduction cites (Spark Streaming / Flink / Kafka), and the reason
//! aggregation must be *asynchronous*: window contents are unforeseeable.
//!
//! Each tumbling window is one ASK aggregation task; the persistent data
//! channels serve the sequence of windows back to back (§3.1's "channels
//! persistently run in the whole lifetime of the ASK service, and would
//! serve multiple aggregation tasks").

use ask::prelude::*;
use ask_simnet::time::SimTime;
use ask_wire::key::Key;
use std::collections::HashMap;

/// Configuration of a windowed streaming job.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Source hosts feeding the stream.
    pub sources: usize,
    /// Tuples per source per window.
    pub window_tuples: usize,
    /// Number of tumbling windows to process.
    pub windows: usize,
    /// The ASK service configuration.
    pub ask: AskConfig,
    /// Simulation seed.
    pub seed: u64,
}

impl StreamingConfig {
    /// A small default: 3 sources × 8 windows.
    pub fn small() -> Self {
        StreamingConfig {
            sources: 3,
            window_tuples: 600,
            windows: 8,
            ask: AskConfig::paper_default(),
            seed: 31,
        }
    }
}

/// Result of one window.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Window index.
    pub window: usize,
    /// Aggregated key → value for this window.
    pub counts: HashMap<Key, u32>,
    /// Completion time of the window on the simulated clock.
    pub completed_at: SimTime,
    /// Fraction of the window's tuples aggregated in-network.
    pub switch_absorption: f64,
}

/// Runs a tumbling-window job: `generate(source, window)` produces each
/// source's contribution to each window; every window is aggregated through
/// the ASK service and checked for exactly-once correctness.
///
/// # Panics
///
/// Panics if the configuration is degenerate or the simulation stalls.
pub fn run_windows<G>(config: &StreamingConfig, generate: G) -> Vec<WindowResult>
where
    G: Fn(usize, usize) -> Vec<KvTuple>,
{
    assert!(config.sources > 0, "need at least one source");
    assert!(config.windows > 0, "need at least one window");
    let mut service = AskServiceBuilder::new(config.sources + 1)
        .config(config.ask.clone())
        .seed(config.seed)
        .build();
    let hosts = service.hosts().to_vec();
    let sink = hosts[0];

    let mut out = Vec::with_capacity(config.windows);
    for w in 0..config.windows {
        let task = TaskId(w as u32);
        service.submit_task(task, sink, &hosts[1..]);
        let mut expected: HashMap<Key, u32> = HashMap::new();
        for (s, source) in hosts[1..].iter().enumerate() {
            let tuples = generate(s, w);
            for t in &tuples {
                let slot = expected.entry(t.key.clone()).or_insert(0);
                *slot = slot.wrapping_add(t.value);
            }
            service.submit_stream(task, *source, tuples);
        }
        let completed_at = service
            .run_until_complete(task, sink, u64::MAX)
            .unwrap_or_else(|e| panic!("window {w} stalled: {e}"));
        let counts = service.result(task, sink).expect("window complete");
        assert_eq!(counts, expected, "window {w} must aggregate exactly once");
        let absorption = service
            .switch_stats(task)
            .map(|s| s.tuple_aggregation_ratio())
            .unwrap_or(0.0);
        out.push(WindowResult {
            window: w,
            counts,
            completed_at,
            switch_absorption: absorption,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gen(source: usize, window: usize) -> Vec<KvTuple> {
        let mut rng = StdRng::seed_from_u64((source as u64) << 32 | window as u64);
        (0..400)
            .map(|_| KvTuple::new(Key::from_u64(rng.gen_range(0..128)), rng.gen_range(1..5)))
            .collect()
    }

    #[test]
    fn windows_complete_in_order_and_exactly_once() {
        let mut config = StreamingConfig::small();
        config.window_tuples = 400;
        config.windows = 5;
        let results = run_windows(&config, gen);
        assert_eq!(results.len(), 5);
        for pair in results.windows(2) {
            assert!(
                pair[0].completed_at < pair[1].completed_at,
                "tumbling windows complete in order"
            );
        }
        for r in &results {
            assert!(!r.counts.is_empty());
        }
    }

    #[test]
    fn sustained_windows_keep_high_absorption() {
        // Regions are released at teardown, so every window re-acquires
        // switch memory and aggregates in-network — the service does not
        // degrade as windows accumulate.
        let mut config = StreamingConfig::small();
        config.windows = 6;
        let results = run_windows(&config, gen);
        for r in &results {
            assert!(
                r.switch_absorption > 0.8,
                "window {}: absorption {}",
                r.window,
                r.switch_absorption
            );
        }
    }

    #[test]
    fn windows_are_isolated() {
        // A key appearing in two windows must not leak counts across them.
        let config = StreamingConfig {
            sources: 1,
            window_tuples: 10,
            windows: 2,
            ask: AskConfig::tiny(),
            seed: 5,
        };
        let results = run_windows(&config, |_s, w| {
            vec![KvTuple::new(Key::from_u64(1), 10 * (w as u32 + 1))]
        });
        assert_eq!(results[0].counts[&Key::from_u64(1)], 10);
        assert_eq!(results[1].counts[&Key::from_u64(1)], 20);
    }
}
