//! Property: the switch engine's burst ingest (`process_batch`) is
//! observationally identical to one-at-a-time `process_data` — same verdicts
//! in the same order, same per-task counters, same fetchable switch memory —
//! for arbitrary channel-interleaved bursts including the duplicates and
//! reorderings a chaotic network produces.

use ask::config::AskConfig;
use ask::switch::aggregator::AggregatorEngine;
use ask::switch::{DataVerdict, ViewVerdict};
use ask_wire::codec::encode_envelope_parts;
use ask_wire::key::Key;
use ask_wire::packet::{
    AskPacket, ChannelId, DataPacket, FetchScope, KvTuple, PacketLayout, SeqNo, TaskId,
};
use ask_wire::view::{DataPacketView, FrameView, PacketView};
use proptest::prelude::*;

const SLOTS: usize = 8;
const TASKS: u32 = 2;

/// One packet's worth of generated `(key, value)` slot fills.
type Fill = Vec<(u64, u32)>;
/// One task's generated traffic: `[channel][packet] -> slot fills`.
type ChannelPackets = Vec<Vec<Fill>>;
/// An in-order per-(task, channel) send queue with its next sequence number.
type SendQueue = (TaskId, ChannelId, u64, std::collections::VecDeque<Fill>);

fn engine() -> AggregatorEngine {
    let mut cfg = AskConfig::paper_default();
    cfg.layout = PacketLayout::short_only(SLOTS);
    cfg.aggregators_per_aa = 16 * TASKS as usize;
    cfg.region_aggregators = 16;
    cfg.max_channels = 8;
    cfg.swap_threshold = 0;
    cfg.absorption_audit = true;
    let mut e = AggregatorEngine::new(cfg);
    for t in 0..TASKS {
        e.register_task(TaskId(t), t).expect("region fits");
    }
    e
}

/// Builds the packet stream: per-(task, channel) in-order sequences, merged
/// by an arbitrary interleaving, with some packets re-injected later as
/// retransmission duplicates.
fn build_stream(
    per_channel: &[ChannelPackets],
    interleave: &[usize],
    dup_from: &[(usize, usize)],
) -> Vec<DataPacket> {
    let mut queues: Vec<SendQueue> = Vec::new();
    for (t, channels) in per_channel.iter().enumerate() {
        for (c, fills) in channels.iter().enumerate() {
            queues.push((
                TaskId(t as u32),
                ChannelId((t * channels.len() + c) as u32),
                0,
                fills.iter().cloned().collect(),
            ));
        }
    }
    let mut out = Vec::new();
    for &pick in interleave {
        let n = queues.len();
        let q = &mut queues[pick % n];
        let Some(fill) = q.3.pop_front() else {
            continue;
        };
        let mut slots = vec![None; SLOTS];
        for &(key, value) in &fill {
            let ix = (key % SLOTS as u64) as usize;
            slots[ix] = Some(KvTuple::new(Key::from_u64(key), value));
        }
        out.push(DataPacket {
            task: q.0,
            channel: q.1,
            seq: SeqNo(q.2),
            slots,
        });
        q.2 += 1;
    }
    // Re-inject earlier packets as duplicates/stale arrivals at arbitrary
    // later positions (a retransmit that raced its ACK).
    for &(src, at) in dup_from {
        if out.is_empty() {
            break;
        }
        let copy = out[src % out.len()].clone();
        let at = at % (out.len() + 1);
        out.insert(at, copy);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn batch_ingest_matches_sequential(
        per_channel in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec((0u64..32, 1u32..100), 0..SLOTS),
                    0..12,
                ),
                1..3, // channels per task
            ),
            TASKS as usize..=TASKS as usize,
        ),
        interleave in proptest::collection::vec(0usize..64, 0..64),
        dup_from in proptest::collection::vec((0usize..64, 0usize..64), 0..6),
        burst_sizes in proptest::collection::vec(1usize..9, 1..64),
    ) {
        let stream = build_stream(&per_channel, &interleave, &dup_from);

        // Sequential reference.
        let mut seq_engine = engine();
        let seq_verdicts: Vec<DataVerdict> =
            stream.iter().cloned().map(|p| seq_engine.process_data(p)).collect();

        // Batched run over arbitrary burst boundaries.
        let mut bat_engine = engine();
        let mut bat_verdicts = Vec::new();
        let mut rest = &stream[..];
        let mut sizes = burst_sizes.iter().cycle();
        while !rest.is_empty() {
            let n = (*sizes.next().expect("cycled")).min(rest.len());
            let (burst, tail) = rest.split_at(n);
            let mut verdicts = Vec::new();
            bat_engine.process_batch(burst.iter().cloned(), &mut verdicts);
            prop_assert_eq!(verdicts.len(), n, "one verdict per packet");
            bat_verdicts.extend(verdicts);
            rest = tail;
        }

        prop_assert_eq!(&seq_verdicts, &bat_verdicts);

        for t in 0..TASKS {
            let task = TaskId(t);
            let mut s = seq_engine.task_stats(task).expect("registered");
            let mut b = bat_engine.task_stats(task).expect("registered");
            // The burst histogram is the one intentionally batch-only
            // observable; every protocol counter must match exactly.
            s.burst_len = Default::default();
            b.burst_len = Default::default();
            prop_assert_eq!(s, b);

            // Switch memory is identical: a full fetch drains the same
            // key-value set from both engines.
            let sf = seq_engine.fetch(task, FetchScope::All, 1);
            let bf = bat_engine.fetch(task, FetchScope::All, 1);
            prop_assert_eq!(sf, bf);
        }
    }

    /// The zero-materialization view batch (`process_batch_views`) is
    /// observationally identical to the materializing batch
    /// (`process_batch`) over the same burst boundaries: matching verdicts,
    /// matching counters (burst histogram included), matching fetchable
    /// memory — and every partial absorb re-frames to the *byte-identical*
    /// wire frame the scalar path would re-encode.
    #[test]
    fn view_batch_matches_materializing_batch(
        per_channel in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec((0u64..32, 1u32..100), 0..SLOTS),
                    0..12,
                ),
                1..3, // channels per task
            ),
            TASKS as usize..=TASKS as usize,
        ),
        interleave in proptest::collection::vec(0usize..64, 0..64),
        dup_from in proptest::collection::vec((0usize..64, 0usize..64), 0..6),
        burst_sizes in proptest::collection::vec(1usize..9, 1..64),
        src in any::<u32>(),
        dst in any::<u32>(),
    ) {
        let stream = build_stream(&per_channel, &interleave, &dup_from);
        let layout = PacketLayout::short_only(SLOTS);
        let frames: Vec<_> = stream
            .iter()
            .map(|p| encode_envelope_parts(src, dst, 0, 0, &AskPacket::Data(p.clone()), &layout))
            .collect();
        let views: Vec<DataPacketView> = frames
            .iter()
            .map(|f| match FrameView::parse(f.clone()).expect("valid").into_packet() {
                PacketView::Data(d) => d,
                _ => unreachable!("data frames parse to data views"),
            })
            .collect();

        let mut mat_engine = engine();
        let mut view_engine = engine();
        let mut cursor = 0usize;
        let mut sizes = burst_sizes.iter().cycle();
        while cursor < stream.len() {
            let n = (*sizes.next().expect("cycled")).min(stream.len() - cursor);
            let burst = cursor..cursor + n;
            let mut mat_verdicts = Vec::new();
            mat_engine.process_batch(stream[burst.clone()].iter().cloned(), &mut mat_verdicts);
            let mut view_verdicts = Vec::new();
            view_engine.process_batch_views(&views[burst.clone()], &mut view_verdicts);
            prop_assert_eq!(mat_verdicts.len(), view_verdicts.len());
            for (i, (m, v)) in mat_verdicts.iter().zip(&view_verdicts).enumerate() {
                let at = cursor + i;
                match (m, v) {
                    (DataVerdict::Stale, ViewVerdict::Stale) => {}
                    (DataVerdict::FullyAggregated, ViewVerdict::FullyAggregated) => {}
                    (DataVerdict::Forward(p), ViewVerdict::Forward { residual }) => {
                        prop_assert_eq!(p.bitmap(), *residual, "surviving slot sets diverge");
                        let reencoded = encode_envelope_parts(
                            src, dst, 0, 0, &AskPacket::Data(p.clone()), &layout,
                        );
                        let reframed = views[at].residual_frame(*residual);
                        prop_assert_eq!(
                            reencoded, reframed,
                            "re-framed residual is not byte-identical at packet {}", at
                        );
                    }
                    other => panic!("verdicts diverge at packet {at}: {other:?}"),
                }
            }
            cursor += n;
        }

        for t in 0..TASKS {
            let task = TaskId(t);
            prop_assert_eq!(
                mat_engine.task_stats(task).expect("registered"),
                view_engine.task_stats(task).expect("registered")
            );
            prop_assert_eq!(
                mat_engine.fetch(task, FetchScope::All, 1),
                view_engine.fetch(task, FetchScope::All, 1)
            );
        }
    }
}
