//! Differential property: the host daemons' zero-materialization view
//! ingest and the legacy materializing (scalar) receive path are observably
//! identical.
//!
//! Every random scenario — loss × duplication × reorder × corruption,
//! optionally with a mid-run switch crash — is executed twice, once per
//! host receive path, and the two [`conformance::RunReport`]s must be equal
//! field for field: completion time, packet/retransmission counts, dedup
//! hits, switch vs host aggregation splits, epochs, and stale-epoch drops.
//! The host path decides when ACKs, swaps, and fetches go out and what the
//! final aggregate contains, so report equality pins the wire behaviour of
//! the borrowed-view ingest and the open-addressed residual tables, not
//! just the end result.

use ask_wire::packet::AggregateOp;
use conformance::{CrashSpec, FaultSpec, Scenario};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = AggregateOp> {
    prop_oneof![
        Just(AggregateOp::Sum),
        Just(AggregateOp::Max),
        Just(AggregateOp::Min),
    ]
}

proptest! {
    // Each case is two full end-to-end simulations; keep the count modest
    // (raise with PROPTEST_CASES for deep soaks).
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// View ingest vs scalar receive path under random fault mixes:
    /// identical reports, bit for bit.
    #[test]
    fn prop_host_view_path_equivalence(
        seed in any::<u64>(),
        senders in 1usize..4,
        colocated in any::<bool>(),
        tuples in 50usize..200,
        op in op_strategy(),
        loss_permille in 0u64..200,
        dup_permille in 0u64..250,
        reorder_permille in 0u64..500,
        corrupt_permille in 0u64..30,
        window in 4usize..16,
        swap_threshold in prop_oneof![Just(0u64), Just(8u64), Just(32u64)],
    ) {
        let mut scenario = Scenario::base(seed);
        scenario.senders = senders;
        scenario.colocated_sender = colocated;
        scenario.tuples_per_sender = tuples;
        scenario.op = op;
        scenario.swap_threshold = swap_threshold;
        scenario.window = window;
        scenario.faults = FaultSpec {
            loss: loss_permille as f64 / 1000.0,
            duplication: dup_permille as f64 / 1000.0,
            reorder: reorder_permille as f64 / 1000.0,
            reorder_jitter_us: 10,
            corruption: corrupt_permille as f64 / 1000.0,
        };
        let view_report = scenario.run();
        let mut scalar = scenario.clone();
        scalar.host_scalar = true;
        let scalar_report = scalar.run();
        prop_assert_eq!(view_report, scalar_report);
    }

    /// The equivalence survives a switch crash-restart: the epoch resync
    /// flushes deferred merges, wipes the open-addressed tables (arena
    /// included), and replays — and must land on the same nanosecond under
    /// both host receive paths.
    #[test]
    fn prop_host_view_path_equivalence_under_crash(
        seed in any::<u64>(),
        senders in 1usize..3,
        op in op_strategy(),
        loss_permille in 0u64..150,
        reorder_permille in 0u64..400,
        down_at_permille in 0u32..1000,
        outage_us in 30u64..400,
    ) {
        let mut scenario = Scenario::base(seed);
        scenario.senders = senders;
        scenario.tuples_per_sender = 120;
        scenario.op = op;
        scenario.faults = FaultSpec {
            loss: loss_permille as f64 / 1000.0,
            duplication: 0.0,
            reorder: reorder_permille as f64 / 1000.0,
            reorder_jitter_us: 10,
            corruption: 0.0,
        };
        scenario.crash = Some(CrashSpec { down_at_permille, outage_us });
        let view_report = scenario.run();
        let mut scalar = scenario.clone();
        scalar.host_scalar = true;
        let scalar_report = scalar.run();
        prop_assert_eq!(view_report, scalar_report);
    }
}
