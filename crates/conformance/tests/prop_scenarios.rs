//! Property-based scenario generation: random workload shapes, key skew,
//! fault models, and lifecycle chaos, all funneled through the invariant
//! checker. Every generated case must conform.

use ask_wire::packet::AggregateOp;
use conformance::{CrashSpec, FaultSpec, Scenario};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = AggregateOp> {
    prop_oneof![
        Just(AggregateOp::Sum),
        Just(AggregateOp::Max),
        Just(AggregateOp::Min),
    ]
}

proptest! {
    // Each case is a full end-to-end simulation; keep the count modest so
    // `cargo test` stays fast (raise with PROPTEST_CASES for deep soaks).
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Any random scenario — workload shape, Zipf skew, operator, fault
    /// mix, co-located sender, mid-run restart — satisfies all four
    /// invariants.
    #[test]
    fn random_scenarios_conform(
        seed in any::<u64>(),
        senders in 1usize..4,
        colocated in any::<bool>(),
        tuples in 50usize..250,
        distinct in 8usize..128,
        skew_permille in 400u64..1800,
        long_ratio_ix in 0usize..3,
        op in op_strategy(),
        loss_permille in 0u64..200,
        dup_permille in 0u64..250,
        reorder_permille in 0u64..500,
        window in 4usize..16,
        swap_threshold in prop_oneof![Just(0u64), Just(8u64), Just(32u64)],
        restart in any::<bool>(),
    ) {
        let scenario = Scenario {
            seed,
            fault_seed: None,
            senders,
            colocated_sender: colocated,
            tuples_per_sender: tuples,
            distinct_keys: distinct,
            zipf_s: skew_permille as f64 / 1000.0,
            long_key_ratio: [0.0, 1.0 / 16.0, 1.0 / 4.0][long_ratio_ix],
            op,
            faults: FaultSpec {
                loss: loss_permille as f64 / 1000.0,
                duplication: dup_permille as f64 / 1000.0,
                reorder: reorder_permille as f64 / 1000.0,
                reorder_jitter_us: 10,
                corruption: 0.0,
            },
            window,
            data_channels: 1,
            swap_threshold,
            region_aggregators: 32,
            restart_mid_run: restart,
            crash: None,
            switch_scalar: false,
            host_scalar: false,
        };
        let report = scenario.run();
        prop_assert!(
            report.ok(),
            "scenario {:?} violated invariants: {:?}",
            scenario,
            report.violations
        );
    }

    /// SUM/MAX/MIN conservation holds for every random crash instant
    /// crossed with loss and reorder: the switch dies somewhere between 0
    /// and 99.9% of the clean runtime, loses all state, and the delivered
    /// aggregate must still equal the oracle's exactly.
    #[test]
    fn prop_crash_conservation(
        seed in any::<u64>(),
        senders in 1usize..4,
        op in op_strategy(),
        loss_permille in 0u64..200,
        reorder_permille in 0u64..500,
        down_at_permille in 0u32..1000,
        outage_us in 30u64..400,
    ) {
        let mut scenario = Scenario::base(seed);
        scenario.senders = senders;
        scenario.tuples_per_sender = 150;
        scenario.op = op;
        scenario.faults = FaultSpec {
            loss: loss_permille as f64 / 1000.0,
            duplication: 0.0,
            reorder: reorder_permille as f64 / 1000.0,
            reorder_jitter_us: 10,
            corruption: 0.0,
        };
        scenario.crash = Some(CrashSpec { down_at_permille, outage_us });
        let report = scenario.run();
        prop_assert!(
            report.ok(),
            "crash scenario {:?} violated invariants: {:?}",
            scenario,
            report.violations
        );
    }

    /// The same scenario run twice produces the identical report — the
    /// determinism that makes every failure reproducible from its seed.
    #[test]
    fn scenario_runs_are_deterministic(seed in any::<u64>()) {
        let mut s = Scenario::base(seed);
        s.faults = FaultSpec {
            loss: 0.1,
            duplication: 0.15,
            reorder: 0.3,
            reorder_jitter_us: 5,
            corruption: 0.0,
        };
        s.tuples_per_sender = 120;
        let a = s.run();
        let b = s.run();
        prop_assert_eq!(a, b);
    }
}
