//! Seeded regression tests for bug classes the old value-comparing e2e
//! suite could not catch, plus sweep-level determinism guarantees.

use ask::config::AskConfig;
use ask::switch::{AggregatorEngine, DataVerdict};
use ask_wire::key::Key;
use ask_wire::packet::{
    AggregateOp, ChannelId, DataPacket, FetchScope, KvTuple, SeqNo, TaskId,
};
use conformance::sweep::run_sweep;
use conformance::{FaultSpec, Scenario, SweepConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn pkt(task: u32, seq: u64, slot: usize, key: &str, value: u32) -> DataPacket {
    let layout = AskConfig::tiny().layout;
    let mut slots = vec![None; layout.slot_count()];
    slots[slot] = Some(KvTuple::new(Key::from_str(key).unwrap(), value));
    DataPacket {
        task: TaskId(task),
        channel: ChannelId(0),
        seq: SeqNo(seq),
        slots,
    }
}

/// The bug class that motivated the absorption audit: under `MAX`, a
/// duplicate absorption is value-invisible (`max(v, v) = v`), so an e2e
/// suite that only compares the delivered aggregate to the oracle passes
/// even though exactly-once absorption is broken. The audit must not.
#[test]
fn seeded_max_bitflip_double_absorption_escapes_value_oracle_but_not_audit() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut cfg = AskConfig::tiny();
    cfg.absorption_audit = true;
    let mut engine = AggregatorEngine::new(cfg);
    engine
        .register_task_with_op(TaskId(1), 9, AggregateOp::Max)
        .unwrap();

    // A seeded stream of one-tuple packets, one distinct key per seq.
    let mut packets = Vec::new();
    let mut reference: HashMap<Key, u32> = HashMap::new();
    for seq in 0..6u64 {
        let value = rng.gen_range(1..100);
        let key = format!("k{seq}");
        packets.push(pkt(1, seq, 0, &key, value));
        let k = Key::from_str(&key).unwrap();
        reference
            .entry(k)
            .and_modify(|v| *v = (*v).max(value))
            .or_insert(value);
    }
    for p in &packets {
        assert_eq!(engine.process_data(p.clone()), DataVerdict::FullyAggregated);
    }

    // Chaos: flip the seen bit of one absorbed sequence number, then replay
    // that exact packet — the corrupted dedup gate waves it through.
    let victim = rng.gen_range(0..packets.len());
    assert!(engine.inject_seen_bit_flip(ChannelId(0), SeqNo(victim as u64)));
    assert_eq!(
        engine.process_data(packets[victim].clone()),
        DataVerdict::FullyAggregated,
        "replay passed the dedup gate after the bit flip"
    );

    // The value oracle sees nothing wrong: the final harvest still equals
    // the reference aggregate exactly.
    let harvest: HashMap<Key, u32> = engine
        .fetch(TaskId(1), FetchScope::All, 1)
        .iter()
        .map(|t| (t.key.clone(), t.value))
        .collect();
    assert_eq!(harvest, reference, "MAX hides the double absorption");

    // The absorption audit does not.
    assert_eq!(engine.duplicate_absorptions(), 1);
    assert_eq!(
        engine.task_stats(TaskId(1)).unwrap().duplicate_absorptions,
        1
    );
}

/// Heavy duplication and loss together force honest retransmissions to
/// overlap with network-duplicated frames — the scenario where a buggy
/// dedup gate would double-absorb. All four invariants must still hold.
#[test]
fn dup_retransmit_overlap_holds_all_invariants() {
    let mut s = Scenario::base(0xD1CE);
    s.faults = FaultSpec {
        loss: 0.15,
        duplication: 0.35,
        reorder: 0.3,
        reorder_jitter_us: 10,
        corruption: 0.0,
    };
    let report = s.run();
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.retransmissions > 0, "loss must force retransmissions");
    assert!(
        report.duplicates_detected > 0,
        "duplication must exercise the dedup gate"
    );
}

/// A mid-run crash-restart of every daemon must not break conservation,
/// exactly-once absorption, or window accounting.
#[test]
fn mid_run_restart_holds_all_invariants() {
    let mut s = Scenario::base(0xBEEF);
    s.restart_mid_run = true;
    s.faults.loss = 0.05;
    let report = s.run();
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(
        report.retransmissions > 0,
        "recovery retransmits the in-flight window"
    );
}

/// Two sweeps from the same seed must render byte-identical reports — the
/// property that makes a printed `(seed, grid-point)` pair a full repro.
#[test]
fn quick_sweep_is_deterministic_and_green() {
    let a = run_sweep(SweepConfig::quick(3));
    let b = run_sweep(SweepConfig::quick(3));
    assert_eq!(a.text, b.text, "sweep reports must be byte-identical");
    assert_eq!(a.points, 12);
    assert!(a.ok(), "report:\n{}", a.text);
}

/// A grid point re-run through the repro path (seed + indices) must agree
/// with what the sweep executed.
#[test]
fn repro_path_reconstructs_the_grid_point_run() {
    let cfg = SweepConfig::quick(11);
    let point = cfg.point((2, 1, 1)).unwrap();
    let first = point.scenario(cfg.seed).run();
    let again = cfg.point((2, 1, 1)).unwrap().scenario(cfg.seed).run();
    assert_eq!(first, again);
}
