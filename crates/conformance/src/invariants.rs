//! The four end-to-end invariants every conformance run must satisfy.

use ask::service::AskService;
use ask_simnet::frame::NodeId;
use ask_wire::key::Key;
use ask_wire::packet::TaskId;
use std::collections::HashMap;

/// How many offending keys a conservation violation message lists.
const DIFF_SAMPLE: usize = 4;

/// Verdicts from one invariant pass over a finished (or stalled) service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    /// One entry per violated invariant; empty means the run conformed.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks all four invariants against a service that has finished (or given
/// up on) `task`, comparing the delivered aggregate to the oracle's
/// `expected` map.
///
/// `crashed` relaxes the fetch-accounting equality: a crashed switch may
/// have harvested tuples into fetch replies that died with the old epoch,
/// so hosts can legitimately merge fewer than the switch counted — but
/// never more.
pub fn check(
    service: &AskService,
    task: TaskId,
    receiver: NodeId,
    expected: &HashMap<Key, u32>,
    crashed: bool,
) -> InvariantReport {
    let mut violations = Vec::new();
    check_conservation(service, task, receiver, expected, &mut violations);
    check_no_duplicate_absorption(service, &mut violations);
    check_window_safety(service, task, receiver, crashed, &mut violations);
    check_pisa_legality(service, &mut violations);
    InvariantReport { violations }
}

/// Invariant 1: the delivered aggregate equals the oracle's, per key.
fn check_conservation(
    service: &AskService,
    task: TaskId,
    receiver: NodeId,
    expected: &HashMap<Key, u32>,
    violations: &mut Vec<String>,
) {
    let Some(got) = service.result(task, receiver) else {
        violations.push("conservation: task produced no result".to_string());
        return;
    };
    if &got == expected {
        return;
    }
    // Collect a deterministic sample of the differing keys, worst first
    // would need magnitudes — key order keeps repro output stable instead.
    let mut diffs: Vec<String> = expected
        .iter()
        .filter(|(k, v)| got.get(*k) != Some(*v))
        .map(|(k, v)| {
            format!(
                "key {} expected {} got {}",
                fmt_key(k),
                v,
                got.get(k).map_or("missing".to_string(), |g| g.to_string())
            )
        })
        .chain(
            got.iter()
                .filter(|(k, _)| !expected.contains_key(*k))
                .map(|(k, v)| format!("key {} expected absent got {}", fmt_key(k), v)),
        )
        .collect();
    diffs.sort();
    let shown = diffs.len().min(DIFF_SAMPLE);
    violations.push(format!(
        "conservation: {} of {} expected keys wrong (e.g. {})",
        diffs.len(),
        expected.len(),
        diffs[..shown].join("; "),
    ));
}

/// Invariant 2: the absorption audit saw every sequence number at most once.
fn check_no_duplicate_absorption(service: &AskService, violations: &mut Vec<String>) {
    let dups = service.switch_ref().engine().duplicate_absorptions();
    if dups != 0 {
        violations.push(format!(
            "duplicate absorption: {dups} sequence number(s) aggregated more than once"
        ));
    }
}

/// Invariant 3: no channel ever exceeded the window, everything drained,
/// and no fetched tuple was lost between switch and receiver.
fn check_window_safety(
    service: &AskService,
    task: TaskId,
    receiver: NodeId,
    crashed: bool,
    violations: &mut Vec<String>,
) {
    let mut fetched_by_hosts = 0u64;
    for &host in service.hosts() {
        let daemon = service.daemon(host);
        let w = daemon.window_limit();
        for snap in daemon.channel_snapshots() {
            if snap.peak_in_flight > w {
                violations.push(format!(
                    "window safety: host {host} channel {} peaked at {} in-flight (W = {w})",
                    snap.channel.0, snap.peak_in_flight,
                ));
            }
            if snap.in_flight != 0 || snap.queued != 0 || snap.outstanding != 0 {
                violations.push(format!(
                    "window safety: host {host} channel {} did not drain \
                     (in_flight {} queued {} outstanding {})",
                    snap.channel.0, snap.in_flight, snap.queued, snap.outstanding,
                ));
            }
        }
        fetched_by_hosts += service.host_stats(host).tuples_fetched;
    }
    if service.daemon(receiver).fetch_pending(task) {
        violations.push("window safety: fetch still pending at end of run".to_string());
    }
    let fetched_by_switch = service
        .switch_stats(task)
        .map_or(0, |s| s.tuples_fetched);
    // With a crash, fetch replies harvested by the dead epoch may never
    // reach a host; without one, the counts must balance exactly.
    let lost_fetch = if crashed {
        fetched_by_hosts > fetched_by_switch
    } else {
        fetched_by_hosts != fetched_by_switch
    };
    if lost_fetch {
        violations.push(format!(
            "window safety: switch harvested {fetched_by_switch} tuple(s) by fetch \
             but hosts merged {fetched_by_hosts} — fetch/shadow-copy slot lost"
        ));
    }
}

/// Invariant 4: no PISA pass violated register-access or stage constraints.
fn check_pisa_legality(service: &AskService, violations: &mut Vec<String>) {
    let engine = service.switch_ref().engine();
    let count = engine.constraint_violations();
    if count != 0 {
        let sample: Vec<String> = engine
            .violations()
            .iter()
            .take(3)
            .map(|v| format!("{v:?}"))
            .collect();
        violations.push(format!(
            "pisa legality: {count} constraint violation(s), e.g. {}",
            sample.join("; "),
        ));
    }
}

fn fmt_key(k: &Key) -> String {
    match core::str::from_utf8(k.as_bytes()) {
        Ok(s) if s.chars().all(|c| c.is_ascii_graphic()) => format!("{s:?}"),
        _ => k
            .as_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect::<String>(),
    }
}
